"""Fast-path feature flags.

One frozen config object selects which snapshot-delta fast paths a run
uses. ``FastPathConfig.on()`` (the default everywhere) enables all of
them; ``FastPathConfig.off()`` reproduces the pre-fast-path engine
exactly. Individual features can be toggled for ablations; all of them
are behaviour-preserving, so any combination yields byte-identical
reuse files and results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union


@dataclass(frozen=True)
class FastPathConfig:
    """Which snapshot-delta fast paths are active.

    Attributes:
        enabled: master switch; False behaves as if every feature
            flag were off.
        unchanged_page: fingerprint-equal page pairs short-circuit to
            a whole-page identity match (wholesale tuple recycling).
        match_memo: memoize matcher calls content-keyed on
            (matcher config, p-region fingerprint, q-region
            fingerprint) within a page pair, so chained units pay each
            diff once and equal-content regions share results.
        match_cache: carry memoized match results across page pairs
            and snapshots in a bounded LRU
            (:class:`~repro.fastpath.matchcache.CrossSnapshotMatchCache`);
            requires ``match_memo`` (the memo is the lookup path).
        automaton_cache: reuse ST's suffix automaton per (page pair,
            q-region content) across rows and units.
        kernels: let matchers use the vectorized numpy kernels above
            the optimizer's size thresholds (pure-Python fallback is
            parity-pinned; this flag plus a missing numpy both mean
            "pure Python everywhere").
        reader_index: serve out-of-order page-matching scopes from an
            offset-indexed reuse-file reader instead of materializing
            whole files in memory.
    """

    enabled: bool = True
    unchanged_page: bool = True
    match_memo: bool = True
    match_cache: bool = True
    automaton_cache: bool = True
    kernels: bool = True
    reader_index: bool = True

    @classmethod
    def on(cls) -> "FastPathConfig":
        return cls(enabled=True)

    @classmethod
    def off(cls) -> "FastPathConfig":
        return cls(enabled=False, unchanged_page=False, match_memo=False,
                   match_cache=False, automaton_cache=False, kernels=False,
                   reader_index=False)

    @classmethod
    def from_flag(cls, value: Union[None, str, bool, "FastPathConfig"]
                  ) -> "FastPathConfig":
        """Parse a CLI-style flag: "on"/"off", bool, None (= on)."""
        if isinstance(value, FastPathConfig):
            return value
        if value is None:
            return cls.on()
        if isinstance(value, bool):
            return cls.on() if value else cls.off()
        text = str(value).strip().lower()
        if text in ("on", "true", "1", "yes"):
            return cls.on()
        if text in ("off", "false", "0", "no"):
            return cls.off()
        raise ValueError(f"invalid fastpath flag {value!r}; use on/off")

    def want(self, feature: str) -> bool:
        """Is a feature flag active (respecting the master switch)?"""
        return self.enabled and bool(getattr(self, feature))

    def without(self, feature: str) -> "FastPathConfig":
        """Copy with one feature disabled (ablation helper)."""
        return replace(self, **{feature: False})

    def describe(self) -> str:
        if not self.enabled:
            return "fastpath=off"
        active = [name for name in ("unchanged_page", "match_memo",
                                    "match_cache", "automaton_cache",
                                    "kernels", "reader_index")
                  if getattr(self, name)]
        return "fastpath=on(" + ",".join(active) + ")"


def resolve_fastpath(value: Union[None, str, bool, FastPathConfig],
                     default: Optional[FastPathConfig] = None
                     ) -> FastPathConfig:
    """``from_flag`` with an overridable default for ``None``."""
    if value is None and default is not None:
        return default
    return FastPathConfig.from_flag(value)
