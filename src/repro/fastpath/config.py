"""Fast-path feature flags.

One frozen config object selects which snapshot-delta fast paths a run
uses. ``FastPathConfig.on()`` (the default everywhere) enables all of
them; ``FastPathConfig.off()`` reproduces the pre-fast-path engine
exactly. Individual features can be toggled for ablations; all of them
are behaviour-preserving, so any combination yields byte-identical
reuse files and results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union


@dataclass(frozen=True)
class FastPathConfig:
    """Which snapshot-delta fast paths are active.

    Attributes:
        enabled: master switch; False behaves as if every feature
            flag were off.
        unchanged_page: fingerprint-equal page pairs short-circuit to
            a whole-page identity match (wholesale tuple recycling).
        match_memo: memoize (matcher, p-region, q-region) calls within
            a page pair so chained units pay each diff once.
        automaton_cache: reuse ST's suffix automaton per (page pair,
            q-region) across rows and units.
        reader_index: serve out-of-order page-matching scopes from an
            offset-indexed reuse-file reader instead of materializing
            whole files in memory.
    """

    enabled: bool = True
    unchanged_page: bool = True
    match_memo: bool = True
    automaton_cache: bool = True
    reader_index: bool = True

    @classmethod
    def on(cls) -> "FastPathConfig":
        return cls(enabled=True)

    @classmethod
    def off(cls) -> "FastPathConfig":
        return cls(enabled=False, unchanged_page=False, match_memo=False,
                   automaton_cache=False, reader_index=False)

    @classmethod
    def from_flag(cls, value: Union[None, str, bool, "FastPathConfig"]
                  ) -> "FastPathConfig":
        """Parse a CLI-style flag: "on"/"off", bool, None (= on)."""
        if isinstance(value, FastPathConfig):
            return value
        if value is None:
            return cls.on()
        if isinstance(value, bool):
            return cls.on() if value else cls.off()
        text = str(value).strip().lower()
        if text in ("on", "true", "1", "yes"):
            return cls.on()
        if text in ("off", "false", "0", "no"):
            return cls.off()
        raise ValueError(f"invalid fastpath flag {value!r}; use on/off")

    def want(self, feature: str) -> bool:
        """Is a feature flag active (respecting the master switch)?"""
        return self.enabled and bool(getattr(self, feature))

    def without(self, feature: str) -> "FastPathConfig":
        """Copy with one feature disabled (ablation helper)."""
        return replace(self, **{feature: False})

    def describe(self) -> str:
        if not self.enabled:
            return "fastpath=off"
        active = [name for name in ("unchanged_page", "match_memo",
                                    "automaton_cache", "reader_index")
                  if getattr(self, name)]
        return "fastpath=on(" + ",".join(active) + ")"


def resolve_fastpath(value: Union[None, str, bool, FastPathConfig],
                     default: Optional[FastPathConfig] = None
                     ) -> FastPathConfig:
    """``from_flag`` with an overridable default for ``None``."""
    if value is None and default is not None:
        return default
    return FastPathConfig.from_flag(value)
