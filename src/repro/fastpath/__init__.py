"""Snapshot-delta fast paths (extension).

Delex's per-snapshot cost is dominated by region matching and blackbox
re-extraction, yet slowly-evolving corpora are mostly *unchanged*
pages: the opportunity that differential view-maintenance work
formalizes. This package adds behaviour-preserving shortcuts threaded
through corpus, matchers, reuse engine, runtime, and timing:

* **Page fingerprints** (:mod:`.fingerprint`) — blake2 content hashes
  persisted in snapshot metadata. Fingerprint-equal page pairs
  short-circuit to a whole-page identity match: all units' recorded
  tuples are recycled wholesale, with no matcher run and no region
  derivation.
* **Content-keyed match memo** (:class:`.memo.MatchMemo`) — keyed by
  (matcher config, p-region fingerprint, q-region fingerprint), so
  every IE unit matching the same region *content* pays the diff
  exactly once, wherever the regions sit. Distinct from the RU
  :class:`~repro.matchers.base.MatchCache`, which stores *found
  segments* for recycling by a different matcher; the memo stores the
  full match result for a content-equal repeat of the same call.
* **Cross-snapshot match cache**
  (:class:`.matchcache.CrossSnapshotMatchCache`) — a bounded LRU over
  the same content keys that outlives the page pair, carried across
  the snapshot series by the reuse engine and ``repro.serve`` views,
  so snapshot k+1 replays snapshot k's match results beyond what RU
  captures.
* **Suffix-automaton cache** (:class:`.memo.AutomatonCache`) — the ST
  matcher's automaton per q-region content is built once per page pair
  and reused across input rows and units.
* **Indexed reuse-file reader**
  (:class:`.reader_index.IndexedReuseFileReader`) — an in-memory
  page-offset index enabling O(1) group seeks when the page-matching
  scope pairs pages out of order, replacing whole-file
  materialization.

Every fast path is behaviour-preserving: with ``--fastpath on`` the
engine produces byte-identical reuse files and identical extraction
results to ``--fastpath off`` (the same bar as the runtime's
serial/parallel parity). Hit/miss counters are reported through
:class:`.stats.FastPathStats` on
:class:`~repro.timing.Timings.fastpath`.
"""

from .config import FastPathConfig
from .fingerprint import content_fingerprint, pages_identical
from .matchcache import CrossSnapshotMatchCache
from .memo import AutomatonCache, MatchMemo, RegionFingerprints
from .reader_index import IndexedReuseFileReader
from .stats import FastPathStats

__all__ = [
    "AutomatonCache",
    "CrossSnapshotMatchCache",
    "FastPathConfig",
    "FastPathStats",
    "IndexedReuseFileReader",
    "MatchMemo",
    "RegionFingerprints",
    "content_fingerprint",
    "pages_identical",
]
