"""Snapshot-delta fast paths (extension).

Delex's per-snapshot cost is dominated by region matching and blackbox
re-extraction, yet slowly-evolving corpora are mostly *unchanged*
pages: the opportunity that differential view-maintenance work
formalizes. This package adds behaviour-preserving shortcuts threaded
through corpus, matchers, reuse engine, runtime, and timing:

* **Page fingerprints** (:mod:`.fingerprint`) — blake2 content hashes
  persisted in snapshot metadata. Fingerprint-equal page pairs
  short-circuit to a whole-page identity match: all units' recorded
  tuples are recycled wholesale, with no matcher run and no region
  derivation.
* **Cross-unit match memo** (:class:`.memo.MatchMemo`) — keyed by
  (page pair, matcher, p-region, q-region), so every IE unit in a
  chain that matches the same region pair pays the diff exactly once
  per snapshot transition. Distinct from the RU
  :class:`~repro.matchers.base.MatchCache`, which stores *found
  segments* for recycling by a different matcher; the memo stores the
  full match result for an exact repeat of the same call.
* **Suffix-automaton cache** (:class:`.memo.AutomatonCache`) — the ST
  matcher's per-(page, q-region) automaton is built once per page pair
  and reused across input rows and units.
* **Indexed reuse-file reader**
  (:class:`.reader_index.IndexedReuseFileReader`) — an in-memory
  page-offset index enabling O(1) group seeks when the page-matching
  scope pairs pages out of order, replacing whole-file
  materialization.

Every fast path is behaviour-preserving: with ``--fastpath on`` the
engine produces byte-identical reuse files and identical extraction
results to ``--fastpath off`` (the same bar as the runtime's
serial/parallel parity). Hit/miss counters are reported through
:class:`.stats.FastPathStats` on
:class:`~repro.timing.Timings.fastpath`.
"""

from .config import FastPathConfig
from .fingerprint import content_fingerprint, pages_identical
from .memo import AutomatonCache, MatchMemo
from .reader_index import IndexedReuseFileReader
from .stats import FastPathStats

__all__ = [
    "AutomatonCache",
    "FastPathConfig",
    "FastPathStats",
    "IndexedReuseFileReader",
    "MatchMemo",
    "content_fingerprint",
    "pages_identical",
]
