"""Offset-indexed reuse-file reading for out-of-order page scopes.

:class:`~repro.reuse.files.ReuseFileReader` is strictly sequential:
page groups must be requested in written order. Scopes that pair pages
across URLs (:class:`~repro.reuse.scope.FingerprintScope`) request
groups in arbitrary order, which previously forced the engine to
materialize whole reuse files in memory
(:func:`~repro.reuse.files.load_reuse_file`). The indexed reader
instead scans the file once at open time to build an in-memory
``did -> byte offset`` index of page markers (a few dozen bytes per
page instead of the decoded tuples), then serves any-order
``seek_page`` calls with one ``seek`` — O(1) per group, O(pages)
memory.

``bytes_read`` counts every byte actually read from the file — the
index-building scan plus each group read — so the block-based I/O
cost model stays honest about the extra pass.
"""

from __future__ import annotations

import json
from typing import Dict

from ..reuse.files import ReuseFileReader, ReuseFileWriter


class IndexedReuseFileReader(ReuseFileReader):
    """Random-access page-group reader over a page offset index."""

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._index: Dict[str, int] = {}
        self.seeks = 0
        self._build_index()

    def _build_index(self) -> None:
        """One sequential scan: record each page marker's end offset.

        The stored offset points just *past* the marker line, so a
        seek lands directly on the group's first tuple record.
        """
        assert self._file is not None
        marker_prefix = b'{"' + ReuseFileWriter.PAGE_MARKER.encode("ascii")
        offset = 0
        for line in self._file:
            offset += len(line)
            if line.startswith(marker_prefix):
                record = json.loads(line)
                did = record.get(ReuseFileWriter.PAGE_MARKER)
                if did is not None:
                    self._index[did] = offset
        self.bytes_read += offset
        self._file.seek(0)

    def __len__(self) -> int:
        return len(self._index)

    def seek_page(self, did: str) -> bool:
        """Jump to the page group for ``did``; any order allowed."""
        offset = self._index.get(did)
        if offset is None or self._file is None:
            return False
        self._pushback = None
        self._exhausted = False
        self._file.seek(offset)
        self.seeks += 1
        return True
