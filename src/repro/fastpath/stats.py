"""Fast-path hit/miss accounting.

Mirrors :class:`~repro.runtime.metrics.RuntimeMetrics`: a small
mutable counter bundle attached to :class:`~repro.timing.Timings`
(``timings.fastpath``) so every system's per-snapshot report carries
how much work its fast paths avoided. Counters merge across parallel
workers exactly like :class:`~repro.reuse.engine.UnitRunStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..obs.util import safe_rate


@dataclass
class FastPathStats:
    """Counters for one snapshot run's fast-path activity."""

    #: page pairs considered (q version existed).
    pages_paired: int = 0
    #: fingerprint-equal pages that took the whole-page identity path.
    pages_short_circuited: int = 0
    #: output tuples recycled wholesale on the identity path.
    tuples_recycled: int = 0
    #: matcher invocations skipped by the identity path.
    matcher_calls_avoided: int = 0
    #: cross-unit match-memo hits / misses.
    memo_hits: int = 0
    memo_misses: int = 0
    #: matcher seconds not spent thanks to memo hits (measured at the
    #: miss that populated each entry).
    memo_seconds_saved: float = 0.0
    #: fingerprint-equal region pairs answered in O(1) by the memo's
    #: equal-region shortcut (no matcher ran, no cache entry needed).
    region_short_circuits: int = 0
    #: cross-snapshot match-cache hits / misses (misses are a subset of
    #: memo_misses: every shared-cache miss also runs the matcher).
    cache_hits: int = 0
    cache_misses: int = 0
    #: entries the cross-snapshot cache evicted while this run inserted.
    cache_evictions: int = 0
    #: suffix automata built vs reused from the per-page-pair cache.
    automata_built: int = 0
    automata_reused: int = 0
    #: q-region bytes copied to build automata. Builds are the only
    #: automaton path that copies text — cache hits are fingerprint
    #: compares — so this staying flat across hits is the proof.
    automata_bytes_copied: int = 0
    #: O(1) group seeks served by the reuse-file offset index.
    reader_index_seeks: int = 0

    def merge(self, other: "FastPathStats") -> None:
        """Accumulate a worker's counters into this one."""
        self.pages_paired += other.pages_paired
        self.pages_short_circuited += other.pages_short_circuited
        self.tuples_recycled += other.tuples_recycled
        self.matcher_calls_avoided += other.matcher_calls_avoided
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.memo_seconds_saved += other.memo_seconds_saved
        self.region_short_circuits += other.region_short_circuits
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.automata_built += other.automata_built
        self.automata_reused += other.automata_reused
        self.automata_bytes_copied += other.automata_bytes_copied
        self.reader_index_seeks += other.reader_index_seeks

    @property
    def memo_hit_rate(self) -> float:
        """Hits over total memo lookups; 0.0 when nothing was looked up."""
        return safe_rate(self.memo_hits, self.memo_hits + self.memo_misses)

    @property
    def combined_hit_rate(self) -> float:
        """Fraction of matcher-level lookups answered without running a
        matcher: memo hits, cross-snapshot cache hits, and equal-region
        shortcuts over all lookups (memo_misses counts exactly the
        lookups that did run a matcher)."""
        hits = (self.memo_hits + self.cache_hits
                + self.region_short_circuits)
        return safe_rate(hits, hits + self.memo_misses)

    @property
    def unchanged_fraction(self) -> float:
        """Short-circuited over paired pages; 0.0 with no pairs."""
        return safe_rate(self.pages_short_circuited, self.pages_paired)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the shared ``to_dict`` contract)."""
        return {
            "pages_paired": self.pages_paired,
            "pages_short_circuited": self.pages_short_circuited,
            "tuples_recycled": self.tuples_recycled,
            "matcher_calls_avoided": self.matcher_calls_avoided,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "memo_seconds_saved": self.memo_seconds_saved,
            "region_short_circuits": self.region_short_circuits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "combined_hit_rate": self.combined_hit_rate,
            "automata_built": self.automata_built,
            "automata_reused": self.automata_reused,
            "automata_bytes_copied": self.automata_bytes_copied,
            "reader_index_seeks": self.reader_index_seeks,
        }

    #: Backwards-compatible alias (pre-serve callers used ``as_dict``).
    as_dict = to_dict

    def describe(self) -> str:
        return (f"short-circuited {self.pages_short_circuited}/"
                f"{self.pages_paired} pages, recycled "
                f"{self.tuples_recycled} tuples, avoided "
                f"{self.matcher_calls_avoided} matcher calls; memo "
                f"{self.memo_hits}h/{self.memo_misses}m "
                f"({self.memo_seconds_saved:.3f}s saved); xsnap cache "
                f"{self.cache_hits}h/{self.cache_misses}m "
                f"(+{self.region_short_circuits} region hits, "
                f"combined {self.combined_hit_rate:.0%}); automata "
                f"{self.automata_reused} reused/{self.automata_built} "
                f"built; {self.reader_index_seeks} indexed seeks")
