"""Page content fingerprints and the unchanged-page test.

The fingerprint is a blake2b-128 over the page's UTF-8 text (see
:func:`repro.text.document.content_fingerprint`), persisted in
snapshot page headers (``"fp"``) so a later crawl's loader gets it for
free. Fingerprint equality is a *filter*: the identity fast path only
fires after an exact text comparison confirms the pages are
byte-identical, so a (vanishingly unlikely) hash collision can never
change results — it only costs one string compare.
"""

from __future__ import annotations

from typing import Optional

from ..text.document import Page, content_fingerprint

__all__ = ["content_fingerprint", "pages_identical"]


def pages_identical(page: Page, q_page: Optional[Page]) -> bool:
    """True iff the two versions of a page are byte-identical.

    Fingerprints reject changed pages in O(1); equal fingerprints are
    confirmed by full text equality (O(n) memcmp, still far cheaper
    than any matcher).
    """
    if q_page is None:
        return False
    if page.fingerprint != q_page.fingerprint:
        return False
    return page.text == q_page.text
