"""Persistent, content-keyed cache of matcher results.

:class:`~repro.fastpath.memo.MatchMemo` deduplicates matcher calls
*within* one page pair; this cache is the layer above it — it outlives
the page pair and is carried across the whole snapshot series by the
reuse engine (and by ``repro.serve`` views across ``apply()`` calls).
Keys are ``(matcher config, fp(p_text[p_region]), fp(q_text[q_region]))``
— pure content, no offsets — so snapshot k+1 replays snapshot k's
match triples whenever the same region content recurs, regardless of
where it moved. Values are *relative* segment triples
``(dp, dq, length)``; the memo rebases them onto the current region
offsets and retags itids on replay.

The cache is an LRU bounded by both entry count and an estimate of
retained bytes, with eviction stats exposed via :meth:`counters` (the
``repro_matchcache_*`` metric families). A lock makes it safe under
the runtime's thread backend, where all workers share one cache;
process workers get a private per-worker cache instead (the engine's
pickle whitelist drops the cache) whose *hit/miss* traffic still merges
into the run's :class:`~repro.fastpath.stats.FastPathStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: Key: (matcher config key, p-region fingerprint, q-region fingerprint).
CacheKey = Tuple[tuple, bytes, bytes]

#: Value: ((dp, dq, length), ...) region-relative segments, plus the
#: seconds the original matcher call took (for seconds-saved accounting).
CacheValue = Tuple[Tuple[Tuple[int, int, int], ...], float]

#: Rough per-entry overhead: key tuples + fingerprints + dict slot.
_ENTRY_BASE_BYTES = 200
#: Rough bytes per stored (dp, dq, length) triple.
_SEGMENT_BYTES = 120


def _entry_bytes(segments: Tuple[Tuple[int, int, int], ...]) -> int:
    return _ENTRY_BASE_BYTES + _SEGMENT_BYTES * len(segments)


class CrossSnapshotMatchCache:
    """Bounded LRU of content-keyed match results.

    Thread-safe; shared across page pairs and snapshots. All counters
    are lifetime totals since construction.
    """

    def __init__(self, max_entries: int = 65536,
                 max_bytes: int = 32 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._data: "OrderedDict[CacheKey, Tuple[CacheValue, int]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[CacheValue]:
        """The cached (segments, cost) for ``key``, refreshing its LRU
        position, or None."""
        with self._lock:
            hit = self._data.get(key)
            if hit is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return hit[0]

    def put(self, key: CacheKey, segments: Tuple[Tuple[int, int, int], ...],
            cost_seconds: float) -> int:
        """Insert (or refresh) an entry; returns how many entries were
        evicted to make room."""
        nbytes = _entry_bytes(segments)
        evicted = 0
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._data[key] = ((segments, cost_seconds), nbytes)
            self._bytes += nbytes
            self.inserts += 1
            while self._data and (len(self._data) > self.max_entries
                                  or self._bytes > self.max_bytes):
                _, (_, freed) = self._data.popitem(last=False)
                self._bytes -= freed
                self.evictions += 1
                evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._data)

    @property
    def bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def counters(self) -> Dict[str, int]:
        """Lifetime counters + current occupancy, for /metrics and
        bench reports."""
        with self._lock:
            return {
                "entries": len(self._data),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "inserts": self.inserts,
                "evictions": self.evictions,
            }

    def describe(self) -> str:
        c = self.counters()
        return (f"matchcache entries={c['entries']} bytes={c['bytes']} "
                f"hits={c['hits']} misses={c['misses']} "
                f"inserts={c['inserts']} evictions={c['evictions']}")
