"""Cross-unit match memoization and suffix-automaton reuse.

Both caches live for exactly one page pair (p, q): the reuse engine
creates them in ``run_page`` and drops them when the page is done, so
no invalidation logic is needed — a new snapshot transition simply
starts from empty caches.

:class:`MatchMemo` memoizes whole matcher calls. Its key is
(matcher configuration, p-region bounds, q-region bounds); within one
page pair the texts are fixed, so the key fully determines the match
result. Every IE unit in a chain that matches the same region pair
(chained units frequently re-match the regions their producers
matched) pays the diff exactly once per snapshot transition. Only the
stateless matchers (ST, UD, WS) are memoized: RU's result depends on
the mutable :class:`~repro.matchers.base.MatchCache` and DN never
matches, so both always delegate.

:class:`AutomatonCache` is finer-grained: when the same q-region is
matched against *different* p-regions (many input rows per unit, or
sibling units), the ST matcher's suffix automaton over the q-region is
identical each time; building it dominates ST's cost, so it is built
once and reused.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..check import invariants as _inv
from ..matchers.base import Matcher
from ..obs import trace as _otrace
from ..matchers.st import SuffixAutomaton
from ..text.regions import MatchSegment
from ..text.span import Interval
from .stats import FastPathStats

#: Matchers whose ``match`` is a pure function of (texts, regions,
#: config) — safe to memoize per page pair.
MEMOIZABLE = ("ST", "UD", "WS")

#: Configuration attributes that distinguish matcher instances.
_CONFIG_ATTRS = ("min_length", "max_d", "k", "window", "max_anchors")


def matcher_config_key(matcher: Matcher) -> Tuple:
    """Hashable identity of a matcher's behaviour-relevant config."""
    return (matcher.name,) + tuple(getattr(matcher, attr, None)
                                   for attr in _CONFIG_ATTRS)


class MatchMemo:
    """Per-page-pair memo of matcher calls.

    Stores the *untagged* segment list exactly as ``Matcher.match``
    returned it; replays re-tag with the caller's candidate itid, so a
    hit is byte-for-byte what the matcher would have produced.
    """

    def __init__(self, stats: Optional[FastPathStats] = None) -> None:
        self._memo: Dict[Tuple, List[MatchSegment]] = {}
        self._cost: Dict[Tuple, float] = {}
        self.stats = stats if stats is not None else FastPathStats()

    def __len__(self) -> int:
        return len(self._memo)

    def match_many(self, matcher: Matcher, p_text: str,
                   p_region: Interval, q_text: str,
                   candidates: Dict[int, Interval]) -> List[MatchSegment]:
        """Memoized equivalent of :meth:`Matcher.match_many`.

        Iterates candidates in the caller's order and tags segments
        with each candidate's itid, exactly like the default
        ``match_many`` loop — so routing through the memo is
        observationally identical to calling the matcher directly.
        """
        if matcher.name not in MEMOIZABLE:
            return matcher.match_many(p_text, p_region, q_text, candidates)
        config = matcher_config_key(matcher)
        out: List[MatchSegment] = []
        for itid, q_region in candidates.items():
            key = (config, p_region.start, p_region.end,
                   q_region.start, q_region.end)
            segments = self._memo.get(key)
            if segments is None:
                start = time.perf_counter()
                segments = matcher.match(p_text, p_region, q_text, q_region)
                self._cost[key] = time.perf_counter() - start
                self._memo[key] = segments
                self.stats.memo_misses += 1
                if _otrace.ENABLED:  # annotate the enclosing page span
                    _otrace.annotate("memo_misses")
            else:
                self.stats.memo_hits += 1
                self.stats.memo_seconds_saved += self._cost.get(key, 0.0)
                if _otrace.ENABLED:
                    _otrace.annotate("memo_hits")
                if _inv.ENABLED:
                    # Memo-hit retag soundness: the replayed segments
                    # must still witness text equality inside both
                    # regions of *this* call (--check layer).
                    _inv.check_memo_replay(segments, p_text, q_text,
                                           p_region, q_region)
            for seg in segments:
                out.append(replace(seg, q_itid=itid))
        return out


class AutomatonCache:
    """Per-page-pair cache of ST suffix automata, keyed by q-region.

    Within one page pair the q text is fixed, so the region bounds
    fully determine the automaton; the stored q-body is verified on
    every hit anyway (one memcmp — cheap insurance against misuse
    across page pairs, and far cheaper than rebuilding).
    """

    def __init__(self, stats: Optional[FastPathStats] = None) -> None:
        self._cache: Dict[Tuple[int, int], Tuple[str, SuffixAutomaton]] = {}
        self.stats = stats if stats is not None else FastPathStats()

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, q_text: str, q_region: Interval) -> SuffixAutomaton:
        """The suffix automaton of ``q_text[q_region]``, cached."""
        key = (q_region.start, q_region.end)
        body = q_text[q_region.start:q_region.end]
        entry = self._cache.get(key)
        if entry is not None and entry[0] == body:
            self.stats.automata_reused += 1
            return entry[1]
        sam = SuffixAutomaton(body)
        self._cache[key] = (body, sam)
        self.stats.automata_built += 1
        return sam
