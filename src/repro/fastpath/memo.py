"""Content-keyed match memoization and suffix-automaton reuse.

:class:`MatchMemo` memoizes whole matcher calls. Its key is
(matcher config key, fingerprint of ``p_text[p_region]``, fingerprint
of ``q_text[q_region]``) — pure *content*, no offsets — so a hit is
valid wherever the same region text recurs: chained units re-matching
their producers' regions, different pages sharing boilerplate, and
(through an optional shared :class:`~repro.fastpath.matchcache.
CrossSnapshotMatchCache`) later snapshots re-matching regions that
merely moved. Stored segments are region-relative triples; replay
rebases them onto the caller's region offsets and tags the caller's
itid, so a hit is byte-for-byte what the matcher would have produced.
Only the stateless matchers (ST, UD, WS) are memoized: RU's result
depends on the mutable :class:`~repro.matchers.base.MatchCache` and DN
never matches, so both always delegate.

Two extra layers ride on the content keys:

* **Equal-region shortcut** — when both fingerprints are equal, ST and
  UD provably return the single full-region segment (or nothing, for
  ST regions under ``min_length``), so the memo answers in O(1)
  without ever running a matcher (``region_short_circuits``). WS is
  excluded: repeated k-grams can make it emit extra shifted segments
  even for identical regions.

* **:class:`AutomatonCache`** — per page pair, ST's suffix automaton
  over a q-region is keyed by the region's fingerprint, so a hit costs
  one dict probe instead of the full O(region) body copy + memcmp the
  bounds-keyed version paid (``automata_bytes_copied`` grows only on
  builds — its staying flat across hits is the proof).

The memo and automaton cache live for one page pair; fingerprints are
memoized per (text identity, bounds) so each unique region is hashed
once. With ``--check`` enabled, every replayed result is re-verified
to witness text equality inside the *current* regions, which also
makes a (cryptographically negligible) blake2b collision detectable.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..check import invariants as _inv
from ..matchers.base import Matcher
from ..obs import trace as _otrace
from ..matchers.st import SuffixAutomaton
from .fingerprint import content_fingerprint
from ..text.regions import MatchSegment
from ..text.span import Interval
from .matchcache import CrossSnapshotMatchCache
from .stats import FastPathStats

#: Matchers whose ``match`` is a pure function of (texts, regions,
#: config) — safe to memoize and to share across snapshots.
MEMOIZABLE = ("ST", "UD", "WS")


def matcher_config_key(matcher: Matcher) -> Tuple:
    """Hashable identity of a matcher's behaviour-relevant config.

    Delegates to :meth:`repro.matchers.base.Matcher.config_key`; kept
    as a function for callers that hold only a matcher instance.
    """
    return matcher.config_key()


class RegionFingerprints:
    """Memoized blake2b fingerprints of one text's regions.

    Each unique (start, end) is sliced and hashed exactly once; the
    digest then stands in for the region's content in every cache key.
    Bound to one text object — callers swap in a fresh instance when
    the text changes (identity check, so no text comparison either).
    """

    __slots__ = ("text", "_digests")

    def __init__(self, text: str) -> None:
        self.text = text
        self._digests: Dict[Tuple[int, int], str] = {}

    def get(self, start: int, end: int) -> str:
        key = (start, end)
        digest = self._digests.get(key)
        if digest is None:
            digest = content_fingerprint(self.text[start:end])
            self._digests[key] = digest
        return digest

    def __len__(self) -> int:
        return len(self._digests)


def _rebase(rel_segments: Tuple[Tuple[int, int, int], ...],
            p_start: int, q_start: int, itid: int) -> List[MatchSegment]:
    """Region-relative triples -> absolute tagged segments."""
    return [MatchSegment(p_start + dp, q_start + dq, length, q_itid=itid)
            for dp, dq, length in rel_segments]


class MatchMemo:
    """Per-page-pair, content-keyed memo of matcher calls.

    ``shared``, when given, is a :class:`CrossSnapshotMatchCache`
    consulted on local misses and populated on matcher runs — the
    layer that carries results across page pairs and snapshots. Its
    hit/miss traffic lands in ``stats.cache_hits`` /
    ``stats.cache_misses`` (every shared miss also counts as a
    ``memo_miss``, since the matcher then runs).
    """

    def __init__(self, stats: Optional[FastPathStats] = None,
                 shared: Optional[CrossSnapshotMatchCache] = None) -> None:
        # key -> (region-relative segment triples, matcher seconds).
        self._memo: Dict[Tuple, Tuple[Tuple[Tuple[int, int, int], ...],
                                      float]] = {}
        self._p_fps: Optional[RegionFingerprints] = None
        self._q_fps: Optional[RegionFingerprints] = None
        self.shared = shared
        self.stats = stats if stats is not None else FastPathStats()
        # config_key() walks CONFIG_ATTRS with getattr; matchers are
        # immutable after construction, so one computation per matcher
        # identity suffices (match_many runs thousands of times per
        # snapshot against the same few instances).
        self._last_matcher: Optional[Matcher] = None
        self._last_config: Tuple = ()

    def __len__(self) -> int:
        return len(self._memo)

    def _p_fingerprint(self, p_text: str, region: Interval) -> str:
        if self._p_fps is None or self._p_fps.text is not p_text:
            self._p_fps = RegionFingerprints(p_text)
        return self._p_fps.get(region.start, region.end)

    def _q_fingerprint(self, q_text: str, region: Interval) -> str:
        if self._q_fps is None or self._q_fps.text is not q_text:
            self._q_fps = RegionFingerprints(q_text)
        return self._q_fps.get(region.start, region.end)

    @staticmethod
    def _equal_region_segments(matcher: Matcher, length: int
                               ) -> Optional[Tuple[Tuple[int, int, int], ...]]:
        """What ST/UD return for two content-equal regions, in O(1).

        ST's match profile over identical bodies rises by one per
        position, leaving a single peak spanning the whole region (if
        it clears ``min_length``); UD aligns every line and extension
        is already region-bounded. WS gets ``None``: not eligible.
        """
        if matcher.name == "ST":
            if length >= matcher.min_length:
                return ((0, 0, length),)
            return ()
        if matcher.name == "UD":
            if length > 0:
                return ((0, 0, length),)
            return ()
        return None

    def match_many(self, matcher: Matcher, p_text: str,
                   p_region: Interval, q_text: str,
                   candidates: Dict[int, Interval]) -> List[MatchSegment]:
        """Memoized equivalent of :meth:`Matcher.match_many`.

        Iterates candidates in the caller's order and tags segments
        with each candidate's itid, exactly like the default
        ``match_many`` loop — so routing through the memo is
        observationally identical to calling the matcher directly.
        """
        if matcher.name not in MEMOIZABLE:
            return matcher.match_many(p_text, p_region, q_text, candidates)
        if self._last_matcher is not matcher:
            self._last_config = matcher.config_key()
            self._last_matcher = matcher
        config = self._last_config
        p_fp = self._p_fingerprint(p_text, p_region)
        p_start = p_region.start
        # Local bindings: this loop runs per input row on the fast
        # path, where attribute loads are a measurable share of the
        # sub-10us per-candidate budget.
        q_fps = self._q_fps
        if q_fps is None or q_fps.text is not q_text:
            q_fps = RegionFingerprints(q_text)
            self._q_fps = q_fps
        q_fingerprint = q_fps.get
        stats = self.stats
        memo = self._memo
        shared = self.shared
        out: List[MatchSegment] = []
        for itid, q_region in candidates.items():
            q_fp = q_fingerprint(q_region.start, q_region.end)
            if p_fp == q_fp:
                shortcut = self._equal_region_segments(
                    matcher, p_region.end - p_start)
                if shortcut is not None:
                    stats.region_short_circuits += 1
                    segments = _rebase(shortcut, p_start,
                                       q_region.start, itid)
                    if _inv.ENABLED:
                        _inv.check_memo_replay(segments, p_text, q_text,
                                               p_region, q_region)
                    out.extend(segments)
                    continue
            key = (config, p_fp, q_fp)
            entry = memo.get(key)
            replayed = True
            if entry is None and shared is not None:
                entry = shared.get(key)
                if entry is not None:
                    stats.cache_hits += 1
                    memo[key] = entry  # adopt for siblings
            elif entry is not None:
                stats.memo_hits += 1
                if _otrace.ENABLED:  # annotate the enclosing page span
                    _otrace.annotate("memo_hits")
            if entry is None:
                replayed = False
                if shared is not None:
                    stats.cache_misses += 1
                start = time.perf_counter()
                found = matcher.match(p_text, p_region, q_text, q_region)
                cost = time.perf_counter() - start
                rel = tuple((seg.p_start - p_start,
                             seg.q_start - q_region.start, seg.length)
                            for seg in found)
                entry = (rel, cost)
                memo[key] = entry
                if shared is not None:
                    stats.cache_evictions += shared.put(key, rel, cost)
                stats.memo_misses += 1
                if _otrace.ENABLED:
                    _otrace.annotate("memo_misses")
            segments = _rebase(entry[0], p_start, q_region.start, itid)
            if replayed:
                stats.memo_seconds_saved += entry[1]
                if _inv.ENABLED:
                    # Replay soundness: rebased segments must still
                    # witness text equality inside *this* call's
                    # regions (--check layer; also flags fingerprint
                    # collisions).
                    _inv.check_memo_replay(segments, p_text, q_text,
                                           p_region, q_region)
            out.extend(segments)
        return out


class AutomatonCache:
    """Per-page-pair cache of ST suffix automata, keyed by the
    q-region's content fingerprint.

    A hit costs one memoized-fingerprint lookup plus a dict probe — no
    body copy, no memcmp (the bounds-keyed predecessor copied the full
    region text on *every* call to verify it; ``automata_bytes_copied``
    counts build-path copies only, proving hits stay O(1)). Content
    keying also lets equal-content regions at different bounds share
    one automaton.
    """

    def __init__(self, stats: Optional[FastPathStats] = None) -> None:
        self._cache: Dict[str, SuffixAutomaton] = {}
        self._fps: Optional[RegionFingerprints] = None
        self.stats = stats if stats is not None else FastPathStats()

    def __len__(self) -> int:
        return len(self._cache)

    def _fingerprint(self, q_text: str, q_region: Interval) -> str:
        if self._fps is None or self._fps.text is not q_text:
            self._fps = RegionFingerprints(q_text)
        return self._fps.get(q_region.start, q_region.end)

    def peek(self, q_text: str,
             q_region: Interval) -> Optional[SuffixAutomaton]:
        """The cached automaton, or None — never builds, never counts.

        The ST kernel path uses this to prefer an existing automaton
        over re-anchoring; stat accounting stays with :meth:`get`.
        """
        return self._cache.get(self._fingerprint(q_text, q_region))

    def get(self, q_text: str, q_region: Interval) -> SuffixAutomaton:
        """The suffix automaton of ``q_text[q_region]``, cached."""
        fingerprint = self._fingerprint(q_text, q_region)
        sam = self._cache.get(fingerprint)
        if sam is not None:
            self.stats.automata_reused += 1
            return sam
        body = q_text[q_region.start:q_region.end]
        self.stats.automata_bytes_copied += len(body)
        sam = SuffixAutomaton(body)
        self._cache[fingerprint] = sam
        self.stats.automata_built += 1
        return sam
