"""Extractor wrappers used by experiments.

:class:`MentionMultiplier` reproduces the Figure 14 experiment setup:
the paper modifies each IE blackbox so every extracted mention is
output multiple times, inflating the captured IE results. Exact
duplicates would be collapsed by set semantics, so each replica carries
a distinguishing ``copy_id`` scalar — the capture files and copy work
grow by the multiplier while the underlying extraction is unchanged.
"""

from __future__ import annotations

from typing import Iterable, List

from .base import Extraction, Extractor


class MentionMultiplier(Extractor):
    """Emits each underlying extraction ``factor`` times.

    Replicas differ only in the appended ``copy_id`` field. Scope and
    context are inherited from the wrapped extractor; correctness of
    reuse is therefore unaffected.
    """

    def __init__(self, inner: Extractor, factor: int,
                 copy_var: str = "copy_id") -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        super().__init__(inner.name, list(inner.output_vars) + [copy_var],
                         inner.scope, inner.context, work_factor=0)
        self.inner = inner
        self.factor = factor
        self.copy_var = copy_var
        # Keep the engine's span/scalar classification correct.
        self.scalars = dict(getattr(inner, "scalars", {}) or {})
        self.scalars[copy_var] = None

    def _extract(self, text: str) -> Iterable[Extraction]:
        for extraction in self.inner.extract(text):
            for i in range(self.factor):
                yield Extraction(tuple(sorted(
                    extraction.fields + ((self.copy_var, i),))))


def multiply_task_mentions(task, factor: int):
    """Return a copy of an IE task whose *leaf* blackboxes emit every
    mention ``factor`` times (the Figure 14 workload).

    Only blackboxes whose outputs are not consumed as regions by other
    IE predicates are multiplied — multiplying an upstream region
    extractor would cascade multiplicatively through the tree, whereas
    the paper's experiment grows the total mention count linearly.
    """
    from ..xlog.parser import parse_program
    from ..xlog.registry import Registry
    from ..xlog.validation import validate_program
    from .library import IETask

    base_program = parse_program(task.source, name=task.name)
    ie_input_vars = set()
    for rule in base_program.rules:
        for atom in rule.body:
            if task.registry.is_ie_predicate(atom.pred):
                ie_input_vars.add(atom.args[0].name)

    def is_leaf(pred: str) -> bool:
        for rule in base_program.rules:
            for atom in rule.body:
                if atom.pred != pred:
                    continue
                for arg in atom.args[1:]:
                    if arg.name in ie_input_vars:
                        return False
        return True

    registry = Registry()
    source = task.source
    multiplied: List[str] = []
    for name in task.blackboxes:
        inner = task.registry.extractor(name)
        if is_leaf(name):
            registry.register_extractor(MentionMultiplier(inner, factor))
            # The IE predicate gains one output argument (the copy id).
            source = _add_copy_arg(source, name, f"cid_{name}")
            multiplied.append(name)
        else:
            registry.register_extractor(inner)
    program = parse_program(source, name=f"{task.name}_x{factor}")
    validate_program(program, registry)
    return IETask(name=f"{task.name}_x{factor}", corpus=task.corpus,
                  source=source, registry=registry, program=program,
                  program_alpha=task.program_alpha,
                  program_beta=task.program_beta,
                  blackboxes=task.blackboxes)


def _add_copy_arg(source: str, pred: str, var: str) -> str:
    """Append an output variable to every atom of ``pred`` in a
    program source (textual rewrite; atoms never span lines in the
    library sources... they may, so match across whitespace)."""
    import re

    def repl(match: "re.Match[str]") -> str:
        return match.group(0)[:-1] + f", {var})"

    return re.sub(rf"\b{re.escape(pred)}\([^)]*\)", repl, source)
