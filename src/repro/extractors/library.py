"""The evaluation IE programs (Figure 8b and the Figure 15 program).

Each :class:`IETask` bundles an xlog program, the extractor registry
that backs its IE predicates, the per-blackbox (α, β) declarations, the
whole-program (α, β) the Cyclex baseline must use, and the corpus the
task runs on. The blackbox counts match Figure 8b:

====================  =========  ==============================
task                  blackboxes corpus
====================  =========  ==============================
talk                  1          DBLife-like
chair                 3          DBLife-like
advise                5          DBLife-like
blockbuster           2          Wikipedia-like
play                  4          Wikipedia-like
award                 6          Wikipedia-like
infobox (learning)    5          Wikipedia-like
====================  =========  ==============================

Whole-program scopes mirror the paper's magnitudes: tiny for the
single-blackbox ``talk`` program, page-scale for the section-based
programs — which is exactly why Cyclex gets little reuse on them.

``work_factor`` emulates the heavyweight Perl/Java blackboxes of the
paper's testbed (see :mod:`repro.extractors.base`); pass
``work_scale=0`` to make all rule extractors instantaneous (unit
tests do this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..xlog.ast import Program
from ..xlog.parser import parse_program
from ..xlog.registry import Registry
from ..xlog.validation import validate_program
from .base import Extractor
from .learning import CRFFieldExtractor, MaxEntSentenceSegmenter
from .rules import (
    IntGroupScalar,
    LineExtractor,
    RegexExtractor,
    SectionExtractor,
)

_NAME = r"[A-Z][a-z]+ [A-Z][a-z]+"
_MOVIE = r"[A-Z][a-z]+ [A-Z][a-z]+"


@dataclass
class IETask:
    """A ready-to-run IE task: program + registry + declarations."""

    name: str
    corpus: str  # "dblife" or "wikipedia"
    source: str
    registry: Registry
    program: Program
    program_alpha: int
    program_beta: int
    blackboxes: Tuple[str, ...]

    def extractors(self) -> List[Extractor]:
        return [self.registry.extractor(n) for n in self.blackboxes]


def _build(name: str, corpus: str, source: str,
           extractors: Sequence[Extractor],
           program_alpha: int, program_beta: int) -> IETask:
    registry = Registry()
    for extractor in extractors:
        registry.register_extractor(extractor)
    program = parse_program(source, name=name)
    validate_program(program, registry)
    return IETask(name=name, corpus=corpus, source=source,
                  registry=registry, program=program,
                  program_alpha=program_alpha, program_beta=program_beta,
                  blackboxes=tuple(e.name for e in extractors))


# -- DBLife tasks -----------------------------------------------------------

def talk_task(work_scale: float = 1.0) -> IETask:
    """``talk(speaker, topics)`` — the single-blackbox program.

    Delex and Cyclex should perform identically here (Figure 10, the
    'talk' panel): there is only one blackbox, so unit-level reuse
    degenerates to whole-program reuse with the same tight α=155, β=9.
    """
    wf = round(240 * work_scale)
    extract_talk = RegexExtractor(
        "extractTalk",
        r'by (?P<speaker>[A-Z][a-z]+ [A-Z][a-z]+)\. '
        r'Topics: (?P<topics>[^.\n]+)\.',
        groups={"speaker": "speaker", "topics": "topics"},
        scope=155, context=9, work_factor=wf)
    source = """
        talk(speaker, topics) :- docs(d), extractTalk(d, speaker, topics).
    """
    return _build("talk", "dblife", source, [extract_talk],
                  program_alpha=155, program_beta=9)


def chair_task(work_scale: float = 1.0) -> IETask:
    """``chair(person, chairType, conference)`` — 3 blackboxes in one
    chain: service section -> chair sentence -> fact fields."""
    sec = SectionExtractor("extractServiceSec", "sec", "Service",
                           scope=9458, context=32,
                           work_factor=round(10 * work_scale))
    sent = LineExtractor("extractChairSent", "sent", scope=300,
                         must_contain="chair", context=4,
                         work_factor=round(100 * work_scale))
    fact = RegexExtractor(
        "extractChairFact",
        rf'(?P<person>{_NAME}) serves as (?P<ctype>[a-z]+) chair of '
        r'(?P<conf>[A-Z]{3,6} \d{4})',
        groups={"person": "person", "ctype": "ctype", "conf": "conf"},
        scope=200, context=6, work_factor=round(3000 * work_scale))
    source = """
        chair(person, ctype, conf) :- docs(d), extractServiceSec(d, sec),
            extractChairSent(sec, sent),
            extractChairFact(sent, person, ctype, conf).
    """
    return _build("chair", "dblife", source, [sec, sent, fact],
                  program_alpha=9458, program_beta=9458)


def advise_task(work_scale: float = 1.0) -> IETask:
    """``advise(advisor, advisee, topic)`` — 5 blackboxes: an advising
    section chain plus three field extractors fanning out of the
    sentence unit."""
    sec = SectionExtractor("extractAdvisingSec", "sec", "Advising",
                           scope=20539, context=32,
                           work_factor=round(10 * work_scale))
    sent = LineExtractor("extractAdviseSent", "sent", scope=300,
                         must_contain="advises", context=4,
                         work_factor=round(100 * work_scale))
    advisor = RegexExtractor(
        "extractAdvisor", rf'Prof\. (?P<advisor>{_NAME}) advises',
        groups={"advisor": "advisor"}, scope=80, context=12,
        work_factor=round(1200 * work_scale))
    advisee = RegexExtractor(
        "extractAdvisee", rf'advises (?P<advisee>{_NAME}) on',
        groups={"advisee": "advisee"}, scope=80, context=12,
        work_factor=round(1200 * work_scale))
    topic = RegexExtractor(
        "extractAdvTopic", r' on (?P<topic>[a-z][a-z ]{2,40})\.',
        groups={"topic": "topic"}, scope=60, context=12,
        work_factor=round(1200 * work_scale))
    source = """
        advise(advisor, advisee, topic) :- docs(d),
            extractAdvisingSec(d, sec), extractAdviseSent(sec, sent),
            extractAdvisor(sent, advisor), extractAdvisee(sent, advisee),
            extractAdvTopic(sent, topic).
    """
    return _build("advise", "dblife", source,
                  [sec, sent, advisor, advisee, topic],
                  program_alpha=20539, program_beta=20539)


# -- Wikipedia tasks --------------------------------------------------------

def blockbuster_task(work_scale: float = 1.0) -> IETask:
    """``blockbuster(movie)`` — 2 blackboxes: a box-office section
    extractor feeding a gross-fact extractor. The gross-amount filter
    is a σ over the fact unit's scalar output and the head π keeps only
    the movie span — both are absorbed into the IE unit, so the unit
    stores post-σ/π tuples (Section 4)."""
    sec = SectionExtractor("extractBoxOfficeSec", "sec", "Box office",
                           scope=10625, context=32,
                           work_factor=round(10 * work_scale))
    fact = RegexExtractor(
        "extractGrossFact",
        rf'(?P<movie>{_MOVIE}) grossed \$(?P<amount>\d+) million',
        groups={"movie": "movie"},
        scalars={"amount": IntGroupScalar("amount")},
        scope=80, context=10, work_factor=round(3000 * work_scale))
    source = """
        blockbuster(movie) :- docs(d), extractBoxOfficeSec(d, sec),
            extractGrossFact(sec, movie, amount), atLeast(amount, 100).
    """
    return _build("blockbuster", "wikipedia", source, [sec, fact],
                  program_alpha=10625, program_beta=10625)


def play_task(work_scale: float = 1.0) -> IETask:
    """``play(actor, movie)`` — 4 blackboxes (the Figure 12 task: a
    4-unit plan has exactly 4^4 = 256 matcher assignments)."""
    sec = SectionExtractor("extractFilmSec", "sec", "Filmography",
                           scope=10625, context=32,
                           work_factor=round(10 * work_scale))
    sent = LineExtractor("extractPlaySent", "sent", scope=300,
                         must_contain="starred as", context=4,
                         work_factor=round(80 * work_scale))
    actor = RegexExtractor(
        "extractPlayActor", rf'(?P<actor>{_NAME}) starred as',
        groups={"actor": "actor"}, scope=80, context=12,
        work_factor=round(1200 * work_scale))
    movie = RegexExtractor(
        "extractPlayMovie", rf'in (?P<movie>{_MOVIE}) \(\d{{4}}\)',
        groups={"movie": "movie"}, scope=60, context=10,
        work_factor=round(1200 * work_scale))
    source = """
        play(actor, movie) :- docs(d), extractFilmSec(d, sec),
            extractPlaySent(sec, sent), extractPlayActor(sent, actor),
            extractPlayMovie(sent, movie).
    """
    return _build("play", "wikipedia", source, [sec, sent, actor, movie],
                  program_alpha=10625, program_beta=10625)


def award_task(work_scale: float = 1.0) -> IETask:
    """``award(actor, award, movie, year)`` — 6 blackboxes."""
    sec = SectionExtractor("extractAwardSec", "sec", "Awards",
                           scope=8875, context=32,
                           work_factor=round(10 * work_scale))
    sent = LineExtractor("extractAwardSent", "sent", scope=300,
                         must_contain="won the", context=4,
                         work_factor=round(80 * work_scale))
    actor = RegexExtractor(
        "extractAwardActor", rf'(?P<actor>{_NAME}) won the',
        groups={"actor": "actor"}, scope=80, context=12,
        work_factor=round(900 * work_scale))
    award = RegexExtractor(
        "extractAwardName", r'won the (?P<award>[A-Z][A-Za-z ]+ Award'
                            r'(?: for Best [A-Za-z]+)?)',
        groups={"award": "award"}, scope=90, context=12,
        work_factor=round(900 * work_scale))
    movie = RegexExtractor(
        "extractAwardMovie", rf'for (?P<movie>{_MOVIE}) \(',
        groups={"movie": "movie"}, scope=60, context=10,
        work_factor=round(900 * work_scale))
    year = RegexExtractor(
        "extractAwardYear", r'\((?P<year>\d{4})\)',
        groups={"year": "year"}, scope=20, context=4,
        work_factor=round(900 * work_scale))
    source = """
        award(actor, award, movie, year) :- docs(d),
            extractAwardSec(d, sec), extractAwardSent(sec, sent),
            extractAwardActor(sent, actor), extractAwardName(sent, award),
            extractAwardMovie(sent, movie), extractAwardYear(sent, year).
    """
    return _build("award", "wikipedia", source,
                  [sec, sent, actor, award, movie, year],
                  program_alpha=8875, program_beta=8875)


# -- Learning-based program (Figure 15) -------------------------------------

def infobox_task(work_scale: float = 1.0) -> IETask:
    """The learning-based infobox program: an ME sentence segmenter
    feeding four CRF field extractors (5 blackboxes).

    The CRFs keep the conservative α = β = longest-sentence setting the
    paper uses when tight values cannot be derived; the ME segmenter
    gets the derived α=321, β=16. The models are genuinely expensive
    (Viterbi decoding per sentence); ``work_scale`` additionally scales
    the emulated feature-extraction work like the rule tasks.
    """
    wf = round(60 * work_scale)
    seg = MaxEntSentenceSegmenter("segmentSentences", "sent", scope=321,
                                  work_factor=round(20 * work_scale))
    crf_name = CRFFieldExtractor("crfName", "value", "name",
                                 work_factor=wf)
    crf_birth_name = CRFFieldExtractor("crfBirthName", "value",
                                       "birth_name", work_factor=wf)
    crf_birth_date = CRFFieldExtractor("crfBirthDate", "value",
                                       "birth_date", work_factor=wf)
    crf_roles = CRFFieldExtractor("crfRoles", "value", "roles",
                                  work_factor=wf)
    source = """
        name(d, value) :- docs(d), segmentSentences(d, sent),
                          crfName(sent, value).
        birthName(d, value) :- docs(d), segmentSentences(d, sent),
                               crfBirthName(sent, value).
        birthDate(d, value) :- docs(d), segmentSentences(d, sent),
                               crfBirthDate(sent, value).
        roles(d, value) :- docs(d), segmentSentences(d, sent),
                           crfRoles(sent, value).
    """
    return _build("infobox", "wikipedia", source,
                  [seg, crf_name, crf_birth_name, crf_birth_date, crf_roles],
                  program_alpha=2000, program_beta=500)


_TASK_FACTORIES = {
    "talk": talk_task,
    "chair": chair_task,
    "advise": advise_task,
    "blockbuster": blockbuster_task,
    "play": play_task,
    "award": award_task,
    "infobox": infobox_task,
}

RULE_TASKS: Tuple[str, ...] = ("talk", "chair", "advise",
                               "blockbuster", "play", "award")
ALL_TASKS: Tuple[str, ...] = RULE_TASKS + ("infobox",)


def make_task(name: str, work_scale: float = 1.0) -> IETask:
    """Instantiate an evaluation task by name."""
    try:
        factory = _TASK_FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown task {name!r}; choose from {ALL_TASKS}")
    return factory(work_scale=work_scale)
