"""Learning-based extractor blackboxes, built from scratch.

The paper's Figure 15 experiment runs an infobox-construction program
(Wu & Weld, CIKM-07) consisting of a maximum-entropy sentence segmenter
and four linear-chain CRF field extractors. Those models are not
available, so we implement both model families here:

* :class:`MaxEntSentenceSegmenter` — logistic regression over candidate
  delimiter characters, trained with gradient descent on synthetic
  labeled text. Its context β is the classifier's character window
  (the paper derives β_ME the same way), its scope α the longest
  sentence.
* :class:`CRFFieldExtractor` — a linear-chain CRF with BIO labels over
  whitespace tokens, Viterbi decoding, and averaged-perceptron
  training on synthetic labeled sentences. As in the paper, tight α/β
  cannot be derived for a CRF, so both default to the longest input the
  model accepts — the reuse engine then only copies a CRF mention when
  its whole input region reappears unchanged, exactly the conservative
  behavior the paper describes.

Training is deterministic (fixed seeds) and happens at construction;
trained weights are memoized per configuration so building a program
twice does not retrain.
"""

from __future__ import annotations

import math
import random
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..corpus import vocab
from .base import Extraction, Extractor, RelSpan

# --------------------------------------------------------------------------
# Maximum-entropy sentence segmenter
# --------------------------------------------------------------------------

_DELIMITERS = ".!?\n"
_ME_WINDOW = 8


def _char_class(ch: str) -> str:
    if ch.isupper():
        return "U"
    if ch.islower():
        return "l"
    if ch.isdigit():
        return "d"
    if ch in _DELIMITERS:
        return "D"
    if ch.isspace():
        return "s"
    return "p"


def _me_features(text: str, pos: int) -> List[str]:
    """Features describing the delimiter at ``pos`` and its window."""
    feats = [f"cur={text[pos]}"]
    for off in range(1, _ME_WINDOW + 1):
        left = text[pos - off] if pos - off >= 0 else "^"
        right = text[pos + off] if pos + off < len(text) else "$"
        feats.append(f"L{off}={_char_class(left)}")
        feats.append(f"R{off}={_char_class(right)}")
    nxt = text[pos + 1] if pos + 1 < len(text) else "$"
    feats.append(f"next_space={nxt.isspace() or nxt == '$'}")
    if pos + 2 < len(text):
        feats.append(f"next_upper={text[pos + 2].isupper()}")
    return feats


class _LogisticModel:
    """Sparse binary logistic regression trained by gradient descent."""

    def __init__(self) -> None:
        self.weights: Dict[str, float] = {}
        self.bias = 0.0

    def score(self, feats: Sequence[str]) -> float:
        return self.bias + sum(self.weights.get(f, 0.0) for f in feats)

    def predict(self, feats: Sequence[str]) -> bool:
        return self.score(feats) > 0.0

    def train(self, data: Sequence[Tuple[List[str], bool]],
              epochs: int = 12, rate: float = 0.4) -> None:
        for _ in range(epochs):
            for feats, label in data:
                prob = 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0,
                                                             self.score(feats)))))
                grad = (1.0 if label else 0.0) - prob
                if abs(grad) < 1e-6:
                    continue
                step = rate * grad
                self.bias += step
                for f in feats:
                    self.weights[f] = self.weights.get(f, 0.0) + step


def _me_training_text(seed: int = 7, n_lines: int = 160) -> Tuple[str, List[int]]:
    """Synthetic text plus the positions of true sentence boundaries."""
    rng = random.Random(seed)
    parts: List[str] = []
    boundaries: List[int] = []
    pos = 0
    for _ in range(n_lines):
        sentence = rng.choice((
            lambda: rng.choice(vocab.FILLER_SENTENCES),
            lambda: (f"{vocab.person_name(rng)} starred as "
                     f"{rng.choice(vocab.CHARACTERS)} in "
                     f"{vocab.movie_title(rng)} ({rng.randint(1985, 2009)})."),
            lambda: (f"Born {vocab.person_name(rng)} on "
                     f"{rng.choice(vocab.MONTHS)} {rng.randint(1, 28)}, "
                     f"{rng.randint(1950, 1990)}."),
            lambda: (f"Ver. {rng.randint(1, 9)}.{rng.randint(0, 9)} of the "
                     f"archive is out."),
        ))()
        parts.append(sentence)
        pos += len(sentence)
        boundaries.append(pos - 1)
        sep = rng.choice((" ", "\n"))
        parts.append(sep)
        pos += len(sep)
    return "".join(parts), boundaries


_ME_MODEL_CACHE: Dict[int, _LogisticModel] = {}


def _trained_me_model(seed: int = 7) -> _LogisticModel:
    if seed not in _ME_MODEL_CACHE:
        text, boundaries = _me_training_text(seed)
        truth = set(boundaries)
        data: List[Tuple[List[str], bool]] = []
        for pos, ch in enumerate(text):
            if ch in _DELIMITERS:
                data.append((_me_features(text, pos), pos in truth))
        model = _LogisticModel()
        model.train(data)
        _ME_MODEL_CACHE[seed] = model
    return _ME_MODEL_CACHE[seed]


class MaxEntSentenceSegmenter(Extractor):
    """ME classifier deciding which delimiter characters end sentences.

    Matches the paper's derivation: α_ME is the longest sentence the
    segmenter will emit, β_ME the size of the character window the
    classifier examines around a delimiter.
    """

    def __init__(self, name: str = "segmentSentences", var: str = "sent",
                 scope: int = 321, seed: int = 7,
                 work_factor: int = 0) -> None:
        super().__init__(name, [var], scope, 2 * _ME_WINDOW, work_factor)
        self.var = var
        self.model = _trained_me_model(seed)

    def _extract(self, text: str) -> Iterable[Extraction]:
        boundaries = [
            pos for pos, ch in enumerate(text)
            if ch in _DELIMITERS and self.model.predict(_me_features(text, pos))
        ]
        start = 0
        for pos in boundaries:
            end = pos + 1
            s = start
            while s < end and text[s].isspace():
                s += 1
            if s < end and end - s < self.scope:
                yield Extraction.of(**{self.var: RelSpan(s, end)})
            start = end
        # Trailing text with no accepted delimiter is not a sentence.


# --------------------------------------------------------------------------
# Linear-chain CRF field extractor
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\S+")
_MONTHS = set(vocab.MONTHS)
_FIRST = set(vocab.FIRST_NAMES)
_LAST = set(vocab.LAST_NAMES)


def _token_shape(token: str) -> str:
    stripped = token.strip(".,()")
    if stripped.isdigit():
        return "dddd" if len(stripped) == 4 else "d"
    if stripped in _MONTHS:
        return "Month"
    if stripped in _FIRST:
        return "First"
    if stripped in _LAST:
        return "Last"
    if stripped[:1].isupper():
        return "Xx"
    return "x"


def _token_features(tokens: Sequence[str], i: int) -> List[str]:
    tok = tokens[i]
    prev_tok = tokens[i - 1] if i > 0 else "^"
    next_tok = tokens[i + 1] if i + 1 < len(tokens) else "$"
    low = tok.lower().strip(".,()")
    feats = [
        f"w={low}",
        f"shape={_token_shape(tok)}",
        f"prev={prev_tok.lower().strip('.,()')}",
        f"next={next_tok.lower().strip('.,()')}",
        f"prev_shape={_token_shape(prev_tok) if prev_tok != '^' else '^'}",
        f"next_shape={_token_shape(next_tok) if next_tok != '$' else '$'}",
        f"pos={min(i, 4)}",
        f"comma={tok.endswith(',')}",
        f"paren={tok.startswith('(')}",
    ]
    return feats


_LABELS = ("O", "B", "I")


class _LinearChainCRF:
    """Linear-chain CRF with BIO labels, averaged-perceptron training."""

    def __init__(self) -> None:
        self.emit: Dict[Tuple[str, str], float] = {}
        self.trans: Dict[Tuple[str, str], float] = {}

    def _emit_score(self, feats: Sequence[str], label: str) -> float:
        emit = self.emit
        return sum(emit.get((f, label), 0.0) for f in feats)

    def viterbi(self, feature_seq: Sequence[Sequence[str]]) -> List[str]:
        if not feature_seq:
            return []
        n = len(feature_seq)
        scores = {lab: self._emit_score(feature_seq[0], lab)
                  for lab in _LABELS}
        scores["I"] = -math.inf  # BIO: a mention cannot start with I
        back: List[Dict[str, str]] = []
        for t in range(1, n):
            new_scores: Dict[str, float] = {}
            pointers: Dict[str, str] = {}
            emits = {lab: self._emit_score(feature_seq[t], lab)
                     for lab in _LABELS}
            for lab in _LABELS:
                best_prev, best_val = "O", -math.inf
                for prev in _LABELS:
                    if lab == "I" and prev == "O":
                        continue  # BIO constraint: I must follow B or I
                    val = scores[prev] + self.trans.get((prev, lab), 0.0)
                    if val > best_val:
                        best_prev, best_val = prev, val
                new_scores[lab] = best_val + emits[lab]
                pointers[lab] = best_prev
            scores = new_scores
            back.append(pointers)
        label = max(scores, key=lambda lab: scores[lab])
        path = [label]
        for pointers in reversed(back):
            label = pointers[label]
            path.append(label)
        path.reverse()
        return path

    def train(self, data: Sequence[Tuple[List[List[str]], List[str]]],
              epochs: int = 6) -> None:
        """Averaged structured perceptron."""
        emit_totals: Dict[Tuple[str, str], float] = {}
        trans_totals: Dict[Tuple[str, str], float] = {}
        steps = 0
        for _ in range(epochs):
            for feature_seq, gold in data:
                steps += 1
                guess = self.viterbi(feature_seq)
                if guess == gold:
                    continue
                for t, feats in enumerate(feature_seq):
                    if guess[t] != gold[t]:
                        for f in feats:
                            self._bump(self.emit, emit_totals,
                                       (f, gold[t]), 1.0, steps)
                            self._bump(self.emit, emit_totals,
                                       (f, guess[t]), -1.0, steps)
                for t in range(1, len(gold)):
                    if (guess[t - 1], guess[t]) != (gold[t - 1], gold[t]):
                        self._bump(self.trans, trans_totals,
                                   (gold[t - 1], gold[t]), 1.0, steps)
                        self._bump(self.trans, trans_totals,
                                   (guess[t - 1], guess[t]), -1.0, steps)
        if steps:
            for key, total in emit_totals.items():
                self.emit[key] -= total / steps
            for key, total in trans_totals.items():
                self.trans[key] -= total / steps
            self.emit = {k: v for k, v in self.emit.items() if abs(v) > 1e-9}
            self.trans = {k: v for k, v in self.trans.items() if abs(v) > 1e-9}

    @staticmethod
    def _bump(weights: Dict[Tuple[str, str], float],
              totals: Dict[Tuple[str, str], float],
              key: Tuple[str, str], delta: float, step: int) -> None:
        weights[key] = weights.get(key, 0.0) + delta
        totals[key] = totals.get(key, 0.0) + delta * step


# -- training data per field -----------------------------------------------

def _labeled(sentence_parts: Sequence[Tuple[str, bool]]) -> Tuple[str, List[Tuple[int, int]]]:
    """Assemble a sentence from (text, is_target) parts."""
    text = ""
    targets: List[Tuple[int, int]] = []
    for part, is_target in sentence_parts:
        if is_target:
            targets.append((len(text), len(text) + len(part)))
        text += part
    return text, targets


def _field_training_sentences(field: str, seed: int,
                              count: int = 240) -> List[Tuple[str, List[Tuple[int, int]]]]:
    rng = random.Random(seed)

    def negative() -> str:
        """Sentences the field extractor must NOT fire on — filler plus
        the other fact shapes that co-occur on real pages."""
        roll = rng.random()
        if roll < 0.4:
            return rng.choice(vocab.FILLER_SENTENCES)
        if roll < 0.6:
            return (f"{vocab.person_name(rng)} starred as "
                    f"{rng.choice(vocab.CHARACTERS)} in "
                    f"{vocab.movie_title(rng)} ({rng.randint(1985, 2009)}).")
        if roll < 0.75:
            return (f"{vocab.person_name(rng)} won the "
                    f"{rng.choice(vocab.AWARDS)} for "
                    f"{vocab.movie_title(rng)} ({rng.randint(1985, 2009)}).")
        if roll < 0.9:
            return (f"{vocab.movie_title(rng)} grossed "
                    f"${rng.choice((20, 80, 150, 300))} million worldwide.")
        return (f"{vocab.movie_title(rng)} is a feature film released "
                f"in {rng.randint(1985, 2009)}.")

    out: List[Tuple[str, List[Tuple[int, int]]]] = []
    for _ in range(count):
        if rng.random() < 0.5:
            out.append((negative(), []))
            continue
        if field == "name":
            actor = vocab.person_name(rng)
            out.append(_labeled([(actor, True), (" is a film actor.", False)]))
        elif field == "birth_name":
            full = (f"{rng.choice(vocab.FIRST_NAMES)} "
                    f"{rng.choice(vocab.FIRST_NAMES)} "
                    f"{rng.choice(vocab.LAST_NAMES)}")
            tail = (f" on {rng.choice(vocab.MONTHS)} {rng.randint(1, 28)}, "
                    f"{rng.randint(1950, 1990)}.")
            out.append(_labeled([("Born ", False), (full, True),
                                 (tail, False)]))
        elif field == "birth_date":
            full = vocab.person_name(rng)
            date = (f"{rng.choice(vocab.MONTHS)} {rng.randint(1, 28)}, "
                    f"{rng.randint(1950, 1990)}")
            out.append(_labeled([("Born ", False), (full, False),
                                 (" on ", False), (date, True),
                                 (".", False)]))
        elif field == "roles":
            m1, m2 = vocab.movie_title(rng), vocab.movie_title(rng)
            out.append(_labeled([("Notable roles include ", False),
                                 (m1, True), (" and ", False),
                                 (m2, True), (".", False)]))
        else:
            raise ValueError(f"unknown CRF field {field!r}")
    return out


def _bio_labels(text: str, tokens: List[re.Match],
                targets: List[Tuple[int, int]]) -> List[str]:
    labels = []
    for tok in tokens:
        label = "O"
        for start, end in targets:
            core_start, core_end = tok.start(), tok.end()
            while core_end > core_start and text[core_end - 1] in ".,()":
                core_end -= 1
            if start <= core_start and core_end <= end:
                label = "B" if core_start == start else "I"
                break
        labels.append(label)
    # Repair I-after-O sequences produced by punctuation trimming.
    prev = "O"
    for i, label in enumerate(labels):
        if label == "I" and prev == "O":
            labels[i] = "B"
        prev = labels[i]
    return labels


_CRF_CACHE: Dict[Tuple[str, int], _LinearChainCRF] = {}


def _trained_crf(field: str, seed: int) -> _LinearChainCRF:
    key = (field, seed)
    if key not in _CRF_CACHE:
        data: List[Tuple[List[List[str]], List[str]]] = []
        for text, targets in _field_training_sentences(field, seed):
            tokens = list(_TOKEN_RE.finditer(text))
            if not tokens:
                continue
            token_texts = [t.group() for t in tokens]
            feats = [_token_features(token_texts, i)
                     for i in range(len(tokens))]
            data.append((feats, _bio_labels(text, tokens, targets)))
        crf = _LinearChainCRF()
        crf.train(data)
        _CRF_CACHE[key] = crf
    return _CRF_CACHE[key]


class CRFFieldExtractor(Extractor):
    """Extracts one field from a sentence with a linear-chain CRF.

    ``field`` selects the training recipe: ``name``, ``birth_name``,
    ``birth_date``, or ``roles``. As the paper does for its CRFs, scope
    and context both default to the model's maximum input length — the
    conservative setting when tight values cannot be derived.
    """

    def __init__(self, name: str, var: str, field: str,
                 scope: int = 400, context: Optional[int] = None,
                 seed: int = 11, work_factor: int = 0) -> None:
        super().__init__(name, [var], scope,
                         scope if context is None else context, work_factor)
        self.var = var
        self.field = field
        self.model = _trained_crf(field, seed)

    def _extract(self, text: str) -> Iterable[Extraction]:
        tokens = list(_TOKEN_RE.finditer(text))
        if not tokens:
            return
        token_texts = [t.group() for t in tokens]
        feats = [_token_features(token_texts, i) for i in range(len(tokens))]
        labels = self.model.viterbi(feats)
        i = 0
        while i < len(tokens):
            if labels[i] == "B":
                j = i
                while j + 1 < len(tokens) and labels[j + 1] == "I":
                    j += 1
                start = tokens[i].start()
                end = tokens[j].end()
                while end > start and text[end - 1] in ".,()":
                    end -= 1
                if end > start and end - start < self.scope:
                    yield Extraction.of(**{self.var: RelSpan(start, end)})
                i = j + 1
            else:
                i += 1
