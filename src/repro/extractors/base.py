"""Extractor ("IE blackbox") interface.

An extractor takes the text of one region and returns extractions:
tuples of named output fields, each either a span (relative to the
region) or a scalar. Every extractor declares its *scope* α and
*context* β (Definitions 2–3 of the paper); the reuse engine relies on
these to copy previously extracted mentions safely.

Declared semantics an extractor must honor:

* **scope α** — for every extraction, ``extent_end − extent_start < α``
  where the extent spans all its output spans.
* **context β** — whether an extraction at some position is produced
  depends only on the text within β characters of its extent (with
  region boundaries counting as part of the context when closer than β).

The paper's blackboxes are heavyweight Perl/Java programs; pure-Python
regex scans are comparatively too cheap for extraction cost to dominate
the way it does on the authors' testbed. Each extractor therefore has a
``work_factor``: deterministic per-character CPU work emulating the
multi-pass analysis real extractors do. Set it to 0 for instant
extractors (useful in unit tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

Scalar = Union[str, int, float, bool, None]
FieldValue = Union["RelSpan", Scalar]

_SKIP_BURN = False


@contextmanager
def profiling_mode() -> Iterator[None]:
    """Temporarily disable the emulated blackbox work.

    The optimizer's statistics collector needs extraction *structure*
    (which regions, how many tuples), not extraction *cost*; skipping
    the work loop makes sampling nearly free without changing any
    extraction result. Extraction rates are then measured separately on
    a couple of regions with the work enabled.
    """
    global _SKIP_BURN
    previous = _SKIP_BURN
    _SKIP_BURN = True
    try:
        yield
    finally:
        _SKIP_BURN = previous


@dataclass(frozen=True, order=True)
class RelSpan:
    """A span relative to the extractor's input region."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"RelSpan start {self.start} > end {self.end}")

    def __len__(self) -> int:
        return self.end - self.start

    def shift(self, delta: int) -> "RelSpan":
        return RelSpan(self.start + delta, self.end + delta)


@dataclass(frozen=True)
class Extraction:
    """One output tuple of an extractor, relative to its input region.

    ``fields`` maps output variable names to span or scalar values. The
    *extent* is the hull of all span fields and is what scope/context
    guarantees are stated over.
    """

    fields: Tuple[Tuple[str, FieldValue], ...]

    @classmethod
    def of(cls, **fields: FieldValue) -> "Extraction":
        return cls(tuple(sorted(fields.items())))

    def get(self, var: str) -> FieldValue:
        for name, value in self.fields:
            if name == var:
                return value
        raise KeyError(var)

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def span_items(self) -> List[Tuple[str, RelSpan]]:
        return [(n, v) for n, v in self.fields if isinstance(v, RelSpan)]

    def extent(self) -> Optional[Tuple[int, int]]:
        """Hull ``(start, end)`` of all span fields; None if no spans."""
        spans = [v for _, v in self.fields if isinstance(v, RelSpan)]
        if not spans:
            return None
        return (min(s.start for s in spans), max(s.end for s in spans))

    def shift(self, delta: int) -> "Extraction":
        """Translate all span fields by ``delta``."""
        return Extraction(tuple(
            (n, v.shift(delta) if isinstance(v, RelSpan) else v)
            for n, v in self.fields))


class Extractor(ABC):
    """Base class for IE blackboxes."""

    def __init__(self, name: str, output_vars: Sequence[str],
                 scope: int, context: int, work_factor: int = 0) -> None:
        if scope <= 0:
            raise ValueError("scope (alpha) must be positive")
        if context < 0:
            raise ValueError("context (beta) must be >= 0")
        if work_factor < 0:
            raise ValueError("work_factor must be >= 0")
        self.name = name
        self.output_vars = tuple(output_vars)
        self.scope = scope
        self.context = context
        self.work_factor = work_factor

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"alpha={self.scope}, beta={self.context})")

    @abstractmethod
    def _extract(self, text: str) -> Iterable[Extraction]:
        """Produce extractions from ``text`` (region-relative offsets)."""

    def extract(self, text: str) -> List[Extraction]:
        """Run the blackbox on a region's text.

        Performs the extractor's emulated analysis work, runs the
        concrete extraction logic, and checks the scope declaration.
        """
        self._burn(text)
        out: List[Extraction] = []
        for ext in self._extract(text):
            hull = ext.extent()
            if hull is not None:
                if hull[0] < 0 or hull[1] > len(text):
                    raise ValueError(
                        f"{self.name}: extraction {hull} outside region "
                        f"of length {len(text)}")
                if hull[1] - hull[0] >= self.scope:
                    raise ValueError(
                        f"{self.name}: extraction extent {hull} violates "
                        f"declared scope {self.scope}")
            out.append(ext)
        return out

    def _burn(self, text: str) -> int:
        """Deterministic per-character work emulating a heavy blackbox."""
        if not self.work_factor or _SKIP_BURN:
            return 0
        acc = 0
        for _ in range(self.work_factor):
            for ch in text:
                acc = (acc * 31 + ord(ch)) & 0xFFFFFFFF
        return acc
