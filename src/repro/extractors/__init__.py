"""IE blackboxes: extractor interface, rule-based and learned models."""

from .base import Extraction, Extractor, RelSpan
from .learning import CRFFieldExtractor, MaxEntSentenceSegmenter
from .library import (
    ALL_TASKS,
    RULE_TASKS,
    IETask,
    advise_task,
    award_task,
    blockbuster_task,
    chair_task,
    infobox_task,
    make_task,
    play_task,
    talk_task,
)
from .rules import (
    DictionaryExtractor,
    LineExtractor,
    RegexExtractor,
    SectionExtractor,
    SentenceExtractor,
)
from .wrappers import MentionMultiplier, multiply_task_mentions

__all__ = [
    "Extractor",
    "Extraction",
    "RelSpan",
    "RegexExtractor",
    "DictionaryExtractor",
    "LineExtractor",
    "SectionExtractor",
    "SentenceExtractor",
    "MentionMultiplier",
    "multiply_task_mentions",
    "MaxEntSentenceSegmenter",
    "CRFFieldExtractor",
    "IETask",
    "make_task",
    "talk_task",
    "chair_task",
    "advise_task",
    "blockbuster_task",
    "play_task",
    "award_task",
    "infobox_task",
    "ALL_TASKS",
    "RULE_TASKS",
]
