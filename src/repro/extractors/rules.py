"""Rule-based extractor blackboxes.

These are the reusable building blocks the six evaluation IE programs
are assembled from (Section 8; Figure 8b). All of them are
*position-deterministic*: whether an extraction is reported at some
position depends only on the text within the declared context β of its
extent, which is what lets the reuse engine copy mentions safely.

Implementation notes on determinism:

* Regex scanning restarts one character after each match start instead
  of at the match end, so a match at position x is reported iff the
  pattern matches at x — independent of other matches. (Plain
  ``finditer`` skips overlapping matches, which would make extraction
  results depend on far-away text.)
* Patterns must not use anchors or constructs that look outside the
  declared context (no ``^``/``$`` unless intended, no lookbehind past
  β characters).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Pattern, Sequence, Tuple, Union

from .base import Extraction, Extractor, RelSpan


def scan_overlapping(pattern: Pattern[str], text: str) -> Iterator[re.Match]:
    """Yield matches allowing overlaps (position-deterministic)."""
    pos = 0
    while pos <= len(text):
        m = pattern.search(text, pos)
        if m is None:
            return
        yield m
        pos = m.start() + 1


@dataclass(frozen=True)
class IntGroupScalar:
    """Picklable scalar callable: ``int(match.group(group))``.

    Plain lambdas cannot cross process boundaries; the parallel runtime
    ships extractors to worker processes, so scalar callables used in
    the task library must be module-level or instances of picklable
    classes like this one.
    """

    group: str

    def __call__(self, m: "re.Match") -> int:
        return int(m.group(self.group))


class RegexExtractor(Extractor):
    """Extracts one tuple per regex match.

    ``groups`` maps output variable names to regex group names or
    numbers; matched groups become span fields. ``scalars`` optionally
    maps output variables to callables computing scalar values from the
    match object.
    """

    def __init__(self, name: str, pattern: str,
                 groups: Dict[str, Union[str, int]],
                 scope: int, context: int,
                 scalars: Optional[Dict[str, object]] = None,
                 work_factor: int = 0, flags: int = 0) -> None:
        output_vars = list(groups) + list(scalars or {})
        super().__init__(name, output_vars, scope, context, work_factor)
        self.pattern = re.compile(pattern, flags)
        self.groups = dict(groups)
        self.scalars = dict(scalars or {})

    def _extract(self, text: str) -> Iterable[Extraction]:
        for m in scan_overlapping(self.pattern, text):
            fields: List[Tuple[str, object]] = []
            ok = True
            for var, group in self.groups.items():
                if m.group(group) is None:
                    ok = False
                    break
                fields.append((var, RelSpan(m.start(group), m.end(group))))
            if not ok:
                continue
            for var, func in self.scalars.items():
                fields.append((var, func(m)))  # type: ignore[operator]
            yield Extraction(tuple(sorted(fields)))


class DictionaryExtractor(Extractor):
    """Extracts every occurrence of any phrase from a dictionary."""

    def __init__(self, name: str, var: str, phrases: Sequence[str],
                 scope: int, context: int, work_factor: int = 0,
                 ignore_case: bool = False) -> None:
        if not phrases:
            raise ValueError("dictionary must not be empty")
        super().__init__(name, [var], scope, context, work_factor)
        self.var = var
        self.phrases = tuple(phrases)
        alternation = "|".join(
            re.escape(p) for p in sorted(phrases, key=len, reverse=True))
        self.pattern = re.compile(alternation,
                                  re.IGNORECASE if ignore_case else 0)

    def _extract(self, text: str) -> Iterable[Extraction]:
        for m in scan_overlapping(self.pattern, text):
            yield Extraction.of(**{self.var: RelSpan(m.start(), m.end())})


class LineExtractor(Extractor):
    """Extracts whole lines that satisfy a content test.

    A line's extent is the line itself (without the newline); its
    boundaries depend only on the adjacent newline characters, so
    β = 2 suffices (we default a little higher for safety).
    """

    def __init__(self, name: str, var: str, scope: int,
                 must_contain: Optional[str] = None,
                 must_match: Optional[str] = None,
                 context: int = 4, work_factor: int = 0) -> None:
        super().__init__(name, [var], scope, context, work_factor)
        self.var = var
        self.must_contain = must_contain
        self.pattern = re.compile(must_match) if must_match else None

    def _line_ok(self, line: str) -> bool:
        if not line.strip():
            return False
        if self.must_contain is not None and self.must_contain not in line:
            return False
        if self.pattern is not None and self.pattern.search(line) is None:
            return False
        return True

    def _extract(self, text: str) -> Iterable[Extraction]:
        offset = 0
        for line in text.split("\n"):
            if self._line_ok(line) and len(line) < self.scope:
                yield Extraction.of(
                    **{self.var: RelSpan(offset, offset + len(line))})
            offset += len(line) + 1


class SectionExtractor(Extractor):
    """Extracts the body of a ``== Header ==`` section.

    The extent runs from the character after the header line to the
    start of the next ``== `` header (or end of region). Section
    extractors are the blackboxes with the very large scopes in
    Figure 8b — a section mention covers everything inside it, so α
    must exceed the longest possible section.
    """

    _HEADER = re.compile(r"^== (.+?) ==$", re.MULTILINE)

    def __init__(self, name: str, var: str, header: str, scope: int,
                 context: int = 32, work_factor: int = 0) -> None:
        super().__init__(name, [var], scope, context, work_factor)
        self.var = var
        self.header = header

    def _extract(self, text: str) -> Iterable[Extraction]:
        headers = list(self._HEADER.finditer(text))
        for i, m in enumerate(headers):
            if m.group(1).strip() != self.header:
                continue
            start = m.end()
            if start < len(text) and text[start] == "\n":
                start += 1
            end = headers[i + 1].start() if i + 1 < len(headers) else len(text)
            while end > start and text[end - 1] == "\n":
                end -= 1
            if end <= start:
                continue
            if end - start >= self.scope:
                end = start + self.scope - 1
            yield Extraction.of(**{self.var: RelSpan(start, end)})


class SentenceExtractor(Extractor):
    """Splits a region into sentences ending in ``.``, ``!`` or ``?``.

    This is the rule-based analogue of the paper's ME sentence
    segmenter; the learning-based one lives in
    :mod:`repro.extractors.learning`.
    """

    _SENTENCE = re.compile(r"[^.!?\n]+[.!?]")

    def __init__(self, name: str, var: str, scope: int = 400,
                 context: int = 4, work_factor: int = 0) -> None:
        super().__init__(name, [var], scope, context, work_factor)
        self.var = var

    def _extract(self, text: str) -> Iterable[Extraction]:
        for m in self._SENTENCE.finditer(text):
            start, end = m.start(), m.end()
            while start < end and text[start] == " ":
                start += 1
            if end - start < self.scope:
                yield Extraction.of(**{self.var: RelSpan(start, end)})
