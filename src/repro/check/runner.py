"""The ``repro check`` driver: budgeted fuzz campaign + reporting.

One entry point, :func:`run_check`, behind the CLI verb. It spends a
wall-clock budget sweeping fuzz cases through the differential oracle:

1. seeds run in order ``seed, seed+1, ...``, each expanded over the
   (task, corpus) pairs where the reusing systems actually copy —
   a sweep that never exercises the copy path proves nothing;
2. the first failing case stops the campaign; if shrinking is enabled
   the series is minimized within the remaining budget;
3. the (shrunk) failing series is written as a replayable repro
   bundle when ``bundle_dir`` is given;
4. the exit code is 0 iff every case agreed.

``fault`` plants one of :data:`repro.check.faults.FAULTS` for the
whole campaign — the harness's self-test mode: a healthy tree must
*fail* a ``--fault`` run (the oracle caught the planted bug) and pass
a clean one.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .bundle import write_bundle
from .faults import injected_fault
from .fuzz import (
    FuzzSpec,
    ShrinkResult,
    build_series,
    oracle_predicate,
    run_case,
    shrink_series,
)
from .grid import GRID_NAMES, build_grid
from .oracle import OracleReport

#: (task, corpus) pairs the campaign cycles through. The first two are
#: copy-heavy for delex under fixed assignments (the interesting
#: regime) and together cover both corpus change models; the third is
#: a regime-shifting series (churn burst mid-series), so every grid —
#: including the small CI one — sweeps at least one drift config.
CASE_MIX: Tuple[Tuple[str, str], ...] = (("play", "wikipedia"),
                                         ("chair", "dblife"),
                                         ("chair", "drift_churn"))


@dataclass
class CheckSummary:
    """What a campaign did and how it ended."""

    ok: bool = True
    cases_run: int = 0
    configs_swept: int = 0
    checks_run: int = 0
    seconds: float = 0.0
    failing_spec: Optional[FuzzSpec] = None
    failing_report: Optional[OracleReport] = None
    shrink: Optional[ShrinkResult] = None
    bundle_path: Optional[str] = None

    def describe(self) -> str:
        lines = [f"check: {self.cases_run} case(s), "
                 f"{self.configs_swept} config sweep(s) in "
                 f"{self.seconds:.1f}s"
                 + (f", {self.checks_run} invariant checks"
                    if self.checks_run else "")]
        if self.ok:
            lines.append("check: PASS — every config agreed with the "
                         "from-scratch reference")
            return "\n".join(lines)
        lines.append("check: FAIL")
        if self.failing_spec is not None:
            lines.append(f"  spec: {self.failing_spec.as_dict()}")
        report = (self.shrink.report if self.shrink is not None
                  else self.failing_report)
        if report is not None:
            for disc in report.discrepancies()[:5]:
                lines.append("  " + disc.describe())
        if self.shrink is not None:
            lines.append(
                f"  shrunk to {self.shrink.n_pages} page(s) x "
                f"{self.shrink.n_snapshots} snapshot(s) in "
                f"{self.shrink.evaluations} evaluation(s)")
        if self.bundle_path is not None:
            lines.append(f"  repro bundle: {self.bundle_path} "
                         "(replay with `python -m repro check "
                         f"--replay {self.bundle_path}`)")
        return "\n".join(lines)


def run_check(seed: int = 0, budget: float = 60.0, grid: str = "small",
              shrink: bool = True, check: bool = True,
              fault: Optional[str] = None,
              bundle_dir: Optional[str] = None,
              n_pages: int = 6, n_snapshots: int = 3,
              progress: Optional[Callable[[str], None]] = None
              ) -> CheckSummary:
    """Run a budgeted differential-check campaign."""
    if grid not in GRID_NAMES:
        raise ValueError(f"unknown grid {grid!r}")
    say = progress or (lambda message: None)
    summary = CheckSummary()
    start = time.perf_counter()
    deadline = start + budget
    grid_size = len(build_grid(grid))
    with injected_fault(fault):
        current_seed = seed
        while time.perf_counter() < deadline and summary.ok:
            for task, corpus in CASE_MIX:
                spec = FuzzSpec(seed=current_seed, task=task,
                                corpus=corpus, n_pages=n_pages,
                                n_snapshots=n_snapshots, grid=grid)
                report = run_case(spec, check=check)
                summary.cases_run += 1
                summary.configs_swept += len(report.outcomes)
                summary.checks_run += report.checks_run
                say(f"seed {current_seed} {task}/{corpus}: "
                    + ("ok" if report.ok else "DIVERGED")
                    + f" ({report.seconds:.2f}s, {grid_size} configs)")
                if not report.ok:
                    summary.ok = False
                    summary.failing_spec = spec
                    summary.failing_report = report
                    break
                if time.perf_counter() >= deadline:
                    break
            current_seed += 1
        if not summary.ok and shrink:
            summary.shrink = _shrink_within_budget(
                summary.failing_spec, summary.failing_report,
                deadline, say)
        if not summary.ok and bundle_dir is not None:
            series = (summary.shrink.series if summary.shrink is not None
                      else build_series(summary.failing_spec))
            report = (summary.shrink.report
                      if summary.shrink is not None
                      else summary.failing_report)
            summary.bundle_path = write_bundle(
                bundle_dir, series, task=summary.failing_spec.task,
                grid=grid, report=report, spec=summary.failing_spec,
                fault=fault)
            say(f"wrote repro bundle to {summary.bundle_path}")
    summary.seconds = time.perf_counter() - start
    return summary


def _shrink_within_budget(spec: FuzzSpec, report: OracleReport,
                          deadline: float,
                          say: Callable[[str], None]) -> ShrinkResult:
    """Shrink the failing case, stopping at the wall-clock deadline."""
    say("shrinking failing series ...")
    base_predicate = oracle_predicate(spec)

    def bounded(candidate):
        if time.perf_counter() >= deadline:
            return None  # out of budget: treat as passing, stop early
        return base_predicate(candidate)

    result = shrink_series(build_series(spec), bounded, report)
    say(f"shrunk to {result.n_pages} page(s) x "
        f"{result.n_snapshots} snapshot(s) "
        f"({result.evaluations} evaluations)")
    return result


def main_check(args) -> int:  # pragma: no cover - thin CLI glue
    """Implementation of ``python -m repro check`` (see repro.cli)."""
    say = (lambda message: print(message, file=sys.stderr)) \
        if args.verbose else None
    if args.replay is not None:
        from .bundle import load_bundle, replay_bundle

        bundle = load_bundle(args.replay)
        print(f"replaying bundle: {bundle.n_pages} page(s) x "
              f"{bundle.n_snapshots} snapshot(s), grid={bundle.grid}, "
              f"task={bundle.task}"
              + (f", fault={bundle.fault}" if bundle.fault else ""))
        report = replay_bundle(args.replay,
                               check=(args.check == "on"))
        print(report.summary())
        return 0 if report.ok else 1
    summary = run_check(seed=args.seed, budget=args.budget,
                        grid=args.grid, shrink=args.shrink,
                        check=(args.check == "on"), fault=args.fault,
                        bundle_dir=args.bundle_dir,
                        progress=say)
    print(summary.describe())
    return 0 if summary.ok else 1
