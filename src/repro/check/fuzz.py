"""Seeded evolution fuzzer: adversarial snapshot series + shrinking.

The corpus evolver (:mod:`repro.corpus.evolve`) models *plausible*
churn. This module generates **adversarial** churn on top of it — the
page-lifecycle and text-shape corner cases a reuse engine is most
likely to get wrong:

* ``rename``        — a page moves to a fresh URL (history loss);
* ``delete``        — a page disappears mid-series;
* ``resurrect``     — a previously deleted page returns, same did;
* ``duplicate``     — a new page with byte-identical content to an
  existing one (fingerprint and shortcut-store stressor);
* ``boundary_edit`` — a small splice whose width is drawn around the
  task's α/β scales, so edits straddle exactly the context windows
  the copy-safety argument depends on;
* ``unicode``       — multi-byte, combining-mark, and astral-plane
  insertions (offset arithmetic must stay in characters);
* ``blank``         — a page's text collapses to empty or whitespace.

A case is fully determined by its :class:`FuzzSpec` — same seed, same
series, same verdict — so every failure replays from a dict. The
greedy shrinker minimizes a failing series along two axes (drop
snapshots, then drop pages ddmin-style) while re-running the caller's
failure predicate, yielding the smallest (pages, snapshots) series
that still diverges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..corpus.evolve import dblife_corpus, wikipedia_corpus
from ..corpus.snapshot import Snapshot
from ..extractors.library import make_task
from ..text.document import Page
from .grid import build_grid
from .oracle import OracleReport, run_oracle

#: Mutation kinds, in the order the schedule cycles through them.
MUTATIONS = ("rename", "delete", "resurrect", "duplicate",
             "boundary_edit", "unicode", "blank")

#: Unicode snippets: multi-byte, combining mark, CJK, astral plane.
_UNICODE_SNIPPETS = ("αβγ δèlta", "naïve café", "étude",
                     "雪が降る", "🙂🙃", "​⁠zero​width")

_BLANKS = ("", " ", "\n\n", " \t \n ")

def _drift_factory(profile: str, kind: str):
    from ..adapt.drift import drift_profile

    def factory(n_pages: int = 6, seed: int = 0):
        # shift_at=1 puts the regime boundary inside even the shortest
        # (3-snapshot) fuzz series, with a stationary baseline first.
        return drift_profile(profile, n_pages=n_pages, seed=seed,
                             shift_at=1, kind=kind)

    return factory


#: Corpus axes the fuzzer sweeps: the two stationary paper corpora
#: plus regime-shifting series from :mod:`repro.adapt.drift`, so the
#: differential oracle also covers mid-series churn bursts and
#: template redesigns.
CORPUS_FACTORIES = {
    "dblife": dblife_corpus,
    "wikipedia": wikipedia_corpus,
    "drift_churn": _drift_factory("churn_burst", "dblife"),
    "drift_redesign": _drift_factory("redesign", "wikipedia"),
    "drift_vocab": _drift_factory("vocab_drift", "dblife"),
}


@dataclass(frozen=True)
class FuzzSpec:
    """Everything needed to regenerate one fuzz case, bit for bit."""

    seed: int
    task: str = "play"
    corpus: str = "wikipedia"
    n_pages: int = 6
    n_snapshots: int = 3
    mutations_per_step: int = 4
    grid: str = "small"

    def as_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "task": self.task,
                "corpus": self.corpus, "n_pages": self.n_pages,
                "n_snapshots": self.n_snapshots,
                "mutations_per_step": self.mutations_per_step,
                "grid": self.grid}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzSpec":
        return cls(seed=int(data["seed"]), task=str(data["task"]),
                   corpus=str(data["corpus"]),
                   n_pages=int(data["n_pages"]),
                   n_snapshots=int(data["n_snapshots"]),
                   mutations_per_step=int(data["mutations_per_step"]),
                   grid=str(data["grid"]))


class _SeriesMutator:
    """Applies the adversarial schedule to one snapshot's page map."""

    def __init__(self, rng: random.Random, alpha: int, beta: int) -> None:
        self.rng = rng
        self.alpha = max(1, alpha)
        self.beta = max(1, beta)
        self.graveyard: Dict[str, str] = {}  # url -> last text
        self._fresh = 0

    def _fresh_url(self) -> str:
        self._fresh += 1
        return f"http://fuzz.example.org/page/{self._fresh:05d}"

    def apply(self, pages: "Dict[str, str]", kind: str) -> None:
        """Mutate ``pages`` (url -> text, insertion-ordered) in place."""
        rng = self.rng
        urls = sorted(pages)
        if kind == "rename" and urls:
            url = rng.choice(urls)
            pages[self._fresh_url()] = pages.pop(url)
            self.graveyard[url] = ""
        elif kind == "delete" and len(urls) > 1:
            url = rng.choice(urls)
            self.graveyard[url] = pages.pop(url)
        elif kind == "resurrect":
            dead = sorted(u for u in self.graveyard
                          if u not in pages and self.graveyard[u])
            if dead:
                url = rng.choice(dead)
                pages[url] = self.graveyard[url]
        elif kind == "duplicate" and urls:
            pages[self._fresh_url()] = pages[rng.choice(urls)]
        elif kind == "boundary_edit" and urls:
            url = rng.choice(urls)
            pages[url] = self._splice(pages[url])
        elif kind == "unicode" and urls:
            url = rng.choice(urls)
            text = pages[url]
            pos = rng.randint(0, len(text))
            pages[url] = (text[:pos] + rng.choice(_UNICODE_SNIPPETS)
                          + text[pos:])
        elif kind == "blank" and urls:
            url = rng.choice(urls)
            self.graveyard.setdefault(url, pages[url])
            pages[url] = rng.choice(_BLANKS)

    def _splice(self, text: str) -> str:
        """A small edit whose width straddles the α/β context scales."""
        rng = self.rng
        width = rng.choice((1, self.beta, self.beta + 1,
                            self.alpha, self.alpha + self.beta,
                            self.alpha + 2 * self.beta + 1))
        width = max(1, min(width, max(1, len(text))))
        pos = rng.randint(0, max(0, len(text) - width))
        op = rng.choice(("insert", "delete", "replace"))
        filler = "".join(rng.choice("abtheof .,\n") for _ in range(width))
        if op == "insert" or not text:
            return text[:pos] + filler + text[pos:]
        if op == "delete":
            return text[:pos] + text[pos + width:]
        return text[:pos] + filler + text[pos + width:]


def build_series(spec: FuzzSpec) -> List[Snapshot]:
    """The deterministic snapshot series of one fuzz case."""
    factory = CORPUS_FACTORIES.get(spec.corpus)
    if factory is None:
        raise ValueError(f"unknown corpus {spec.corpus!r}; choose from "
                         f"{tuple(sorted(CORPUS_FACTORIES))}")
    rng = random.Random(spec.seed)
    base = list(factory(n_pages=spec.n_pages,
                        seed=spec.seed).snapshots(spec.n_snapshots))
    task = make_task(spec.task, work_scale=0)
    mutator = _SeriesMutator(rng, task.program_alpha, task.program_beta)
    series: List[Snapshot] = []
    for i, snapshot in enumerate(base):
        pages: Dict[str, str] = {p.url: p.text
                                 for p in snapshot.canonical_pages()}
        if i > 0:
            # Snapshot 0 is the bootstrap; mutate every transition.
            for j in range(spec.mutations_per_step):
                kind = MUTATIONS[(i + j) % len(MUTATIONS)]
                mutator.apply(pages, kind)
        series.append(snapshot_from_pages(i, pages))
    return series


def snapshot_from_pages(index: int, pages: Dict[str, str]) -> Snapshot:
    """A snapshot from a url -> text map (canonical did order)."""
    return Snapshot(index, [Page.from_url(url, pages[url])
                            for url in sorted(pages)])


def run_case(spec: FuzzSpec, workdir: Optional[str] = None,
             check: bool = False,
             series: Optional[List[Snapshot]] = None) -> OracleReport:
    """Run one fuzz case through the differential oracle."""
    if series is None:
        series = build_series(spec)
    task = make_task(spec.task, work_scale=0)
    return run_oracle(task, series, build_grid(spec.grid),
                      workdir=workdir, check=check)


# -- shrinking --------------------------------------------------------------

#: A predicate deciding whether a candidate series still fails. It
#: receives re-indexed snapshots and returns the failing report (kept
#: by the shrinker) or None when the candidate passes.
FailPredicate = Callable[[List[Snapshot]], Optional[OracleReport]]


@dataclass
class ShrinkResult:
    """The minimized failing series and how much work finding it took."""

    series: List[Snapshot]
    report: OracleReport
    evaluations: int = 0
    removed_snapshots: int = 0
    removed_pages: int = 0

    @property
    def n_snapshots(self) -> int:
        return len(self.series)

    @property
    def n_pages(self) -> int:
        return len({p.url for s in self.series for p in s.pages})


def _reindex(series: Sequence[Snapshot]) -> List[Snapshot]:
    return [Snapshot(i, list(s.pages)) for i, s in enumerate(series)]


def _without_urls(series: Sequence[Snapshot],
                  urls: frozenset) -> List[Snapshot]:
    return _reindex([
        Snapshot(s.index, [p for p in s.pages if p.url not in urls])
        for s in series])


def shrink_series(series: List[Snapshot], failing: FailPredicate,
                  report: OracleReport,
                  max_evaluations: int = 200) -> ShrinkResult:
    """Greedy minimization of a failing series.

    Phase 1 drops whole snapshots (suffix first, then each single
    snapshot) while at least two remain — reuse needs a transition, so
    a shrunk repro is never a bare bootstrap. Phase 2 removes pages
    ddmin-style: try dropping chunks of the url set (halving the chunk
    size down to single urls) until a fixpoint. Every candidate is
    re-evaluated with ``failing``; the last failing report is kept so
    the bundle can show the *minimized* divergence.
    """
    result = ShrinkResult(series=_reindex(series), report=report)

    def still_fails(candidate: List[Snapshot]) -> bool:
        if result.evaluations >= max_evaluations:
            return False
        if not candidate or sum(len(s.pages) for s in candidate) == 0:
            return False
        result.evaluations += 1
        verdict = failing(candidate)
        if verdict is not None:
            result.series = candidate
            result.report = verdict
            return True
        return False

    # Phase 1: fewer snapshots. Suffix truncation, then single drops.
    changed = True
    while changed and len(result.series) > 2:
        changed = still_fails(_reindex(result.series[:-1]))
        if changed:
            result.removed_snapshots += 1
    i = 0
    while i < len(result.series) and len(result.series) > 2:
        candidate = _reindex(result.series[:i] + result.series[i + 1:])
        if still_fails(candidate):
            result.removed_snapshots += 1
        else:
            i += 1

    # Phase 2: fewer pages (ddmin over the union of urls).
    chunk = max(1, len(_all_urls(result.series)) // 2)
    while chunk >= 1:
        urls = _all_urls(result.series)
        progress = False
        for start in range(0, len(urls), chunk):
            drop = frozenset(urls[start:start + chunk])
            if not drop or len(urls) - len(drop) < 1:
                continue
            if still_fails(_without_urls(result.series, drop)):
                result.removed_pages += len(drop)
                progress = True
                break  # url list changed; restart at this chunk size
        if not progress:
            chunk //= 2
    return result


def _all_urls(series: Sequence[Snapshot]) -> List[str]:
    urls: List[str] = []
    for snapshot in series:
        for page in snapshot.pages:
            if page.url not in urls:
                urls.append(page.url)
    return sorted(urls)


def oracle_predicate(spec: FuzzSpec,
                     check: bool = False) -> FailPredicate:
    """The standard shrink predicate: re-run the case's oracle sweep."""
    task = make_task(spec.task, work_scale=0)
    grid = build_grid(spec.grid)

    def failing(candidate: List[Snapshot]) -> Optional[OracleReport]:
        verdict = run_oracle(task, candidate, grid, check=check)
        return None if verdict.ok else verdict

    return failing
