"""The differential sweep grid.

One :class:`CheckConfig` per point of the equivalence surface the
oracle must cover: (system, matcher policy, fastpath, backend). The
``small`` grid is the CI smoke set (serial + threads); the ``full``
grid adds the process backend, the ST policy, the mixed ST/UD/RU
assignment, and the live optimizer (``auto``).

Matcher policies pin the plan-space point a reusing system runs so a
sweep is deterministic and its capture files comparable:

* ``-``      — system has no matcher choice (noreuse, shortcut);
* ``UD``/``ST``/``WS`` — uniform fixed assignment (delex) or fixed
  program-level matcher (cyclex; WS not offered there);
* ``mixed``  — per-unit cycle over (ST, UD, RU) in uid order, the
  chained-unit recycling path;
* ``auto``   — delex's cost-based optimizer chooses per snapshot.
  Timing-based statistics make the chosen assignment machine-
  dependent, so ``auto`` configs are checked for tuple equality but
  excluded from byte-level capture comparison
  (:meth:`CheckConfig.capture_comparable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..extractors.library import IETask
from ..matchers.base import RU_NAME, ST_NAME, UD_NAME
from ..matchers.ws import WS_NAME
from ..plan.compile import compile_program
from ..plan.units import find_units
from ..reuse.engine import PlanAssignment

GRID_NAMES = ("small", "full")

#: Policies that fix the matcher choice (deterministic captures).
FIXED_POLICIES = ("UD", "ST", "WS", "mixed")

#: The view-maintenance axis: "-" sweeps the config as a bare engine
#: (the historical grid); any other value drives the snapshot series
#: through a :class:`~repro.serve.views.MaterializedView` with that
#: maintenance mode and diffs the *published generations* against the
#: reference — covering the serving path (store delta, incremental
#: relation index, delta rules + classifier for ``delta``) that the
#: engine-level sweep never touches.
VIEW_MODES = ("-", "delex", "noreuse", "delta")


@dataclass(frozen=True)
class CheckConfig:
    """One point of the sweep grid."""

    system: str            # noreuse | shortcut | cyclex | delex
    policy: str = "-"      # - | UD | ST | WS | mixed | auto
    fastpath: str = "on"   # on | off
    backend: str = "serial"  # serial | thread | process
    jobs: int = 1
    view: str = "-"        # - | delex | noreuse | delta

    def __post_init__(self) -> None:
        if self.view not in VIEW_MODES:
            raise ValueError(f"unknown view mode {self.view!r}; choose "
                             f"from {VIEW_MODES}")

    @property
    def config_id(self) -> str:
        head = (f"view-{self.view}" if self.view != "-" else self.system)
        return (f"{head}/{self.policy}/fp-{self.fastpath}/"
                f"{self.backend}x{self.jobs}")

    @property
    def slug(self) -> str:
        """Filesystem-safe identifier (capture workdir names)."""
        return self.config_id.replace("/", "_")

    def capture_comparable(self) -> bool:
        """May this config's reuse files be byte-compared against its
        group's baseline? Requires a machine-independent matcher
        assignment. View-driven configs are excluded: their workdir
        layout is the serving tier's, not a capture tree."""
        return (self.view == "-"
                and self.system in ("cyclex", "delex")
                and self.policy != "auto")

    def capture_group(self) -> Tuple[str, str]:
        """Configs in one group must write byte-identical captures."""
        return (self.system, self.policy)

    def system_kwargs(self, task: IETask) -> Dict[str, object]:
        """The ``make_system`` kwargs that pin this config's policy."""
        if self.system == "cyclex":
            if self.policy in ("UD", "ST"):
                return {"fixed_matcher": self.policy}
            if self.policy != "-":
                raise ValueError(
                    f"cyclex has no policy {self.policy!r}")
            return {}
        if self.system == "delex":
            kwargs: Dict[str, object] = {}
            if self.policy == "auto":
                return kwargs
            kwargs["fixed_assignment"] = make_assignment(task, self.policy)
            return kwargs
        if self.policy != "-":
            raise ValueError(
                f"{self.system} takes no matcher policy "
                f"(got {self.policy!r})")
        return {}

    def as_dict(self) -> Dict[str, object]:
        return {"system": self.system, "policy": self.policy,
                "fastpath": self.fastpath, "backend": self.backend,
                "jobs": self.jobs, "view": self.view}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CheckConfig":
        return cls(system=str(data["system"]),
                   policy=str(data.get("policy", "-")),
                   fastpath=str(data.get("fastpath", "on")),
                   backend=str(data.get("backend", "serial")),
                   jobs=int(data.get("jobs", 1)),
                   view=str(data.get("view", "-")))


def make_assignment(task: IETask, policy: str) -> PlanAssignment:
    """A deterministic matcher assignment for a task's IE units."""
    units = find_units(compile_program(task.program, task.registry))
    if policy in (UD_NAME, ST_NAME, WS_NAME):
        return PlanAssignment.uniform(units, policy)
    if policy == "mixed":
        cycle = (ST_NAME, UD_NAME, RU_NAME)
        ordered = sorted(units, key=lambda u: u.uid)
        return PlanAssignment({u.uid: cycle[i % len(cycle)]
                               for i, u in enumerate(ordered)})
    raise ValueError(f"unknown matcher policy {policy!r}")


def reference_config() -> CheckConfig:
    """The ground truth: from-scratch extraction, serial, no fast paths."""
    return CheckConfig(system="noreuse", policy="-", fastpath="off",
                       backend="serial", jobs=1)


def _expand(system: str, policies: Sequence[str],
            fastpaths: Sequence[str], backends: Sequence[str],
            jobs: int) -> List[CheckConfig]:
    out: List[CheckConfig] = []
    for policy in policies:
        for fastpath in fastpaths:
            for backend in backends:
                out.append(CheckConfig(
                    system=system, policy=policy, fastpath=fastpath,
                    backend=backend,
                    jobs=1 if backend == "serial" else jobs))
    return out


def build_grid(name: str = "full", jobs: int = 2) -> List[CheckConfig]:
    """The sweep configurations for a named grid.

    Every capture group (system, policy) contains its serial +
    fastpath-off baseline so byte-level capture comparison always has
    an anchor. The non-reusing baselines never consult the fast paths,
    so their fastpath dimension is collapsed to "on".
    """
    if name not in GRID_NAMES:
        raise ValueError(f"unknown grid {name!r}; choose from {GRID_NAMES}")
    fastpaths = ("off", "on")
    if name == "small":
        backends: Tuple[str, ...] = ("serial", "thread")
        cyclex_policies: Tuple[str, ...] = ("UD",)
        delex_policies: Tuple[str, ...] = ("UD", "mixed")
        view_modes: Tuple[str, ...] = ("delta",)
    else:
        backends = ("serial", "thread", "process")
        cyclex_policies = ("UD", "ST")
        delex_policies = ("UD", "ST", "mixed", "auto")
        view_modes = ("delta", "noreuse", "delex")
    grid: List[CheckConfig] = []
    grid += _expand("noreuse", ("-",), ("on",), backends, jobs)
    grid += _expand("shortcut", ("-",), ("on",), backends, jobs)
    grid += _expand("cyclex", cyclex_policies, fastpaths, backends, jobs)
    grid += _expand("delex", delex_policies, fastpaths, backends, jobs)
    grid += [CheckConfig(system=mode, view=mode) for mode in view_modes]
    return grid
