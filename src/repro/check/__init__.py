"""repro.check — the differential correctness harness.

Delex's value proposition is that recycling is *invisible*: cyclex and
delex, under any matcher assignment, any executor backend, and any
fast-path setting, must produce exactly the tuples a from-scratch
no-reuse run produces (Theorem 1), and must write byte-identical reuse
files whichever backend or fast-path setting produced them. After the
parallel runtime (PR 1) and the snapshot-delta fast paths (PR 2) the
equivalence surface is ``4 systems x {fastpath on,off} x {serial,
thread, process}`` per matcher policy — far too wide for spot checks.
This package is the standing correctness tooling that sweeps it:

* :mod:`.grid` — the sweep grid: one :class:`~repro.check.grid.CheckConfig`
  per (system, matcher policy, fastpath, backend) point.
* :mod:`.oracle` — the differential oracle. Runs a snapshot series
  through every grid point, diffs extracted tuples against the
  no-reuse ground truth *and* reuse-file bytes against each group's
  serial baseline, and reports the first divergent (page, unit, tuple).
* :mod:`.fuzz` — the seeded evolution fuzzer. Composes adversarial
  mutation schedules (renames, deletes/resurrections, duplicate
  content, boundary edits, Unicode, empty/whitespace pages) on top of
  :mod:`repro.corpus.evolve`, with deterministic ``--seed`` replay and
  a greedy shrinker that minimizes a failing series.
* :mod:`.invariants` — cheap runtime assertions (region disjointness
  and containment per Defs. 7-8, span-in-page bounds, reuse-file
  page-group monotonicity, memo-hit retag soundness) wired into the
  engine behind a global flag, off by default with zero hot-path cost.
* :mod:`.faults` — test-only fault injection, so the harness itself
  can be demonstrated to catch (and shrink) a real divergence.
* :mod:`.bundle` — replayable repro bundles written for every failure.
* :mod:`.runner` — the ``python -m repro check`` budget loop.

Only :mod:`.invariants` is imported eagerly here: the hot-path modules
(:mod:`repro.reuse.regions`, :mod:`repro.fastpath.memo`) import it, so
it must stay free of imports from those layers. Import the oracle,
fuzzer, and runner explicitly (``from repro.check import oracle``).
"""

from . import invariants
from .invariants import InvariantViolation, checking

__all__ = [
    "InvariantViolation",
    "checking",
    "invariants",
]
