"""The differential oracle: every config against from-scratch truth.

Theorem 1 claims all four systems — under any matcher assignment, with
the fast paths on or off, on any execution backend — produce exactly
the tuples a from-scratch run produces. The oracle is that claim as an
executable: it runs a snapshot series through the reference config
(noreuse, serial, no fast paths) to establish per-snapshot ground
truth *with per-page attribution*, then drives every
:class:`~repro.check.grid.CheckConfig` of a sweep grid over the same
series and diffs:

* **result tuples** per snapshot and relation — the first divergence
  is reported with the offending tuples and the page(s) the reference
  attributes them to;
* **capture files** byte-for-byte within each
  :meth:`~repro.check.grid.CheckConfig.capture_group` against the
  group's serial + fastpath-off baseline — a reusing system's reuse
  files are part of its observable behaviour (PR 1/PR 2 contract),
  and a divergence is localized to the first differing page group of
  the first differing file.

With ``check=True`` the whole sweep runs under the
:mod:`~repro.check.invariants` layer and every baseline capture file
is re-checked for page-group monotonicity on disk; violations become
discrepancies like any other.

The oracle never raises on a mismatch — it returns an
:class:`OracleReport` whose :class:`Discrepancy` records the fuzzer's
shrinker and the repro bundle writer consume.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.runner import canonical_results, make_system
from ..corpus.snapshot import Snapshot
from ..extractors.library import IETask
from ..plan.compile import compile_program
from ..reuse.attribution import (
    attributed_pages,
    extract_page_rows,
    tuple_attribution,
)
from ..reuse.files import iter_all_pages
from ..timing import Timer, Timings
from . import invariants
from .grid import CheckConfig

#: How many offending tuples a discrepancy records (keep reports small).
SAMPLE_TUPLES = 3


@dataclass(frozen=True)
class Discrepancy:
    """One observed divergence from the reference behaviour.

    ``kind`` is one of:

    * ``results``   — a snapshot's canonical tuples differ;
    * ``capture``   — a reuse file differs from its group baseline;
    * ``invariant`` — a runtime invariant raised during the run;
    * ``error``     — the config crashed outright.
    """

    kind: str
    config_id: str
    snapshot_index: int          # -1 when not snapshot-scoped
    location: str                # relation, capture path, or invariant
    detail: str
    pages: Tuple[str, ...] = ()  # attributed page dids ("?" = unknown)
    missing: Tuple = ()          # sample tuples the config lost
    extra: Tuple = ()            # sample tuples the config invented

    def describe(self) -> str:
        where = (f"snapshot {self.snapshot_index} "
                 if self.snapshot_index >= 0 else "")
        pages = (" pages=" + ",".join(self.pages)) if self.pages else ""
        return (f"[{self.kind}] {self.config_id} {where}"
                f"{self.location}: {self.detail}{pages}")


@dataclass
class ConfigOutcome:
    """One config's sweep outcome."""

    config: CheckConfig
    seconds: float = 0.0
    snapshots_run: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class OracleReport:
    """The full sweep verdict."""

    task: str
    n_snapshots: int
    n_pages: int
    reference_id: str
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    checks_run: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def discrepancies(self) -> List[Discrepancy]:
        return [d for o in self.outcomes for d in o.discrepancies]

    def first_discrepancy(self) -> Optional[Discrepancy]:
        found = self.discrepancies()
        return found[0] if found else None

    def summary(self) -> str:
        bad = [o for o in self.outcomes if not o.ok]
        head = (f"oracle: {len(self.outcomes)} configs on "
                f"{self.n_snapshots} snapshots x {self.n_pages} pages "
                f"of {self.task}: "
                + ("all agree" if not bad
                   else f"{len(bad)} config(s) diverge"))
        lines = [head]
        for outcome in bad:
            for disc in outcome.discrepancies:
                lines.append("  " + disc.describe())
        if self.checks_run:
            lines.append(f"  invariant checks executed: {self.checks_run}")
        return "\n".join(lines)


@dataclass
class Reference:
    """Ground truth with per-page attribution.

    ``results[i]`` is snapshot *i*'s canonical relation map;
    ``attribution[i][rel][tuple]`` lists the dids of the pages whose
    from-scratch extraction produced that tuple (canonical tuples
    carry no page id of their own, so this map is what turns a bare
    tuple diff into the ISSUE-required first divergent *(page, unit,
    tuple)* report).
    """

    results: List[Dict[str, frozenset]]
    attribution: List[Dict[str, Dict[tuple, Tuple[str, ...]]]]


def build_reference(task: IETask,
                    snapshots: Sequence[Snapshot]) -> Reference:
    """From-scratch truth, page by page (serial, no fast paths).

    Both the per-page extraction loop and the tuple->pages inversion
    live in :mod:`repro.reuse.attribution` — the same machinery the
    serving layer's delta-apply uses, so the oracle and the server can
    never drift apart on what "the page that produced this tuple"
    means (pinned by ``tests/test_attribution.py``).
    """
    plan = compile_program(task.program, task.registry)
    timer = Timer(Timings())
    results: List[Dict[str, frozenset]] = []
    attribution: List[Dict[str, Dict[tuple, Tuple[str, ...]]]] = []
    for snapshot in snapshots:
        page_order = [p.did for p in snapshot.canonical_pages()]
        page_rows = extract_page_rows(plan, snapshot.canonical_pages(),
                                      timer)
        attr = tuple_attribution(page_rows, order=page_order)
        results.append({rel: frozenset(tuples)
                        for rel, tuples in attr.items()})
        attribution.append(attr)
    return Reference(results=results, attribution=attribution)


def attribute_pages(tuples: Sequence[tuple],
                    rel_attr: Dict[tuple, Tuple[str, ...]]
                    ) -> Tuple[str, ...]:
    """The reference pages responsible for the given tuples.

    Thin alias of :func:`repro.reuse.attribution.attributed_pages`,
    kept under its historical name for the oracle's callers.
    """
    return attributed_pages(tuples, rel_attr)


def diff_results(reference: Reference, got: Dict[str, frozenset],
                 snapshot_index: int,
                 config_id: str) -> Optional[Discrepancy]:
    """First divergent relation of one snapshot, attributed to pages."""
    want = reference.results[snapshot_index]
    rel_attr_all = reference.attribution[snapshot_index]
    for rel in sorted(set(want) | set(got)):
        missing = want.get(rel, frozenset()) - got.get(rel, frozenset())
        extra = got.get(rel, frozenset()) - want.get(rel, frozenset())
        if not missing and not extra:
            continue
        missing_sample = tuple(sorted(missing))[:SAMPLE_TUPLES]
        extra_sample = tuple(sorted(extra))[:SAMPLE_TUPLES]
        rel_attr = rel_attr_all.get(rel, {})
        pages = attribute_pages(
            list(missing_sample) + list(extra_sample), rel_attr)
        return Discrepancy(
            kind="results", config_id=config_id,
            snapshot_index=snapshot_index, location=rel,
            detail=(f"{len(missing)} missing, {len(extra)} extra "
                    f"tuple(s) vs reference"),
            pages=pages, missing=missing_sample, extra=extra_sample)
    return None


def _capture_files(config_dir: str) -> Dict[str, str]:
    """All reuse files under a config's workdir, by relative path."""
    out: Dict[str, str] = {}
    for dirpath, _dirnames, filenames in os.walk(config_dir):
        for name in filenames:
            if name.endswith(".reuse"):
                path = os.path.join(dirpath, name)
                out[os.path.relpath(path, config_dir)] = path
    return out


def _first_divergent_page(path_a: str, path_b: str) -> str:
    """Localize a byte-level capture diff to its first page group."""
    try:
        for (did_a, recs_a), (did_b, recs_b) in zip(
                iter_all_pages(path_a), iter_all_pages(path_b)):
            if did_a != did_b:
                return (f"first divergent page group: baseline "
                        f"{did_a!r} vs {did_b!r}")
            if recs_a != recs_b:
                for i, (ra, rb) in enumerate(zip(recs_a, recs_b)):
                    if ra != rb:
                        return (f"first divergent page group {did_a!r}, "
                                f"record {i}: baseline {ra!r} vs {rb!r}")
                return (f"first divergent page group {did_a!r}: "
                        f"{len(recs_a)} vs {len(recs_b)} record(s)")
    except Exception as exc:  # pragma: no cover - defensive
        return f"capture files differ (unparsable: {exc})"
    return "capture files differ in page-group count"


def compare_captures(baseline: ConfigOutcome, baseline_dir: str,
                     other: ConfigOutcome,
                     other_dir: str) -> Optional[Discrepancy]:
    """Byte-compare two configs' capture trees (same capture group)."""
    files_a = _capture_files(baseline_dir)
    files_b = _capture_files(other_dir)
    only_a = sorted(set(files_a) - set(files_b))
    only_b = sorted(set(files_b) - set(files_a))
    if only_a or only_b:
        return Discrepancy(
            kind="capture", config_id=other.config.config_id,
            snapshot_index=-1,
            location=(only_a + only_b)[0],
            detail=(f"capture file set differs from baseline "
                    f"{baseline.config.config_id}: "
                    f"{len(only_a)} missing, {len(only_b)} extra"))
    for rel_path in sorted(files_a):
        with open(files_a[rel_path], "rb") as fh:
            bytes_a = fh.read()
        with open(files_b[rel_path], "rb") as fh:
            bytes_b = fh.read()
        if bytes_a != bytes_b:
            return Discrepancy(
                kind="capture", config_id=other.config.config_id,
                snapshot_index=-1, location=rel_path,
                detail=(f"bytes differ from baseline "
                        f"{baseline.config.config_id}: "
                        + _first_divergent_page(files_a[rel_path],
                                                files_b[rel_path])))
    return None


def _run_view_config(cfg: CheckConfig, task: IETask,
                     snapshots: Sequence[Snapshot], config_dir: str,
                     reference: Reference) -> ConfigOutcome:
    """Drive one *view-maintenance* config over the series.

    Instead of a bare engine, the series flows through a
    :class:`~repro.serve.views.MaterializedView` with the config's
    maintenance mode, and what gets diffed against the reference is
    each *published generation* — so the sweep covers the serving
    path end to end: snapshot diffing, the store delta, and (for
    ``view="delta"``) the delta rules, the classifier, and the
    incrementally merged relation index.
    """
    # Imported lazily: the serving layer pulls in repro.delta and the
    # engine stack, which the bare-engine sweep does not need.
    from ..serve.views import MaterializedView, ViewConfig

    outcome = ConfigOutcome(config=cfg)
    start = time.perf_counter()
    try:
        view = MaterializedView(
            ViewConfig(name=cfg.slug, task=task.name, system=cfg.view,
                       fastpath=cfg.fastpath, jobs=cfg.jobs,
                       backend=cfg.backend
                       if cfg.backend != "serial" else "serial"),
            config_dir, task=task)
        for i, snapshot in enumerate(snapshots):
            view.apply_snapshot(snapshot, check=True)
            outcome.snapshots_run = i + 1
            generation = view.generation
            got = (generation.canonical()
                   if generation is not None else {})
            disc = diff_results(reference, got, i, cfg.config_id)
            if disc is not None:
                outcome.discrepancies.append(disc)
                break
    except invariants.InvariantViolation as violation:
        outcome.discrepancies.append(Discrepancy(
            kind="invariant", config_id=cfg.config_id,
            snapshot_index=outcome.snapshots_run,
            location=violation.invariant, detail=violation.detail,
            pages=tuple(str(v) for k, v in
                        sorted(violation.context.items())
                        if k == "did")))
    except Exception as exc:
        outcome.discrepancies.append(Discrepancy(
            kind="error", config_id=cfg.config_id,
            snapshot_index=outcome.snapshots_run,
            location=type(exc).__name__, detail=str(exc)))
    outcome.seconds = time.perf_counter() - start
    return outcome


def _run_config(cfg: CheckConfig, task: IETask,
                snapshots: Sequence[Snapshot], config_dir: str,
                reference: Reference) -> ConfigOutcome:
    """Drive one config over the series, diffing every snapshot."""
    if cfg.view != "-":
        return _run_view_config(cfg, task, snapshots, config_dir,
                                reference)
    outcome = ConfigOutcome(config=cfg)
    start = time.perf_counter()
    kwargs = dict(cfg.system_kwargs(task))
    if cfg.system == "delex":
        # Keep every capture dir alive for the byte-level comparison.
        kwargs.setdefault("capture_history", max(2, len(snapshots)))
    try:
        instance = make_system(
            cfg.system, task, config_dir, jobs=cfg.jobs,
            backend=cfg.backend if cfg.backend != "serial" else "serial",
            fastpath=cfg.fastpath, **kwargs)
        prev: Optional[Snapshot] = None
        for i, snapshot in enumerate(snapshots):
            result = instance.process(snapshot, prev)
            prev = snapshot
            outcome.snapshots_run = i + 1
            disc = diff_results(reference, canonical_results(result),
                                i, cfg.config_id)
            if disc is not None:
                outcome.discrepancies.append(disc)
                break
    except invariants.InvariantViolation as violation:
        outcome.discrepancies.append(Discrepancy(
            kind="invariant", config_id=cfg.config_id,
            snapshot_index=outcome.snapshots_run,
            location=violation.invariant, detail=violation.detail,
            pages=tuple(str(v) for k, v in
                        sorted(violation.context.items())
                        if k == "did")))
    except Exception as exc:
        outcome.discrepancies.append(Discrepancy(
            kind="error", config_id=cfg.config_id,
            snapshot_index=outcome.snapshots_run,
            location=type(exc).__name__, detail=str(exc)))
    outcome.seconds = time.perf_counter() - start
    return outcome


def _group_baseline(group: List[Tuple[CheckConfig, ConfigOutcome, str]]
                    ) -> Optional[Tuple[ConfigOutcome, str]]:
    """The serial + fastpath-off anchor of one capture group."""
    for cfg, outcome, config_dir in group:
        if cfg.backend == "serial" and cfg.fastpath == "off":
            return outcome, config_dir
    return None


def run_oracle(task: IETask, snapshots: Sequence[Snapshot],
               grid: Sequence[CheckConfig],
               workdir: Optional[str] = None, check: bool = False,
               progress: Optional[Callable[[str], None]] = None
               ) -> OracleReport:
    """Sweep the grid over the series; return the full verdict.

    ``workdir=None`` uses (and removes) a temporary directory; pass a
    path to keep the capture trees for post-mortem inspection.
    ``check=True`` runs the whole sweep under the invariant layer and
    re-checks baseline capture files for page-group monotonicity.
    """
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro_check_")
    os.makedirs(workdir, exist_ok=True)
    say = progress or (lambda message: None)
    start = time.perf_counter()
    n_pages = max((len(s.pages) for s in snapshots), default=0)
    report = OracleReport(task=task.name, n_snapshots=len(snapshots),
                          n_pages=n_pages, reference_id="noreuse/-"
                          "/fp-off/serialx1")
    try:
        say("building from-scratch reference ...")
        if check:
            invariants.reset_counter()
        with invariants.checking(check or invariants.ENABLED):
            reference = build_reference(task, snapshots)
            groups: Dict[Tuple[str, str],
                         List[Tuple[CheckConfig, ConfigOutcome, str]]] = {}
            for cfg in grid:
                config_dir = os.path.join(workdir, cfg.slug)
                outcome = _run_config(cfg, task, snapshots, config_dir,
                                      reference)
                report.outcomes.append(outcome)
                say(f"{cfg.config_id}: "
                    + ("ok" if outcome.ok
                       else outcome.discrepancies[0].kind)
                    + f" ({outcome.seconds:.2f}s)")
                if cfg.capture_comparable() and outcome.ok:
                    groups.setdefault(cfg.capture_group(), []).append(
                        (cfg, outcome, config_dir))
            # Byte-level capture comparison within each group.
            for key in sorted(groups):
                group = groups[key]
                anchor = _group_baseline(group)
                if anchor is None:
                    continue
                baseline_outcome, baseline_dir = anchor
                if check:
                    _monotonic_check(baseline_outcome, baseline_dir)
                for cfg, outcome, config_dir in group:
                    if config_dir == baseline_dir:
                        continue
                    disc = compare_captures(baseline_outcome,
                                            baseline_dir, outcome,
                                            config_dir)
                    if disc is not None:
                        outcome.discrepancies.append(disc)
                        say(disc.describe())
        if check:
            report.checks_run = invariants.checks_run
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)
    report.seconds = time.perf_counter() - start
    return report


def _monotonic_check(outcome: ConfigOutcome, config_dir: str) -> None:
    """On-disk page-order recheck of a baseline's capture files."""
    for rel_path, path in sorted(_capture_files(config_dir).items()):
        try:
            invariants.check_reuse_file_monotonic(path)
        except invariants.InvariantViolation as violation:
            outcome.discrepancies.append(Discrepancy(
                kind="invariant",
                config_id=outcome.config.config_id,
                snapshot_index=-1, location=rel_path,
                detail=violation.detail))
