"""Runtime invariant assertions (the ``--check`` layer).

Cheap executable statements of the properties Theorem 1 leans on,
wired into the hot paths of :mod:`repro.reuse.regions`,
:mod:`repro.reuse.engine`, and :mod:`repro.fastpath.memo` behind the
module-level :data:`ENABLED` flag. The flag is **off by default** and
every call site guards with a single ``if invariants.ENABLED:`` — one
module-attribute load per call, which is below measurement noise, so
production runs pay nothing.

Checked invariants (see PAPER.md Defs. 7-8 and regions.py's
correctness argument):

* **derivation soundness** — copy zones lie inside the input region,
  are sorted and separated by at least one character (so a mention
  straddling two zones always intersects the complement); extraction
  regions lie inside the input region, are merged-disjoint, and cover
  the complement of the copy zones; every copied mention's extent fits
  inside a single copy zone.
* **span-in-page bounds** — every span an IE unit emits stays inside
  ``[0, len(page.text)]`` and is anchored to the page it was emitted
  for.
* **reuse-file page-group monotonicity** — pages are recorded in
  strictly increasing did order (the precondition for one-pass
  sequential scans and for the parallel runtime's deterministic batch
  merge); :func:`check_reuse_file_monotonic` re-checks it on disk.
* **memo-hit retag soundness** — segments replayed from the cross-unit
  match memo still witness literal text equality inside both regions.
* **identity-pair soundness** — a fingerprint-equal page pair taking
  the unchanged-page short circuit really is byte-identical (guards
  against fingerprint collisions).

This module must only depend on :mod:`repro.text` — the reuse and
fastpath layers import it, so anything heavier would be a cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from ..text.span import Interval, Span

#: Master switch. Call sites guard with ``if invariants.ENABLED:`` so a
#: disabled run costs one attribute load per potential check.
ENABLED = False

#: Number of invariant checks executed since the last reset — lets the
#: oracle assert the layer actually ran during a ``--check on`` sweep.
checks_run = 0


class InvariantViolation(AssertionError):
    """A runtime invariant did not hold.

    Subclasses :class:`AssertionError` so existing "assertions must
    hold" test idioms catch it, but carries structured context for the
    oracle's failure reports.
    """

    def __init__(self, invariant: str, detail: str,
                 **context: Any) -> None:
        self.invariant = invariant
        self.detail = detail
        self.context = context
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(f"[{invariant}] {detail}"
                         + (f" ({extras})" if extras else ""))


def enable(on: bool = True) -> None:
    """Turn the invariant layer on (or off)."""
    global ENABLED
    ENABLED = bool(on)


def disable() -> None:
    enable(False)


def reset_counter() -> None:
    global checks_run
    checks_run = 0


def _count() -> None:
    global checks_run
    checks_run += 1


@contextmanager
def checking(on: bool = True) -> Iterator[None]:
    """Temporarily set the invariant layer; restores the previous state."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(on)
    try:
        yield
    finally:
        ENABLED = previous


# -- Defs. 7-8: copy-zone / extraction-region geometry ---------------------

def check_derivation(derivation: Any, p_region: Interval, alpha: int,
                     beta: int, *, unit: str = "?",
                     did: str = "?") -> None:
    """Disjointness, containment, and coverage of a reuse derivation.

    ``derivation`` is a :class:`repro.reuse.regions.ReuseDerivation`
    (duck-typed to avoid importing the reuse layer from here).
    """
    _count()
    zones = derivation.copy_zones
    prev_end: Optional[int] = None
    for info in zones:
        zone = info.zone
        if not (p_region.start <= zone.start and zone.end <= p_region.end):
            raise InvariantViolation(
                "copy-zone-containment",
                f"copy zone {zone} outside input region {p_region}",
                unit=unit, did=did)
        if zone.is_empty():
            raise InvariantViolation(
                "copy-zone-nonempty", f"empty copy zone at {zone.start}",
                unit=unit, did=did)
        if prev_end is not None and zone.start <= prev_end:
            raise InvariantViolation(
                "copy-zone-separation",
                f"copy zone {zone} not separated (>=1 char) from "
                f"previous zone ending at {prev_end}",
                unit=unit, did=did)
        prev_end = zone.end
    regions = derivation.extraction_regions
    prev_end = None
    for er in regions:
        if not (p_region.start <= er.start and er.end <= p_region.end):
            raise InvariantViolation(
                "extraction-region-containment",
                f"extraction region {er} outside input region {p_region}",
                unit=unit, did=did)
        if prev_end is not None and er.start <= prev_end:
            raise InvariantViolation(
                "extraction-region-disjoint",
                f"extraction region {er} overlaps/touches previous "
                f"region ending at {prev_end} (must be merged)",
                unit=unit, did=did)
        prev_end = er.end
    # Coverage: every position of R not inside a copy zone must lie in
    # some extraction region (step 3 of the correctness argument).
    for gap_start, gap_end in _complement(
            [z.zone for z in zones], p_region):
        if not any(er.start <= gap_start and gap_end <= er.end
                   for er in regions):
            raise InvariantViolation(
                "extraction-coverage",
                f"uncovered gap [{gap_start}, {gap_end}) of input region "
                f"{p_region} lies in no extraction region",
                unit=unit, did=did, alpha=alpha, beta=beta)
    # Copied mentions must fit inside a single copy zone.
    for fields in derivation.copied:
        extent = _fields_extent(fields)
        if extent is None:
            continue
        es, ee = extent
        if not any(z.zone.start <= es and ee <= z.zone.end
                   for z in zones):
            raise InvariantViolation(
                "copied-extent-in-zone",
                f"copied mention extent [{es}, {ee}) fits no copy zone",
                unit=unit, did=did)


def _complement(zones: Sequence[Interval],
                within: Interval) -> List[tuple]:
    gaps: List[tuple] = []
    cursor = within.start
    for zone in zones:
        if zone.start > cursor:
            gaps.append((cursor, zone.start))
        cursor = max(cursor, zone.end)
    if cursor < within.end:
        gaps.append((cursor, within.end))
    return gaps


def _fields_extent(fields: Dict[str, Any]) -> Optional[tuple]:
    spans = [v for v in fields.values() if isinstance(v, Span)]
    if not spans:
        return None
    return (min(s.start for s in spans), max(s.end for s in spans))


# -- span-in-page bounds ----------------------------------------------------

def check_rows_in_page(rows: Iterable[Dict[str, Any]], page: Any,
                       *, unit: str = "?") -> None:
    """Every span in the rows stays inside its page's bounds."""
    _count()
    limit = len(page.text)
    for row in rows:
        for var, value in row.items():
            if not isinstance(value, Span):
                continue
            if value.did != page.did:
                raise InvariantViolation(
                    "span-page-anchor",
                    f"span {var} anchored to {value.did!r}, emitted for "
                    f"page {page.did!r}", unit=unit)
            if value.start < 0 or value.end > limit:
                raise InvariantViolation(
                    "span-in-page",
                    f"span {var}=[{value.start}, {value.end}) outside "
                    f"page bounds [0, {limit})",
                    unit=unit, did=page.did)


# -- reuse-file page-group monotonicity ------------------------------------

def check_page_order(dids: Sequence[str]) -> None:
    """Pages must be processed (and recorded) in strictly increasing
    did order — the canonical order every reuse-file scan relies on."""
    _count()
    for prev, cur in zip(dids, dids[1:]):
        if cur <= prev:
            raise InvariantViolation(
                "page-order-monotonic",
                f"page {cur!r} follows {prev!r}; canonical order must "
                "be strictly increasing by did")


def check_reuse_file_monotonic(path: str) -> int:
    """Re-check page-group monotonicity of a reuse file on disk.

    Returns the number of page groups seen. Used by the oracle after a
    sweep; not a hot-path call.
    """
    from ..reuse.files import iter_all_pages  # local: avoid cycle

    _count()
    prev: Optional[str] = None
    groups = 0
    for did, _records in iter_all_pages(path):
        groups += 1
        if prev is not None and did <= prev:
            raise InvariantViolation(
                "reuse-file-monotonic",
                f"page group {did!r} follows {prev!r} in {path}")
        prev = did
    return groups


# -- memo-hit retag soundness ----------------------------------------------

def check_memo_replay(segments: Iterable[Any], p_text: str, q_text: str,
                      p_region: Interval, q_region: Interval) -> None:
    """Segments replayed from the match memo must still witness literal
    text equality and lie inside the regions they were replayed for."""
    _count()
    for seg in segments:
        p_lo, p_hi = seg.p_start, seg.p_start + seg.length
        q_lo, q_hi = seg.q_start, seg.q_start + seg.length
        if p_lo < p_region.start or p_hi > p_region.end:
            raise InvariantViolation(
                "memo-segment-p-bounds",
                f"replayed segment p[{p_lo}, {p_hi}) outside p-region "
                f"{p_region}")
        if q_lo < q_region.start or q_hi > q_region.end:
            raise InvariantViolation(
                "memo-segment-q-bounds",
                f"replayed segment q[{q_lo}, {q_hi}) outside q-region "
                f"{q_region}")
        if p_text[p_lo:p_hi] != q_text[q_lo:q_hi]:
            raise InvariantViolation(
                "memo-retag-soundness",
                f"replayed segment p[{p_lo}, {p_hi}) != q[{q_lo}, "
                f"{q_hi}): memoized match no longer witnesses equality")


# -- identity-pair soundness ------------------------------------------------

def check_identity_pair(page: Any, q_page: Any) -> None:
    """A fingerprint short-circuited page pair must be byte-identical."""
    _count()
    if page.text != q_page.text:
        raise InvariantViolation(
            "identity-pair-texts-equal",
            f"pages {page.did!r} / {q_page.did!r} took the unchanged-"
            "page fast path but their texts differ (fingerprint "
            "collision?)")
