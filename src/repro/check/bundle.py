"""Replayable repro bundles for oracle failures.

A bundle is a self-contained directory capturing everything needed to
reproduce a divergence on another machine:

* ``bundle.json`` — the fuzz spec (when the fuzzer found it), the
  injected fault (when the failure was planted by the harness's own
  self-test), the grid name, and the first discrepancy's description;
* ``series/snap_NNNN.snap`` — the exact (possibly shrunk) snapshot
  series, persisted with the corpus store's sequential page format so
  a replay does not depend on the fuzzer's generators at all.

``python -m repro check --replay <dir>`` (and :func:`replay_bundle`)
loads the series, re-installs the recorded fault if any, and re-runs
the recorded grid — the oracle's verdict on a correct tree is
"diverges" for a fault bundle and "all agree" once the bug is fixed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..corpus.snapshot import Snapshot, read_snapshot, write_snapshot
from ..extractors.library import make_task
from .faults import injected_fault
from .grid import build_grid
from .oracle import Discrepancy, OracleReport, run_oracle
from .fuzz import FuzzSpec

BUNDLE_FILE = "bundle.json"
SERIES_DIR = "series"
FORMAT = 1


@dataclass
class ReproBundle:
    """An in-memory view of a bundle directory."""

    series: List[Snapshot]
    grid: str = "small"
    task: str = "play"
    spec: Optional[FuzzSpec] = None
    fault: Optional[str] = None
    discrepancies: List[str] = field(default_factory=list)
    created: str = ""

    @property
    def n_pages(self) -> int:
        return len({p.url for s in self.series for p in s.pages})

    @property
    def n_snapshots(self) -> int:
        return len(self.series)


def write_bundle(path: str, series: Sequence[Snapshot], task: str,
                 grid: str, report: Optional[OracleReport] = None,
                 spec: Optional[FuzzSpec] = None,
                 fault: Optional[str] = None) -> str:
    """Persist a repro bundle; returns the bundle directory."""
    os.makedirs(os.path.join(path, SERIES_DIR), exist_ok=True)
    for i, snapshot in enumerate(series):
        write_snapshot(Snapshot(i, list(snapshot.pages)),
                       os.path.join(path, SERIES_DIR,
                                    f"snap_{i:04d}.snap"))
    manifest: Dict[str, object] = {
        "format": FORMAT,
        "task": task,
        "grid": grid,
        "snapshots": len(series),
        "fault": fault,
        "spec": spec.as_dict() if spec is not None else None,
        "discrepancies": [d.describe() for d in
                          (report.discrepancies() if report else [])],
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    with open(os.path.join(path, BUNDLE_FILE), "w",
              encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bundle(path: str) -> ReproBundle:
    """Load a bundle directory back into memory."""
    with open(os.path.join(path, BUNDLE_FILE), encoding="utf-8") as fh:
        manifest = json.load(fh)
    series: List[Snapshot] = []
    for i in range(int(manifest["snapshots"])):
        series.append(read_snapshot(
            os.path.join(path, SERIES_DIR, f"snap_{i:04d}.snap")))
    spec_data = manifest.get("spec")
    return ReproBundle(
        series=series,
        grid=str(manifest.get("grid", "small")),
        task=str(manifest.get("task", "play")),
        spec=(FuzzSpec.from_dict(spec_data) if spec_data else None),
        fault=manifest.get("fault"),
        discrepancies=list(manifest.get("discrepancies", ())),
        created=str(manifest.get("created", "")))


def replay_bundle(path: str, check: bool = False,
                  workdir: Optional[str] = None) -> OracleReport:
    """Re-run a bundle's series through its recorded grid.

    Re-installs the bundle's injected fault (if any) for the duration
    of the sweep, so a fault bundle reproduces its divergence exactly.
    """
    bundle = load_bundle(path)
    task = make_task(bundle.task, work_scale=0)
    with injected_fault(bundle.fault):
        return run_oracle(task, bundle.series, build_grid(bundle.grid),
                          workdir=workdir, check=check)
