"""Test-only fault injection for the differential harness.

A correctness harness you have never seen fail is not evidence of
anything. This module lets tests (and ``python -m repro check
--fault ...``) plant a *silent* logic bug in the reuse derivation —
the kind of bug the differential oracle exists to catch — and verify
the oracle reports it and the shrinker minimizes it.

The hook lives in :mod:`repro.reuse.regions` as a module-level
callable (``_fault_hook``), ``None`` in production; ``derive_reuse``
invokes it *after* the invariant checks, so an injected fault models a
bug the cheap invariants cannot see (e.g. a dropped copy) and only the
cross-system diff exposes. Faults are deliberately deterministic —
they corrupt every derivation that meets their trigger condition — so
a failing series stays failing under shrinking.

Available faults:

* ``drop_copied`` — silently drop the last copied mention of any
  derivation that copied at least one. Models an off-by-one in copy
  selection: invariant-clean, output-visible.
* ``shift_copied`` — shift the first copied mention's spans one
  character right. Models a shift-computation bug; the differential
  oracle catches it as missing+extra tuples.
* ``drop_extraction_region`` — drop the last extraction region when
  more than one was derived. Models broken gap coverage. Note the
  tasks' α (hundreds of characters) means small fuzz pages merge all
  gaps into one region, so this fault's trigger needs long pages; a
  post-hoc ``check_derivation`` on the corrupted derivation raises
  ``extraction-coverage`` (see tests/test_check.py).

Because the hook runs after the in-line invariant checks, *none* of
these faults trip the derivation-time assertions — re-checking the
returned derivation (or diffing against ground truth) is what exposes
them, which is the point.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..text.span import Interval, Span

FaultHook = Callable[[Any, Interval], None]


def _drop_copied(derivation: Any, p_region: Interval) -> None:
    if derivation.copied:
        derivation.copied.pop()


def _shift_copied(derivation: Any, p_region: Interval) -> None:
    if not derivation.copied:
        return
    fields = derivation.copied[0]
    for name, value in list(fields.items()):
        if isinstance(value, Span):
            fields[name] = Span(value.did, value.start + 1, value.end + 1)


def _drop_extraction_region(derivation: Any, p_region: Interval) -> None:
    if len(derivation.extraction_regions) > 1:
        derivation.extraction_regions.pop()


FAULTS: Dict[str, FaultHook] = {
    "drop_copied": _drop_copied,
    "shift_copied": _shift_copied,
    "drop_extraction_region": _drop_extraction_region,
}

_active: Optional[str] = None


def active_fault() -> Optional[str]:
    """Name of the currently injected fault, or None."""
    return _active


def install_fault(name: Optional[str]) -> None:
    """Install (or, with None, remove) a fault hook by name."""
    from ..reuse import regions  # local: regions must not import us

    global _active
    if name is None:
        regions._fault_hook = None
        _active = None
        return
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; choose from "
                         f"{tuple(sorted(FAULTS))}")
    regions._fault_hook = FAULTS[name]
    _active = name


@contextmanager
def injected_fault(name: Optional[str]) -> Iterator[None]:
    """Context manager: install a fault, restore the previous hook.

    ``name=None`` is a no-op pass-through so callers can thread an
    optional ``--fault`` argument straight in.
    """
    from ..reuse import regions

    previous_hook = regions._fault_hook
    previous_name = _active
    install_fault(name)
    try:
        yield
    finally:
        regions._fault_hook = previous_hook
        globals()["_active"] = previous_name
