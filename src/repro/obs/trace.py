"""Hierarchical span tracing with Chrome ``trace_event`` export.

One :class:`Tracer` per process (installed with :func:`install`,
removed with :func:`uninstall`). The span hierarchy mirrors the
execution hierarchy — snapshot → page batch → page → IE unit — and
every span carries an attribute bag (matcher chosen, rows copied,
memo hits) so a single trace explains *why* a snapshot was slow.

Zero-cost contract: every instrumentation site guards with the
module-level :data:`ENABLED` flag — one attribute load per site when
tracing is off, exactly the :mod:`repro.check.invariants` pattern —
and the hot per-candidate/per-segment loops are never touched at all.
Three site shapes:

* ``with trace.span(...)`` — context-manager spans for the coarse
  levels (snapshot, page); these maintain the per-thread active-span
  stack that :func:`annotate` targets.
* ``trace.event(name, start=, dur=)`` — a completed span recorded
  after the fact, for sites that already measure their own duration
  (unit runs, executor batches). No stack bookkeeping.
* ``trace.annotate(key, amount)`` — accumulate a numeric attribute on
  the innermost active span of the calling thread (memo hit/miss,
  regions copied).

The ring buffer is bounded (default 65536 spans — the oldest spans
fall off, the trace stays a fixed-size tail). ``sample`` keeps every
``1/sample``-th span of the high-volume categories (``page``,
``unit``, ``batch``, ``matcher``); structural categories
(``snapshot``, ``serve``) are always kept. Export is the Chrome
``trace_event`` JSON format — load the file at ``chrome://tracing``
or https://ui.perfetto.dev.

Process-pool caveat: a tracer installed in the parent is not
installed in pool workers (module globals do not travel), so
``backend=process`` runs trace the parent-side orchestration (batch
dispatch, merge, I/O) only. Thread and serial backends trace
everything.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

#: Master switch; instrumentation sites guard with
#: ``if trace.ENABLED:`` — one module-attribute load when disabled.
ENABLED = False

#: The installed tracer (None when tracing is off).
TRACER: Optional["Tracer"] = None

#: Categories whose spans are always kept regardless of sampling.
ALWAYS_KEPT = ("snapshot", "serve", "report")

DEFAULT_CAPACITY = 65536


@dataclass
class SpanRecord:
    """One completed span (start/dur are ``perf_counter`` seconds)."""

    name: str
    cat: str
    start: float
    dur: float
    tid: int
    args: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Shared no-op stand-in used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


#: The singleton no-op span: ``with (trace.span(...) if trace.ENABLED
#: else trace.NULL) as sp:`` costs one attribute check when disabled.
NULL = _NullSpan()


class _ActiveSpan:
    """A live span; context manager that records itself on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to this span."""
        self.args[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self.start = time.perf_counter()
        self.tracer._stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._record(self.name, self.cat, self.start,
                            end - self.start, self.args)


class Tracer:
    """Bounded, sampled span recorder for one process."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (0.0 < sample <= 1.0):
            raise ValueError("sample must be in (0, 1]")
        self.capacity = capacity
        self.sample = sample
        #: Keep every ``keep_every``-th sampled-category span.
        self.keep_every = max(1, round(1.0 / sample))
        self.records: Deque[SpanRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._seen = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, cat: str = "repro",
             **attrs: Any) -> _ActiveSpan:
        return _ActiveSpan(self, name, cat, dict(attrs))

    def event(self, name: str, cat: str, start: float, dur: float,
              **attrs: Any) -> None:
        """Record an already-measured span (``perf_counter`` seconds)."""
        self._record(name, cat, start, dur, dict(attrs))

    def annotate(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric attribute on the innermost active span."""
        stack = self._stack()
        if not stack:
            return
        args = stack[-1].args
        args[key] = args.get(key, 0) + amount

    def _record(self, name: str, cat: str, start: float, dur: float,
                args: Dict[str, Any]) -> None:
        with self._lock:
            self._seen += 1
            if (cat not in ALWAYS_KEPT
                    and self._seen % self.keep_every != 0):
                self.dropped += 1
                return
            self.records.append(SpanRecord(
                name=name, cat=cat, start=start, dur=dur,
                tid=threading.get_ident(), args=args))

    def __len__(self) -> int:
        return len(self.records)

    # -- export ------------------------------------------------------------

    def to_events(self) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` dicts (ts/dur in microseconds)."""
        pid = os.getpid()
        with self._lock:
            records = list(self.records)
        return [
            {
                "name": r.name,
                "cat": r.cat,
                "ph": "X",
                "ts": round((r.start - self._epoch) * 1e6, 3),
                "dur": round(r.dur * 1e6, 3),
                "pid": pid,
                "tid": r.tid,
                "args": r.args,
            }
            for r in sorted(records, key=lambda r: r.start)
        ]

    def export_chrome(self, path: str) -> int:
        """Write the Chrome tracing JSON document; returns span count."""
        events = self.to_events()
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs.trace",
                "sample": self.sample,
                "capacity": self.capacity,
                "spans_dropped_by_sampling": self.dropped,
                "epoch_unix_seconds": self._epoch_wall,
            },
        }
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
            f.write("\n")
        return len(events)


# -- module-level facade (what instrumentation sites call) ------------------

def install(capacity: int = DEFAULT_CAPACITY,
            sample: float = 1.0) -> Tracer:
    """Install a fresh process tracer and flip :data:`ENABLED` on."""
    global TRACER, ENABLED
    TRACER = Tracer(capacity=capacity, sample=sample)
    ENABLED = True
    return TRACER


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was installed (if any)."""
    global TRACER, ENABLED
    tracer, TRACER = TRACER, None
    ENABLED = False
    return tracer


def span(name: str, cat: str = "repro", **attrs: Any):
    """A context-manager span on the installed tracer (or a no-op)."""
    tracer = TRACER
    if tracer is None:
        return NULL
    return tracer.span(name, cat=cat, **attrs)


def event(name: str, cat: str, start: float, dur: float,
          **attrs: Any) -> None:
    tracer = TRACER
    if tracer is not None:
        tracer.event(name, cat, start, dur, **attrs)


def annotate(key: str, amount: float = 1) -> None:
    tracer = TRACER
    if tracer is not None:
        tracer.annotate(key, amount)
