"""Process-wide metrics registry with a Prometheus text exporter.

One :data:`REGISTRY` per process. Counters, gauges, and fixed-bucket
histograms live in named *families*; a family optionally carries label
names and hands out one child metric per label-value combination —
exactly the Prometheus data model, sized down to the stdlib.

Publishing is **pull-shaped and snapshot-granular**: the hot paths keep
mutating the cheap in-band counter bundles they always had
(:class:`~repro.timing.Timings`, ``RuntimeMetrics``, ``FastPathStats``,
``UnitRunStats``), and the *publish points* — once per snapshot in
:func:`repro.core.runner.run_series`, once per apply in
:mod:`repro.serve.views`, at render time in ``/metrics`` — fold those
aggregates into the registry behind a single ``if registry.ENABLED:``
module-attribute check. A disabled run therefore pays one attribute
load per snapshot, not per page or per matcher call, and extraction
output is byte-identical either way (the registry only ever *reads*
the run's telemetry).

Two exports:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format (``text/plain; version=0.0.4``), served by ``repro serve``'s
  ``/metrics?format=prometheus`` endpoint. Non-finite samples are
  dropped at observation time (and counted in
  ``repro_obs_dropped_samples_total``), so the exposition never
  contains ``nan``/``inf`` and counters never decrease.
* :meth:`MetricsRegistry.to_dict` — a JSON superset (per-family kind,
  help, label sets, bucket counts) embedded in
  ``repro run --metrics-json`` output under ``obs.registry``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .util import safe_rate

#: Master publish switch. Publish sites guard with
#: ``if registry.ENABLED:`` — one module-attribute load when disabled.
ENABLED = False

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for per-snapshot seconds.
DEFAULT_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                           0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def enable(on: bool = True) -> None:
    """Turn registry publishing on (or off)."""
    global ENABLED
    ENABLED = bool(on)


def disable() -> None:
    enable(False)


class Counter:
    """Monotonically non-decreasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> bool:
        """Add ``amount``; negative/non-finite increments are dropped.

        Returns False when the sample was dropped (the registry counts
        drops so mis-measured negatives surface instead of corrupting
        the series).
        """
        if not isinstance(amount, (int, float)) or not math.isfinite(amount):
            return False
        if amount < 0:
            return False
        self.value += amount
        return True


class Gauge:
    """Point-in-time sample; may go up or down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> bool:
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return False
        self.value = float(value)
        return True


class Histogram:
    """Fixed-bucket histogram (cumulative buckets + sum + count)."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # One slot per finite bucket + the implicit +Inf bucket.
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> bool:
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return False
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.sum += value
        self.count += 1
        return True

    @property
    def mean(self) -> float:
        return safe_rate(self.sum, self.count)


class MetricFamily:
    """All children of one metric name (one per label-value combo)."""

    def __init__(self, name: str, kind: str, help: str,  # noqa: A002
                 label_names: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_SECONDS_BUCKETS)

    def labels(self, **labels: str):
        """The child metric for this label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{self.label_names}, got {tuple(sorted(labels))}")
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def child(self):
        """The single unlabeled child (only for label-free families)."""
        if self.label_names:
            raise ValueError(f"metric {self.name!r} requires labels "
                             f"{self.label_names}")
        return self.labels()

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process's metric families, by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # -- family registration (idempotent) ---------------------------------

    def _family(self, name: str, kind: str, help: str,  # noqa: A002
                labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, label_names,
                                      buckets=buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} re-registered as {kind} with labels "
                    f"{label_names}; existing is {family.kind} with "
                    f"{family.label_names}")
            return family

    def counter(self, name: str, help: str = "",  # noqa: A002
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS
                  ) -> MetricFamily:
        return self._family(name, "histogram", help, labels,
                            buckets=buckets)

    # -- one-line write API -----------------------------------------------

    def _dropped(self) -> None:
        family = self.counter("repro_obs_dropped_samples_total",
                              "samples rejected for being negative or "
                              "non-finite")
        family.child().value += 1.0

    def inc(self, name: str, amount: float = 1.0, help: str = "",  # noqa: A002
            **labels: str) -> None:
        family = self.counter(name, help, labels=tuple(sorted(labels)))
        if not family.labels(**labels).inc(amount):
            self._dropped()

    def set(self, name: str, value: float, help: str = "",  # noqa: A002
            **labels: str) -> None:
        family = self.gauge(name, help, labels=tuple(sorted(labels)))
        if not family.labels(**labels).set(value):
            self._dropped()

    def observe(self, name: str, value: float, help: str = "",  # noqa: A002
                buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
                **labels: str) -> None:
        family = self.histogram(name, help, labels=tuple(sorted(labels)),
                                buckets=buckets)
        if not family.labels(**labels).observe(value):
            self._dropped()

    # -- export ------------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    @staticmethod
    def _label_str(names: Iterable[str], values: Iterable[str],
                   extra: str = "") -> str:
        parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of everything."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.samples():
                labels = self._label_str(family.label_names, values)
                if isinstance(child, Histogram):
                    cumulative = 0
                    for upper, n in zip(child.buckets,
                                        child.bucket_counts):
                        cumulative += n
                        le = self._label_str(
                            family.label_names, values,
                            extra=f'le="{_format(upper)}"')
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}")
                    cumulative += child.bucket_counts[-1]
                    le = self._label_str(family.label_names, values,
                                         extra='le="+Inf"')
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(f"{family.name}_sum{labels} "
                                 f"{_format(child.sum)}")
                    lines.append(f"{family.name}_count{labels} "
                                 f"{child.count}")
                else:
                    lines.append(f"{family.name}{labels} "
                                 f"{_format(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, object]:
        """JSON superset of the exposition (per-family structure)."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for values, child in family.samples():
                labels = dict(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "mean": child.mean,
                        "buckets": {
                            _format(u): n for u, n in
                            zip(child.buckets, child.bucket_counts)},
                        "inf": child.bucket_counts[-1],
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "samples": samples}
        return out

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-wide registry every publisher writes into.
REGISTRY = MetricsRegistry()


# -- publish points ---------------------------------------------------------
#
# Duck-typed on purpose: the registry must not import the timing /
# runtime / fastpath layers (they sit below it in the import graph).

def publish_timings(system: str, timings) -> None:
    """Fold one snapshot's :class:`~repro.timing.Timings` in.

    Publishes the Figure 11 decomposition as
    ``repro_timing_seconds_total{system,category}``, the explicit
    parallel ``overlap_seconds`` counter, the per-snapshot wall
    histogram, and — when attached — the runtime and fast-path
    telemetry.
    """
    row = timings.as_row()
    timing = REGISTRY.counter(
        "repro_timing_seconds_total",
        "figure-11 runtime decomposition, seconds by category",
        labels=("system", "category"))
    for category in ("match", "extraction", "copy", "opt", "io",
                     "others"):
        timing.labels(system=system, category=category).inc(row[category])
    REGISTRY.counter(
        "repro_timing_overlap_seconds_total",
        "summed per-worker category seconds in excess of wall total "
        "(parallel overlap; the amount the clamp kept out of Others)",
        labels=("system",)).labels(system=system).inc(
            timings.overlap_seconds)
    REGISTRY.histogram(
        "repro_snapshot_seconds",
        "wall seconds per snapshot run",
        labels=("system",)).labels(system=system).observe(timings.total)
    runtime = getattr(timings, "runtime", None)
    if runtime is not None:
        publish_runtime(system, runtime)
    fastpath = getattr(timings, "fastpath", None)
    if fastpath is not None:
        publish_fastpath(system, fastpath)


def publish_runtime(system: str, metrics) -> None:
    """Fold a run's ``RuntimeMetrics`` in (gauges: latest run wins)."""
    labels = {"system": system}
    REGISTRY.set("repro_runtime_pages_per_second",
                 metrics.pages_per_second,
                 help="pages/sec of the latest parallel run", **labels)
    REGISTRY.set("repro_runtime_worker_utilization",
                 metrics.worker_utilization,
                 help="busy/available worker time of the latest run",
                 **labels)
    REGISTRY.set("repro_runtime_jobs", metrics.jobs,
                 help="worker count of the latest run", **labels)
    REGISTRY.inc("repro_runtime_busy_seconds_total",
                 max(0.0, metrics.busy_seconds),
                 help="summed worker-side batch seconds", **labels)
    REGISTRY.inc("repro_runtime_steals_total",
                 float(getattr(metrics, "steals", 0)),
                 help="work items stolen by idle workers", **labels)
    REGISTRY.inc("repro_runtime_split_pages_total",
                 float(getattr(metrics, "split_pages", 0)),
                 help="pages split into sub-page work items", **labels)
    REGISTRY.inc("repro_runtime_split_parts_total",
                 float(getattr(metrics, "split_parts", 0)),
                 help="sub-page work items produced by splitting",
                 **labels)
    REGISTRY.set("repro_runtime_shared_text",
                 1.0 if getattr(metrics, "shared_text", False) else 0.0,
                 help="1 when page text rode in shared memory", **labels)
    for index, fraction in enumerate(
            getattr(metrics, "worker_busy_fractions", ())):
        REGISTRY.set("repro_runtime_worker_busy_fraction", fraction,
                     help="per-worker busy fraction of the latest run",
                     system=system, worker=str(index))


def publish_fastpath(system: str, stats) -> None:
    """Fold a run's ``FastPathStats`` counters in."""
    fp = REGISTRY.counter(
        "repro_fastpath_events_total",
        "snapshot-delta fast-path events by kind",
        labels=("system", "kind"))
    for kind in ("pages_paired", "pages_short_circuited",
                 "tuples_recycled", "matcher_calls_avoided", "memo_hits",
                 "memo_misses", "region_short_circuits", "cache_hits",
                 "cache_misses", "cache_evictions", "automata_built",
                 "automata_reused", "automata_bytes_copied",
                 "reader_index_seeks"):
        fp.labels(system=system, kind=kind).inc(
            float(getattr(stats, kind, 0) or 0))
    REGISTRY.inc("repro_fastpath_memo_seconds_saved_total",
                 max(0.0, getattr(stats, "memo_seconds_saved", 0.0)),
                 help="matcher seconds avoided via the match memo",
                 system=system)
    REGISTRY.set("repro_fastpath_memo_hit_rate", stats.memo_hit_rate,
                 help="memo hits / (hits + misses) of the latest run",
                 system=system)
    REGISTRY.set("repro_fastpath_combined_hit_rate",
                 getattr(stats, "combined_hit_rate", 0.0),
                 help="(memo + cross-snapshot cache + equal-region) hits"
                      " over all matcher-level lookups, latest run",
                 system=system)


def publish_matchcache(owner: str, cache) -> None:
    """Fold a ``CrossSnapshotMatchCache``'s counters in.

    ``owner`` labels who carries the cache across snapshots (a system
    name, or ``view:<name>`` for serve views). Lifetime totals are
    exported as gauges set from the cache's own monotone counters, so
    re-publishing after every snapshot/apply is idempotent.
    """
    counters = cache.counters()
    labels = {"owner": owner}
    REGISTRY.set("repro_matchcache_entries", counters["entries"],
                 help="entries currently held", **labels)
    REGISTRY.set("repro_matchcache_bytes", counters["bytes"],
                 help="estimated bytes currently retained", **labels)
    for kind in ("hits", "misses", "inserts", "evictions"):
        REGISTRY.set(f"repro_matchcache_{kind}_total", counters[kind],
                     help=f"lifetime {kind} of the cross-snapshot match "
                          "cache", **labels)
