"""Opt-in profiling hooks: wall/CPU per IE unit and matcher, slow pages.

A :class:`Profiler` (installed with :func:`install`) accumulates three
things while the engines run:

* per-IE-unit wall and CPU seconds (``time.process_time`` deltas), so
  the cost-based optimizer's per-unit statistics can be sanity-checked
  against what the units actually cost;
* per-matcher wall and CPU seconds, keyed on the matcher *name* —
  the Figure 13 view of where Match time goes;
* a top-K slowest-pages log (a bounded min-heap, so memory stays
  O(K) no matter how many pages stream through).

Every instrumentation site guards with ``if profile.ENABLED:`` — one
module-attribute load per site when profiling is off, the same
zero-cost pattern as :mod:`repro.check.invariants` — and the recorded
numbers never feed back into execution, so extraction output is
byte-identical with profiling on or off.

Thread-safe: the engine's thread backend calls these hooks from worker
threads; a single lock guards the dicts and the heap (only paid when
profiling is enabled). Process-pool workers profile into their own
(discarded) module globals — process-backend runs profile the
parent-side work only, matching the tracer's caveat.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Dict, List, Optional, Tuple

from .util import safe_rate

#: Master switch; sites guard with ``if profile.ENABLED:``.
ENABLED = False

#: The installed profiler (None when profiling is off).
PROFILER: Optional["Profiler"] = None

DEFAULT_TOP_K = 10


class _Acc:
    """calls / wall / cpu accumulator."""

    __slots__ = ("calls", "wall", "cpu")

    def __init__(self) -> None:
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0

    def add(self, wall: float, cpu: float) -> None:
        self.calls += 1
        self.wall += max(0.0, wall)
        self.cpu += max(0.0, cpu)

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "wall_seconds": self.wall,
                "cpu_seconds": self.cpu,
                "mean_wall_seconds": safe_rate(self.wall, self.calls)}


class Profiler:
    """Per-unit / per-matcher accounting plus a top-K slow-page heap."""

    def __init__(self, top_k: int = DEFAULT_TOP_K) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = top_k
        self._lock = threading.Lock()
        self._units: Dict[str, _Acc] = {}
        self._matchers: Dict[str, _Acc] = {}
        # Min-heap of (seconds, seq, did): the root is the *fastest*
        # retained page, so pushpop keeps exactly the K slowest.
        self._pages: List[Tuple[float, int, str]] = []
        self._seq = 0
        self.pages_seen = 0

    # -- recording hooks ---------------------------------------------------

    def record_unit(self, uid: str, wall: float, cpu: float) -> None:
        with self._lock:
            acc = self._units.get(uid)
            if acc is None:
                acc = self._units[uid] = _Acc()
            acc.add(wall, cpu)

    def record_matcher(self, name: str, wall: float, cpu: float) -> None:
        with self._lock:
            acc = self._matchers.get(name)
            if acc is None:
                acc = self._matchers[name] = _Acc()
            acc.add(wall, cpu)

    def record_page(self, did: str, seconds: float) -> None:
        with self._lock:
            self.pages_seen += 1
            self._seq += 1
            entry = (max(0.0, seconds), self._seq, did)
            if len(self._pages) < self.top_k:
                heapq.heappush(self._pages, entry)
            elif entry > self._pages[0]:
                heapq.heapreplace(self._pages, entry)

    # -- export ------------------------------------------------------------

    def slow_pages(self) -> List[Dict[str, Any]]:
        """The K slowest pages, slowest first."""
        with self._lock:
            entries = sorted(self._pages, reverse=True)
        return [{"did": did, "seconds": seconds}
                for seconds, _, did in entries]

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            units = {uid: acc.to_dict()
                     for uid, acc in sorted(self._units.items())}
            matchers = {name: acc.to_dict()
                        for name, acc in sorted(self._matchers.items())}
        return {
            "top_k": self.top_k,
            "pages_seen": self.pages_seen,
            "units": units,
            "matchers": matchers,
            "slow_pages": self.slow_pages(),
        }


# -- module-level facade ----------------------------------------------------

def install(top_k: int = DEFAULT_TOP_K) -> Profiler:
    """Install a fresh profiler and flip :data:`ENABLED` on."""
    global PROFILER, ENABLED
    PROFILER = Profiler(top_k=top_k)
    ENABLED = True
    return PROFILER


def uninstall() -> Optional[Profiler]:
    """Disable profiling; returns the profiler that was installed."""
    global PROFILER, ENABLED
    profiler, PROFILER = PROFILER, None
    ENABLED = False
    return profiler


def record_unit(uid: str, wall: float, cpu: float) -> None:
    profiler = PROFILER
    if profiler is not None:
        profiler.record_unit(uid, wall, cpu)


def record_matcher(name: str, wall: float, cpu: float) -> None:
    profiler = PROFILER
    if profiler is not None:
        profiler.record_matcher(name, wall, cpu)


def record_page(did: str, seconds: float) -> None:
    profiler = PROFILER
    if profiler is not None:
        profiler.record_page(did, seconds)
