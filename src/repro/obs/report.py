"""``repro obs report`` — render telemetry files for humans.

Takes either a ``repro run --metrics-json`` document or a
``--trace-out`` Chrome trace file and renders:

* the Figure 11 runtime decomposition table (Match / Extraction /
  Copy / Opt / IO / Others per system, plus the explicit parallel
  overlap column), and
* the slowest pages and costliest IE units / matchers, from the
  embedded profile section (metrics-json) or by aggregating spans
  (trace file).

Pure functions over plain dicts — the CLI wires files in, the tests
feed dicts directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

FIG11_COLUMNS = ("match", "extraction", "copy", "opt", "io", "others",
                 "total")


def load_document(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def document_kind(doc: Dict[str, Any]) -> str:
    """``"metrics"`` | ``"trace"`` | ``"unknown"``."""
    if "traceEvents" in doc:
        return "trace"
    if "systems" in doc:
        return "metrics"
    return "unknown"


def _table(header: Sequence[str], rows: Sequence[Sequence[str]],
           min_width: int = 6) -> str:
    widths = [max(min_width, len(h),
                  *(len(r[i]) for r in rows)) if rows else
              max(min_width, len(h))
              for i, h in enumerate(header)]
    def fmt(cells: Sequence[str]) -> str:
        first = f"{cells[0]:<{widths[0]}}"
        rest = "  ".join(f"{c:>{w}}" for c, w in
                         zip(cells[1:], widths[1:]))
        return (first + "  " + rest).rstrip()
    lines = [fmt(header)]
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def _secs(value: float) -> str:
    return f"{float(value):.3f}"


# -- metrics-json rendering -------------------------------------------------

def render_metrics_report(doc: Dict[str, Any], top: int = 10) -> str:
    """Human report from a ``--metrics-json`` document."""
    out: List[str] = []
    task = doc.get("task", "?")
    out.append(f"# obs report — task {task} "
               f"({doc.get('n_snapshots', '?')} snapshots, "
               f"{doc.get('n_pages', '?')} pages)")
    out.append("")
    out.append("## runtime decomposition (mean per reuse snapshot, "
               "seconds)")
    rows = []
    for system in sorted(doc.get("systems", {})):
        decomp = doc["systems"][system].get("mean_decomposition", {})
        overlap = _system_overlap(doc["systems"][system])
        rows.append([system] + [_secs(decomp.get(c, 0.0))
                                for c in FIG11_COLUMNS]
                    + [_secs(overlap)])
    out.append(_table(["system", *FIG11_COLUMNS, "overlap"], rows))
    profile = (doc.get("obs") or {}).get("profile")
    if profile:
        out.append("")
        out.extend(_render_profile(profile, top))
    return "\n".join(out) + "\n"


def _system_overlap(system_doc: Dict[str, Any]) -> float:
    total = 0.0
    for snap in system_doc.get("snapshots", []):
        timings = snap.get("timings", {})
        total += float(timings.get("overlap_seconds", 0.0) or 0.0)
    return total


def _render_profile(profile: Dict[str, Any], top: int) -> List[str]:
    out: List[str] = []
    slow = profile.get("slow_pages", [])[:top]
    if slow:
        out.append(f"## slowest pages (top {len(slow)} of "
                   f"{profile.get('pages_seen', '?')} seen)")
        out.append(_table(
            ["page", "seconds"],
            [[str(p.get("did", "?")), _secs(p.get("seconds", 0.0))]
             for p in slow]))
        out.append("")
    units = profile.get("units", {})
    if units:
        ranked = sorted(units.items(),
                        key=lambda kv: -kv[1].get("wall_seconds", 0.0))
        out.append(f"## costliest IE units (top {min(top, len(ranked))})")
        out.append(_table(
            ["unit", "calls", "wall_s", "cpu_s", "mean_ms"],
            [[uid, str(acc.get("calls", 0)),
              _secs(acc.get("wall_seconds", 0.0)),
              _secs(acc.get("cpu_seconds", 0.0)),
              f"{1000 * acc.get('mean_wall_seconds', 0.0):.2f}"]
             for uid, acc in ranked[:top]]))
        out.append("")
    matchers = profile.get("matchers", {})
    if matchers:
        ranked = sorted(matchers.items(),
                        key=lambda kv: -kv[1].get("wall_seconds", 0.0))
        out.append("## matcher cost")
        out.append(_table(
            ["matcher", "calls", "wall_s", "cpu_s"],
            [[name, str(acc.get("calls", 0)),
              _secs(acc.get("wall_seconds", 0.0)),
              _secs(acc.get("cpu_seconds", 0.0))]
             for name, acc in ranked[:top]]))
    while out and not out[-1]:
        out.pop()
    return out


# -- trace rendering --------------------------------------------------------

def render_trace_report(doc: Dict[str, Any], top: int = 10) -> str:
    """Human report from a Chrome ``trace_event`` document."""
    events = [e for e in doc.get("traceEvents", [])
              if e.get("ph") == "X"]
    out: List[str] = [f"# obs report — trace ({len(events)} spans)"]
    other = doc.get("otherData", {})
    if other.get("spans_dropped_by_sampling"):
        out.append(f"(sampling dropped "
                   f"{other['spans_dropped_by_sampling']} spans; "
                   f"sample={other.get('sample')})")
    out.append("")
    by_cat: Dict[str, List[float]] = {}
    for e in events:
        by_cat.setdefault(e.get("cat", "?"), []).append(
            float(e.get("dur", 0.0)) / 1e6)
    out.append("## span categories")
    rows = []
    for cat in sorted(by_cat, key=lambda c: -sum(by_cat[c])):
        durs = by_cat[cat]
        rows.append([cat, str(len(durs)), _secs(sum(durs)),
                     f"{1000 * sum(durs) / len(durs):.2f}"])
    out.append(_table(["category", "spans", "total_s", "mean_ms"], rows))
    pages = sorted((e for e in events if e.get("cat") == "page"),
                   key=lambda e: -float(e.get("dur", 0.0)))[:top]
    if pages:
        out.append("")
        out.append(f"## slowest pages (top {len(pages)})")
        out.append(_table(
            ["page", "seconds", "attrs"],
            [[str(e.get("args", {}).get("did", e.get("name", "?"))),
              _secs(float(e.get("dur", 0.0)) / 1e6),
              _brief_args(e.get("args", {}))]
             for e in pages]))
    units: Dict[str, List[float]] = {}
    for e in events:
        if e.get("cat") == "unit":
            uid = str(e.get("args", {}).get("uid", e.get("name", "?")))
            units.setdefault(uid, []).append(
                float(e.get("dur", 0.0)) / 1e6)
    if units:
        out.append("")
        ranked = sorted(units.items(), key=lambda kv: -sum(kv[1]))
        out.append(f"## costliest IE units (top {min(top, len(ranked))})")
        out.append(_table(
            ["unit", "spans", "total_s"],
            [[uid, str(len(durs)), _secs(sum(durs))]
             for uid, durs in ranked[:top]]))
    return "\n".join(out) + "\n"


def _brief_args(args: Dict[str, Any]) -> str:
    keep = {k: v for k, v in args.items() if k != "did"}
    if not keep:
        return ""
    return ",".join(f"{k}={v}" for k, v in sorted(keep.items())[:4])


def render_report(doc: Dict[str, Any], top: int = 10) -> str:
    """Dispatch on document shape."""
    kind = document_kind(doc)
    if kind == "trace":
        return render_trace_report(doc, top=top)
    if kind == "metrics":
        return render_metrics_report(doc, top=top)
    raise ValueError(
        "unrecognized document: expected a `repro run --metrics-json` "
        "file (has 'systems') or a `--trace-out` Chrome trace "
        "(has 'traceEvents')")
