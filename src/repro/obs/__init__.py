"""repro.obs — unified observability: metrics, tracing, profiling.

The measurement substrate for everything the paper's evaluation (and
the ROADMAP's production north star) needs to *see*:

* :mod:`.registry` — a process-wide metrics registry (counters,
  gauges, fixed-bucket histograms, optional labels) that the timing
  decomposition, the execution runtime, the fast-path layer, and the
  serving stack all publish into; exported as Prometheus text
  (``repro serve`` → ``/metrics?format=prometheus``) and as a JSON
  superset (``repro run --metrics-json``).
* :mod:`.trace` — hierarchical span tracing (snapshot → batch → page
  → IE unit) with sampling, a bounded ring buffer, per-span attribute
  bags, and Chrome ``trace_event`` export (``repro run --trace-out``).
* :mod:`.profile` — opt-in per-IE-unit and per-matcher wall/CPU
  accounting plus a top-K slowest-pages log (``repro run --profile``).
* :mod:`.report` — ``repro obs report``: render the Figure 11
  decomposition table and the slowest pages/units from a metrics-json
  or trace file.
* :mod:`.util` — :func:`~repro.obs.util.safe_rate`, the shared guard
  every derived rate (pages/sec, qps, hit rates, utilization) routes
  through so zero/empty denominators yield 0.0 instead of raising or
  emitting ``nan``.

Zero-cost contract (the :mod:`repro.check.invariants` pattern): every
instrumentation site guards on one module attribute
(``registry.ENABLED`` / ``trace.ENABLED`` / ``profile.ENABLED``), all
off by default; none of the recorded numbers feed back into
execution, so extraction output is byte-identical with observability
on or off (pinned by the obs test suite via the same canonical-result
comparison the ``repro.check`` oracle uses).
"""

from . import profile, registry, trace
from .registry import REGISTRY, MetricsRegistry
from .util import safe_rate

__all__ = [
    "registry",
    "trace",
    "profile",
    "REGISTRY",
    "MetricsRegistry",
    "safe_rate",
]


def disable_all() -> None:
    """Switch every obs layer off (test/CLI cleanup)."""
    registry.disable()
    trace.uninstall()
    profile.uninstall()
