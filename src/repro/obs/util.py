"""Shared numeric guards for derived telemetry.

Every rate, ratio, and utilization the telemetry layers derive
(pages/sec, qps, memo hit-rate, worker utilization, histogram means)
routes through :func:`safe_rate` so a zero or degenerate denominator —
an instant run, an empty counter, a clock that has not advanced —
yields ``0.0`` instead of raising ``ZeroDivisionError`` or leaking
``nan``/``inf`` into ``/metrics`` and the Prometheus exposition.

This module is dependency-free on purpose: the runtime, fast-path,
and serving layers all import it, so anything heavier would be a
package cycle.
"""

from __future__ import annotations

import math

__all__ = ["safe_rate", "finite_or_zero"]


def safe_rate(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with degenerate inputs mapped to 0.0.

    Returns 0.0 when the denominator is zero, negative, ``nan``, or
    infinite, and when the quotient itself is not finite. Never raises.
    """
    try:
        if denominator is None or not math.isfinite(denominator):
            return 0.0
        if denominator <= 0:
            return 0.0
        value = numerator / denominator
    except (TypeError, ZeroDivisionError):
        return 0.0
    return value if math.isfinite(value) else 0.0


def finite_or_zero(value: float) -> float:
    """``value`` if it is a finite number, else 0.0 (never nan/inf)."""
    try:
        return value if math.isfinite(value) else 0.0
    except TypeError:
        return 0.0
