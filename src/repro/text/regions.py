"""Matched-region bookkeeping shared by matchers and the reuse engine.

A ``MatchSegment`` witnesses that a stretch of the current page equals a
stretch of the previous page. Matchers produce them; the reuse engine
turns a p-disjoint subset into copy zones and extraction regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .span import Interval


@dataclass(frozen=True, slots=True)
class MatchSegment:
    """Equal text: ``p[p_start : p_start+length] == q[q_start : q_start+length]``.

    ``q_itid`` ties the match back to the input tuple (recorded region of
    q) it was found in, so copied mentions can be joined to the right
    output tuples in the reuse file.
    """

    p_start: int
    q_start: int
    length: int
    q_itid: int = -1

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("match length must be >= 0")

    @property
    def p_interval(self) -> Interval:
        return Interval(self.p_start, self.p_start + self.length)

    @property
    def q_interval(self) -> Interval:
        return Interval(self.q_start, self.q_start + self.length)

    @property
    def shift(self) -> int:
        """Offset to add to q positions to land on p positions."""
        return self.p_start - self.q_start

    def trim_to_p(self, bound: Interval) -> Optional["MatchSegment"]:
        """Restrict the match so its p side lies inside ``bound``."""
        got = self.p_interval.intersect(bound)
        if got is None:
            return None
        delta = got.start - self.p_start
        return MatchSegment(got.start, self.q_start + delta, len(got),
                            self.q_itid)

    def trim_to_q(self, bound: Interval) -> Optional["MatchSegment"]:
        """Restrict the match so its q side lies inside ``bound``."""
        got = self.q_interval.intersect(bound)
        if got is None:
            return None
        delta = got.start - self.q_start
        return MatchSegment(self.p_start + delta, got.start, len(got),
                            self.q_itid)

    def verify(self, p_text: str, q_text: str) -> bool:
        """Debug helper: check the equal-text witness actually holds."""
        return (p_text[self.p_start:self.p_start + self.length]
                == q_text[self.q_start:self.q_start + self.length])


def select_p_disjoint(segments: Iterable[MatchSegment]) -> List[MatchSegment]:
    """Pick a subset of matches that is disjoint on the p side.

    Greedy by decreasing length (longest matches keep the most reuse),
    trimming later matches around already-claimed p intervals instead of
    discarding them outright. The result is sorted by ``p_start``.
    """
    chosen: List[MatchSegment] = []
    claimed: List[Interval] = []
    for seg in sorted(segments, key=lambda s: (-s.length, s.p_start)):
        if seg.length == 0:
            continue
        pieces = [seg]
        for iv in claimed:
            next_pieces: List[MatchSegment] = []
            for piece in pieces:
                next_pieces.extend(_subtract_p(piece, iv))
            pieces = next_pieces
            if not pieces:
                break
        for piece in pieces:
            if piece.length > 0:
                chosen.append(piece)
                claimed.append(piece.p_interval)
    chosen.sort(key=lambda s: s.p_start)
    return chosen


def _subtract_p(seg: MatchSegment, iv: Interval) -> List[MatchSegment]:
    """Remove interval ``iv`` from the p side of ``seg``."""
    p = seg.p_interval
    if not p.overlaps(iv):
        return [seg]
    out: List[MatchSegment] = []
    if p.start < iv.start:
        out.append(MatchSegment(p.start, seg.q_start, iv.start - p.start,
                                seg.q_itid))
    if iv.end < p.end:
        delta = iv.end - p.start
        out.append(MatchSegment(iv.end, seg.q_start + delta, p.end - iv.end,
                                seg.q_itid))
    return out
