"""Half-open character intervals and text spans.

Everything in Delex is positioned by character offsets inside a page.
``Interval`` is a bare ``[start, end)`` range; ``Span`` ties an interval
to a document id so that mentions can be copied between snapshots by
shifting offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open character interval ``[start, end)``.

    Empty intervals (``start == end``) are permitted; ``start > end`` is
    rejected at construction time.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} > end {self.end}")
        if self.start < 0:
            raise ValueError(f"interval start {self.start} < 0")

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def length(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.start == self.end

    def contains(self, other: "Interval") -> bool:
        """True iff ``other`` lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def contains_point(self, pos: int) -> bool:
        return self.start <= pos < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one position."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The common sub-interval, or None when disjoint.

        Touching intervals (``a.end == b.start``) intersect in the empty
        set and return None.
        """
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return Interval(lo, hi)

    def shift(self, delta: int) -> "Interval":
        """Translate by ``delta`` characters."""
        return Interval(self.start + delta, self.end + delta)

    def expand(self, left: int, right: Optional[int] = None) -> "Interval":
        """Grow by ``left`` chars on the left and ``right`` on the right.

        ``right`` defaults to ``left``. The left edge is clamped at 0.
        """
        if right is None:
            right = left
        return Interval(max(0, self.start - left), self.end + right)

    def clip(self, bound: "Interval") -> Optional["Interval"]:
        """Clip to ``bound``; None if nothing remains."""
        return self.intersect(bound)


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union a collection of intervals into sorted disjoint intervals.

    Touching intervals are merged. Empty intervals are dropped.
    """
    items = sorted(i for i in intervals if not i.is_empty())
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(iv)
    return merged


def complement_intervals(
    intervals: Iterable[Interval], within: Interval
) -> List[Interval]:
    """Intervals of ``within`` not covered by ``intervals`` (sorted)."""
    covered = [
        c for c in (iv.intersect(within) for iv in merge_intervals(intervals))
        if c is not None
    ]
    gaps: List[Interval] = []
    cursor = within.start
    for iv in covered:
        if iv.start > cursor:
            gaps.append(Interval(cursor, iv.start))
        cursor = max(cursor, iv.end)
    if cursor < within.end:
        gaps.append(Interval(cursor, within.end))
    return gaps


def intersect_interval_sets(
    left: Iterable[Interval], right: Iterable[Interval]
) -> List[Interval]:
    """Pairwise intersection of two disjoint sorted interval sets."""
    a = merge_intervals(left)
    b = merge_intervals(right)
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        got = a[i].intersect(b[j])
        if got is not None:
            out.append(got)
        if a[i].end <= b[j].end:
            i += 1
        else:
            j += 1
    return out


def total_length(intervals: Iterable[Interval]) -> int:
    """Total number of characters covered (after merging overlaps)."""
    return sum(len(iv) for iv in merge_intervals(intervals))


@dataclass(frozen=True, order=True)
class Span:
    """An interval anchored in a document (by document id)."""

    did: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"span start {self.start} > end {self.end}")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start

    def text_of(self, page_text: str) -> str:
        """Materialize this span against its page's text."""
        return page_text[self.start:self.end]

    def shift(self, delta: int, did: Optional[str] = None) -> "Span":
        """Translate offsets; optionally re-anchor to another document."""
        return Span(self.did if did is None else did,
                    self.start + delta, self.end + delta)

    def contains(self, other: "Span") -> bool:
        return (self.did == other.did
                and self.start <= other.start and other.end <= self.end)


def span_sort_key(span: Span) -> Tuple[str, int, int]:
    return (span.did, span.start, span.end)
