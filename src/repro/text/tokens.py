"""Token interning for the matcher kernels.

The vectorized matcher kernels (:mod:`repro.matchers.st`,
:mod:`repro.matchers.ud`, :mod:`repro.matchers.ws`) operate on numpy
integer arrays instead of Python strings. This module owns the two
pieces they share:

* **numpy detection** — the kernels are an optional acceleration; when
  numpy is missing (or disabled via ``REPRO_PURE_PYTHON=1`` /
  :func:`set_numpy_enabled`), every matcher silently uses its pure
  Python path, which is parity-pinned byte-identical to the kernels.

* **:class:`TokenCache`** — interns page text into int arrays *once
  per page pair*. Matching one p-region against many q candidates (and
  the same regions across sibling units) would otherwise re-encode the
  same text per call; the cache holds the UTF-32 code-point array per
  page text plus the per-(region, k) sorted k-gram index the ST kernel
  probes, so repeated calls touch only array views.

The CRC-32 table here exists so the WS kernel can reproduce
``zlib.crc32`` *bit-exactly* with vectorized table lookups — the
winnowing fingerprints must not change between the kernel and the pure
path, or fingerprint picks (and hence WS segments) would differ.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

try:  # optional acceleration; every caller has a pure-Python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_numpy_enabled
    _np = None

#: Tri-state override: None = auto-detect, True/False = forced.
_FORCED: Optional[bool] = None
if os.environ.get("REPRO_PURE_PYTHON", "").strip() in ("1", "true", "yes"):
    _FORCED = False


def set_numpy_enabled(flag: Optional[bool]) -> None:
    """Force the kernels' numpy path on/off (``None`` = auto-detect).

    Tests use this to pin kernel/fallback parity without uninstalling
    numpy; ``REPRO_PURE_PYTHON=1`` in the environment has the same
    effect for whole runs (e.g. a CI parity axis).
    """
    global _FORCED
    _FORCED = flag


def numpy_enabled() -> bool:
    """Is the vectorized kernel path available and allowed?"""
    if _FORCED is not None:
        return _FORCED and _np is not None
    return _np is not None


def get_numpy():
    """The numpy module when enabled, else None."""
    return _np if numpy_enabled() else None


# -- CRC-32 (zlib-compatible), table form for vectorized k-gram hashes ----

def _build_crc_table() -> List[int]:
    table = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ (0xEDB88320 if c & 1 else 0)
        table.append(c)
    return table


#: The standard reflected CRC-32 table (polynomial 0xEDB88320): the
#: same table zlib uses, so the vectorized k-gram hashes below equal
#: ``zlib.crc32`` on every k-gram.
CRC32_TABLE = _build_crc_table()

_CRC_TABLE_NP = None


def crc32_kgrams(data: bytes, k: int, np) -> "object":
    """``zlib.crc32`` of every k-gram of ``data``, vectorized.

    Returns a uint32 array of length ``len(data) - k + 1``. Exactness
    (not just distribution) matters: WS winnowing picks window minima
    of these hashes, so one differing bit changes the fingerprint set.
    """
    global _CRC_TABLE_NP
    if _CRC_TABLE_NP is None:
        _CRC_TABLE_NP = np.array(CRC32_TABLE, dtype=np.uint32)
    b = np.frombuffer(data, dtype=np.uint8)
    n = len(b) - k + 1
    c = np.full(n, 0xFFFFFFFF, dtype=np.uint32)
    for j in range(k):
        c = (c >> np.uint32(8)) ^ _CRC_TABLE_NP[(c ^ b[j:j + n])
                                                & np.uint32(0xFF)]
    return c ^ np.uint32(0xFFFFFFFF)


#: Rolling-hash base for ST k-gram filtering (odd => invertible mod
#: 2^64; collisions are filtered by exact char verification, so the
#: constant affects speed only, never results).
ST_HASH_BASE = 1099511628211


def chars_u64(text: str, np) -> "object":
    """The text's code points as a uint64 array (UTF-32 reinterpret)."""
    return np.frombuffer(text.encode("utf-32-le"),
                         dtype="<u4").astype(np.uint64)


def kgram_hashes(arr: "object", k: int, np) -> "object":
    """Polynomial rolling hashes of every k-gram of a uint64 array.

    Computed by binary doubling — ``h(x || y) = h(x) * B^|y| + h(y)``
    lets width-2w hashes come from two width-w passes — so a k-gram
    hash costs O(log k) vector passes instead of k. The values are
    bit-identical to the one-character-at-a-time recurrence
    ``h = h * B + c`` (mod 2^64), which is what the k = 1 base case
    is: ST's ``min_length`` can reach 32, where the linear form costs
    real time on the hot match path.
    """
    n = int(arr.shape[0])
    if n < k:
        return arr[:0]
    mod = 1 << 64
    pieces = []  # (width, hashes) for each set bit of k, LSB first
    w, hw = 1, arr
    rem = k
    while True:
        if rem & 1:
            pieces.append((w, hw))
        rem >>= 1
        if not rem:
            break
        step = np.uint64(pow(ST_HASH_BASE, w, mod))
        hw = hw[: hw.shape[0] - w] * step + hw[w:]
        w *= 2
    m = n - k + 1
    out = None
    width = 0
    for w, hw in reversed(pieces):  # widest chunk is leftmost
        if out is None:
            out = hw[:m].astype(np.uint64, copy=True)
        else:
            out *= np.uint64(pow(ST_HASH_BASE, w, mod))
            out += hw[width: width + m]
        width += w
    return out


class TokenCache:
    """Per-page-pair interning of page text into kernel arrays.

    Lifetime mirrors :class:`repro.fastpath.memo.AutomatonCache`: the
    reuse engine creates one per (p, q) page pair, so entries are
    keyed by text *identity* plus region bounds and never need
    invalidation. Holding at most a handful of texts (p and q) keeps
    the linear identity scan trivially cheap.
    """

    __slots__ = ("_texts",)

    #: Entries kept per cache; a page pair touches two texts.
    MAX_TEXTS = 4

    def __init__(self) -> None:
        # [(text, chars_u64 or None, {(start, end): bytes},
        #   {(start, end, k): st_index})]
        self._texts: List[list] = []

    def _entry(self, text: str) -> list:
        for entry in self._texts:
            if entry[0] is text:
                return entry
        entry = [text, None, {}, {}]
        self._texts.append(entry)
        if len(self._texts) > self.MAX_TEXTS:
            self._texts.pop(0)
        return entry

    def chars(self, text: str) -> Optional["object"]:
        """The page's uint64 code-point array, built once per text."""
        np = get_numpy()
        if np is None:
            return None
        entry = self._entry(text)
        if entry[1] is None:
            entry[1] = chars_u64(text, np)
        return entry[1]

    def utf8(self, text: str, start: int, end: int) -> bytes:
        """UTF-8 bytes of a region, built once per (text, region)."""
        entry = self._entry(text)
        key = (start, end)
        data = entry[2].get(key)
        if data is None:
            data = text[start:end].encode("utf-8", "ignore")
            entry[2][key] = data
        return data

    def st_index(self, text: str, start: int, end: int, k: int
                 ) -> Optional[Tuple["object", "object", "object",
                                     "object"]]:
        """The ST kernel's q-side k-gram index for one region.

        Returns ``(region_chars, sorted_hashes, sort_order,
        run_end)`` — the batched per-q-region structure probed by
        every candidate-set member, built once per (region, k) and
        reused across input rows and sibling units within the page
        pair. ``run_end[i]`` is the end of ``sorted_hashes``'s
        equal-value run containing ``i``; precomputing it here lets
        each kernel call make do with a single binary search instead
        of a left/right pair.
        """
        np = get_numpy()
        if np is None:
            return None
        arr = self.chars(text)
        if arr is None or end - start < k:
            return None
        entry = self._entry(text)
        key = (start, end, k)
        index = entry[3].get(key)
        if index is None:
            region = arr[start:end]
            hashes = kgram_hashes(region, k, np)
            order = np.argsort(hashes, kind="stable")
            hashes = hashes[order]
            run_end = np.searchsorted(hashes, hashes, side="right")
            index = (region, hashes, order, run_end)
            entry[3][key] = index
        return index

    def __len__(self) -> int:
        return len(self._texts)
