"""Pages: the unit of crawling, extraction, and matching.

A page is an immutable piece of text retrieved from a URL at some
snapshot. Pages at the same URL across consecutive snapshots are the
candidates for IE-result reuse (Section 5.1 of the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .span import Interval, Span


def content_digest(text: str) -> str:
    """Stable content hash used by the Shortcut baseline to detect
    byte-identical pages across snapshots."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Page:
    """One retrieved data page.

    Attributes:
        did: document id, unique within a snapshot. Delex matches pages
            across snapshots by URL, so we use the URL itself as the id.
        url: source URL.
        text: full page text.
    """

    did: str
    url: str
    text: str
    digest: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.digest:
            object.__setattr__(self, "digest", content_digest(self.text))

    @classmethod
    def from_url(cls, url: str, text: str) -> "Page":
        return cls(did=url, url=url, text=text)

    def __len__(self) -> int:
        return len(self.text)

    @property
    def whole(self) -> Interval:
        """The interval covering the full page."""
        return Interval(0, len(self.text))

    def whole_span(self) -> Span:
        return Span(self.did, 0, len(self.text))

    def region_text(self, interval: Interval) -> str:
        return self.text[interval.start:interval.end]

    def identical_to(self, other: "Page") -> bool:
        """Byte-identical content (digest plus equality double-check)."""
        return self.digest == other.digest and self.text == other.text
