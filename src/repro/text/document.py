"""Pages: the unit of crawling, extraction, and matching.

A page is an immutable piece of text retrieved from a URL at some
snapshot. Pages at the same URL across consecutive snapshots are the
candidates for IE-result reuse (Section 5.1 of the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .span import Interval, Span


def content_digest(text: str) -> str:
    """Stable content hash used by the Shortcut baseline to detect
    byte-identical pages across snapshots."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def content_fingerprint(text: str) -> str:
    """Fast-path page fingerprint: blake2b-128 over the UTF-8 text.

    Persisted in snapshot page headers (``"fp"``) so fingerprint-equal
    page pairs can short-circuit to a whole-page identity match
    without re-hashing (see :mod:`repro.fastpath`). blake2b with a
    16-byte digest is both faster than sha1 and collision-resistant
    enough that equality plus one text comparison is a safe identity
    witness.
    """
    return hashlib.blake2b(text.encode("utf-8"),
                           digest_size=16).hexdigest()


@dataclass(frozen=True)
class Page:
    """One retrieved data page.

    Attributes:
        did: document id, unique within a snapshot. Delex matches pages
            across snapshots by URL, so we use the URL itself as the id.
        url: source URL.
        text: full page text.
    """

    did: str
    url: str
    text: str
    digest: str = field(default="", compare=False)
    fp: str = field(default="", compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.digest:
            object.__setattr__(self, "digest", content_digest(self.text))

    @property
    def fingerprint(self) -> str:
        """The page's blake2 content fingerprint, computed lazily.

        Pages loaded from a snapshot file carry the persisted value;
        freshly built pages compute and cache it on first use, so
        systems that never consult fingerprints pay nothing.
        """
        if not self.fp:
            object.__setattr__(self, "fp", content_fingerprint(self.text))
        return self.fp

    @classmethod
    def from_url(cls, url: str, text: str) -> "Page":
        return cls(did=url, url=url, text=text)

    def __len__(self) -> int:
        return len(self.text)

    @property
    def whole(self) -> Interval:
        """The interval covering the full page."""
        return Interval(0, len(self.text))

    def whole_span(self) -> Span:
        return Span(self.did, 0, len(self.text))

    def region_text(self, interval: Interval) -> str:
        return self.text[interval.start:interval.end]

    def identical_to(self, other: "Page") -> bool:
        """Byte-identical content (digest plus equality double-check)."""
        return self.digest == other.digest and self.text == other.text
