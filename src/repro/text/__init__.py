"""Text substrate: intervals, spans, pages, matched regions."""

from .document import Page, content_digest
from .regions import MatchSegment, select_p_disjoint
from .span import (
    Interval,
    Span,
    complement_intervals,
    intersect_interval_sets,
    merge_intervals,
    total_length,
)

__all__ = [
    "Interval",
    "Span",
    "Page",
    "MatchSegment",
    "content_digest",
    "merge_intervals",
    "complement_intervals",
    "intersect_interval_sets",
    "total_length",
    "select_p_disjoint",
]
