"""Execution plans: operators, xlog compiler, IE units and chains."""

from .compile import CompiledPlan, CompileError, compile_program
from .operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    evaluate_plain,
)
from .units import IEChain, IEUnit, find_units, partition_chains, producer_unit

__all__ = [
    "Node",
    "ScanNode",
    "IENode",
    "SelectNode",
    "ProjectNode",
    "JoinNode",
    "UnionNode",
    "TupleRow",
    "evaluate_plain",
    "compile_program",
    "CompiledPlan",
    "CompileError",
    "IEUnit",
    "IEChain",
    "find_units",
    "partition_chains",
    "producer_unit",
]
