"""Execution-plan nodes and plain (no-reuse) evaluation.

A compiled plan is a DAG of operator nodes evaluated one page at a
time. Tuples are dicts mapping variable names to values — spans
(:class:`~repro.text.span.Span`, absolute page offsets) or scalars.
Common subtrees are shared across rules (the compiler does CSE), so
evaluation memoizes node outputs per page.

The reuse engine replaces the evaluation of IE-unit tops with its own
capture/reuse logic; everything else runs through
:func:`evaluate_plain` semantics.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..extractors.base import Extraction, Extractor, RelSpan
from ..text.span import Span
from ..xlog.ast import Term, Var
from ..xlog.registry import EvalContext, PFunctionEntry

TupleRow = Dict[str, object]


class Node:
    """Base class of plan nodes. Nodes are immutable once built."""

    def __init__(self, children: Sequence["Node"]) -> None:
        self.children: Tuple[Node, ...] = tuple(children)
        self.out_vars: frozenset = frozenset()
        self._signature: Optional[str] = None

    def _sig_body(self) -> str:
        raise NotImplementedError

    @property
    def signature(self) -> str:
        """Canonical structural key (used for CSE and stable unit ids)."""
        if self._signature is None:
            inner = ",".join(c.signature for c in self.children)
            self._signature = f"{self._sig_body()}[{inner}]"
        return self._signature

    @property
    def short_id(self) -> str:
        return hashlib.sha1(self.signature.encode()).hexdigest()[:10]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._sig_body()})"


class ScanNode(Node):
    """``docs(d)`` — emits one tuple binding ``var`` to the whole page."""

    def __init__(self, var: str) -> None:
        super().__init__(())
        self.var = var
        self.out_vars = frozenset([var])

    def _sig_body(self) -> str:
        return f"scan:{self.var}"


class IENode(Node):
    """An IE predicate application: run ``extractor`` on the region
    bound to ``in_var`` and extend tuples with its outputs.

    ``out_args`` are the program-level variable names, positionally
    aligned with ``extractor.output_vars``.
    """

    def __init__(self, child: Node, extractor: Extractor, in_var: str,
                 out_args: Sequence[str]) -> None:
        super().__init__((child,))
        if len(out_args) != len(extractor.output_vars):
            raise ValueError(
                f"{extractor.name}: expected {len(extractor.output_vars)} "
                f"output arguments, got {len(out_args)}")
        self.extractor = extractor
        self.in_var = in_var
        self.out_args = tuple(out_args)
        self.out_vars = child.out_vars | frozenset(out_args)
        self._rename = dict(zip(extractor.output_vars, out_args))

    @property
    def child(self) -> Node:
        return self.children[0]

    def span_out_args(self) -> Tuple[str, ...]:
        """Output argument names carrying spans (vs scalars)."""
        scalars = set(getattr(self.extractor, "scalars", ()) or ())
        return tuple(self._rename[v] for v in self.extractor.output_vars
                     if v not in scalars)

    def extension_fields(self, extraction: Extraction,
                         region: Span) -> Dict[str, object]:
        """Convert one extraction into absolute-offset tuple fields."""
        fields: Dict[str, object] = {}
        for var, value in extraction.fields:
            name = self._rename[var]
            if isinstance(value, RelSpan):
                fields[name] = Span(region.did, region.start + value.start,
                                    region.start + value.end)
            else:
                fields[name] = value
        return fields

    def _sig_body(self) -> str:
        return (f"ie:{self.extractor.name}:{self.in_var}"
                f"->{','.join(self.out_args)}")


class SelectNode(Node):
    """A p-function selection σ."""

    def __init__(self, child: Node, entry: PFunctionEntry,
                 args: Sequence[Term]) -> None:
        super().__init__((child,))
        self.entry = entry
        self.args = tuple(args)
        self.out_vars = child.out_vars

    @property
    def child(self) -> Node:
        return self.children[0]

    def arg_vars(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.args if isinstance(a, Var))

    def passes(self, row: TupleRow, ctx: EvalContext) -> bool:
        values = [row[a.name] if isinstance(a, Var) else a for a in self.args]
        return bool(self.entry.func(ctx, *values))

    def _sig_body(self) -> str:
        inner = ",".join(
            a.name if isinstance(a, Var) else repr(a) for a in self.args)
        return f"select:{self.entry.name}({inner})"


class ProjectNode(Node):
    """A projection π, optionally renaming (for derived-atom use)."""

    def __init__(self, child: Node,
                 mappings: Sequence[Tuple[str, str]]) -> None:
        super().__init__((child,))
        self.mappings = tuple(mappings)  # (out_name, in_name)
        self.out_vars = frozenset(out for out, _ in self.mappings)
        missing = [src for _, src in self.mappings
                   if src not in child.out_vars]
        if missing:
            raise ValueError(f"projection sources {missing} not available "
                             f"from {sorted(child.out_vars)}")

    @property
    def child(self) -> Node:
        return self.children[0]

    def is_rename_free(self) -> bool:
        return all(out == src for out, src in self.mappings)

    def apply(self, row: TupleRow) -> TupleRow:
        return {out: row[src] for out, src in self.mappings}

    def _sig_body(self) -> str:
        inner = ",".join(f"{o}<-{s}" for o, s in self.mappings)
        return f"project:{inner}"


class UnionNode(Node):
    """Set union of same-schema subplans (multiple rules, one head)."""

    def __init__(self, children: Sequence[Node]) -> None:
        if len(children) < 2:
            raise ValueError("union needs at least two branches")
        super().__init__(children)
        schema = children[0].out_vars
        for child in children[1:]:
            if child.out_vars != schema:
                raise ValueError(
                    f"union branches disagree on schema: "
                    f"{sorted(schema)} vs {sorted(child.out_vars)}")
        self.out_vars = schema

    def _sig_body(self) -> str:
        return "union"


class JoinNode(Node):
    """Natural join of two subplans on their shared variables."""

    def __init__(self, left: Node, right: Node) -> None:
        super().__init__((left, right))
        self.on = tuple(sorted(left.out_vars & right.out_vars))
        self.out_vars = left.out_vars | right.out_vars

    @property
    def left(self) -> Node:
        return self.children[0]

    @property
    def right(self) -> Node:
        return self.children[1]

    def _sig_body(self) -> str:
        return f"join:{','.join(self.on)}"


def canonical_row_key(row: TupleRow) -> str:
    """Total, input-order-independent sort key for one tuple.

    The key is the ``repr`` of the row's (var, value) pairs sorted by
    variable name. Variable names are unique within a row, so values
    (spans, scalars, mixed types) are never compared against each
    other, and ``repr`` of spans/scalars is process-independent — two
    distinct rows can never collide, which is the documented tie-break:
    there are no ties.
    """
    return repr(tuple(sorted(row.items())))


def hash_join(left_rows: List[TupleRow], right_rows: List[TupleRow],
              on: Sequence[str]) -> List[TupleRow]:
    """Hash join on equality of the ``on`` variables.

    Output order is canonical (sorted by :func:`canonical_row_key`),
    so reordering either input reorders nothing downstream — the
    property the delta-vs-batch byte-stability comparisons rely on.
    Duplicate joined rows (legitimate multiplicities) are preserved.
    """
    if not on:
        out = [{**l, **r} for l in left_rows for r in right_rows]
        out.sort(key=canonical_row_key)
        return out
    buckets: Dict[Tuple, List[TupleRow]] = {}
    for row in left_rows:
        buckets.setdefault(tuple(row[v] for v in on), []).append(row)
    out = []
    for row in right_rows:
        for match in buckets.get(tuple(row[v] for v in on), ()):
            out.append({**match, **row})
    out.sort(key=canonical_row_key)
    return out


def dedupe_rows(rows: List[TupleRow]) -> List[TupleRow]:
    """Remove duplicate tuples; output in canonical sorted order.

    Sorting by :func:`canonical_row_key` (instead of the historical
    first-seen order) makes the result independent of input order —
    required for delta-applied and batch-recomputed plans to agree
    byte-for-byte, not just as sets.
    """
    by_key: Dict[Tuple, TupleRow] = {}
    for row in rows:
        key = tuple(sorted(row.items()))
        if key not in by_key:
            by_key[key] = row
    return [by_key[key] for key in sorted(by_key, key=repr)]


# -- plain evaluation --------------------------------------------------------

UnitHandler = Callable[[Node, List[TupleRow]], List[TupleRow]]


def evaluate_plain(node: Node, page_text: str, did: str,
                   memo: Dict[int, List[TupleRow]]) -> List[TupleRow]:
    """Evaluate a plan node on one page with no reuse.

    ``memo`` caches node outputs by ``id(node)`` for DAG sharing; pass a
    fresh dict per page.
    """
    key = id(node)
    if key in memo:
        return memo[key]
    ctx = EvalContext(page_text, did)
    if isinstance(node, ScanNode):
        rows: List[TupleRow] = [{node.var: Span(did, 0, len(page_text))}]
    elif isinstance(node, IENode):
        rows = []
        child_rows = evaluate_plain(node.child, page_text, did, memo)
        for row in child_rows:
            region = row[node.in_var]
            if not isinstance(region, Span):
                raise TypeError(
                    f"{node.extractor.name}: input {node.in_var!r} is not "
                    "a span")
            text = page_text[region.start:region.end]
            for extraction in node.extractor.extract(text):
                rows.append({**row, **node.extension_fields(extraction,
                                                            region)})
    elif isinstance(node, SelectNode):
        child_rows = evaluate_plain(node.child, page_text, did, memo)
        rows = [r for r in child_rows if node.passes(r, ctx)]
    elif isinstance(node, ProjectNode):
        child_rows = evaluate_plain(node.child, page_text, did, memo)
        rows = dedupe_rows([node.apply(r) for r in child_rows])
    elif isinstance(node, JoinNode):
        left_rows = evaluate_plain(node.left, page_text, did, memo)
        right_rows = evaluate_plain(node.right, page_text, did, memo)
        rows = hash_join(left_rows, right_rows, node.on)
    elif isinstance(node, UnionNode):
        rows = dedupe_rows([row for child in node.children
                            for row in evaluate_plain(child, page_text,
                                                      did, memo)])
    else:
        raise TypeError(f"unknown node type {type(node).__name__}")
    memo[key] = rows
    return rows
