"""Translate xlog programs into executable plan DAGs.

The compiler mirrors the translation of Shen et al. (VLDB-07) that the
paper relies on: body atoms become a left-deep mix of scans, IE nodes,
selections, and joins, with two IE-centric policies:

* **selections are pushed down** to the earliest point where their
  arguments are bound — which is what lets σ's be absorbed into IE
  units (Section 4, "reuse at the level of IE units");
* **common subplans are shared across rules** (structural CSE), so a
  program whose rules all start with the same segmenter executes — and
  captures reuse data for — that segmenter exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..xlog.ast import Atom, Program, Rule, Var
from ..xlog.registry import Registry
from ..xlog.validation import validate_program
from .operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    UnionNode,
)


class CompileError(ValueError):
    """Raised when a validated program still cannot be planned."""


@dataclass
class _Branch:
    """A partial subplan and the variables it binds."""

    node: Node

    @property
    def bound(self) -> frozenset:
        return self.node.out_vars


class _Compiler:
    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self._cse: Dict[str, Node] = {}
        self.roots: Dict[str, Node] = {}

    def _shared(self, node: Node) -> Node:
        return self._cse.setdefault(node.signature, node)

    def compile_rule(self, rule: Rule) -> Node:
        branches: List[_Branch] = []
        pending: List[Atom] = list(rule.body)
        # Place atoms in body order; p-functions wait until bound.
        deferred: List[Atom] = []
        while pending or deferred:
            progressed = False
            for atom in list(deferred):
                if self._try_function(atom, branches):
                    deferred.remove(atom)
                    progressed = True
            if pending:
                atom = pending.pop(0)
                kind = self.registry.kind_of(atom.pred)
                if kind is None and atom.pred in self.roots:
                    kind = "derived"
                if kind == "docs":
                    scan = self._shared(ScanNode(atom.args[0].name))
                    branches.append(_Branch(scan))
                elif kind == "ie":
                    self._add_ie(atom, branches)
                elif kind == "derived":
                    self._add_derived(atom, branches)
                elif kind == "function":
                    if not self._try_function(atom, branches):
                        deferred.append(atom)
                else:
                    raise CompileError(f"unknown predicate {atom.pred!r}")
                progressed = True
            if not progressed:
                raise CompileError(
                    f"cannot bind arguments of {deferred[0]} in rule {rule}")
        top = self._join_all(branches, rule)
        head_vars = [t.name for t in rule.head.args if isinstance(t, Var)]
        project = self._shared(
            ProjectNode(top, [(v, v) for v in head_vars]))
        return project

    def _add_ie(self, atom: Atom, branches: List[_Branch]) -> None:
        extractor = self.registry.extractor(atom.pred)
        in_var = atom.args[0].name
        out_args = [t.name for t in atom.args[1:]]  # validated as Vars
        branch = self._branch_binding(branches, [in_var])
        if branch is None:
            raise CompileError(
                f"input {in_var!r} of {atom.pred!r} is not bound")
        node = self._shared(IENode(branch.node, extractor, in_var, out_args))
        branch.node = node

    def _add_derived(self, atom: Atom, branches: List[_Branch]) -> None:
        root = self.roots[atom.pred]
        arg_names = [t.name for t in atom.args if isinstance(t, Var)]
        head_order = sorted(root.out_vars)
        if isinstance(root, ProjectNode):
            head_order = [out for out, _ in root.mappings]
        elif isinstance(root, UnionNode) and \
                isinstance(root.children[0], ProjectNode):
            head_order = [out for out, _ in root.children[0].mappings]
        if len(arg_names) != len(head_order):
            raise CompileError(
                f"derived atom {atom} arity mismatch with {atom.pred!r}")
        mappings = list(zip(arg_names, head_order))
        node = self._shared(ProjectNode(root, mappings))
        branches.append(_Branch(node))

    def _try_function(self, atom: Atom,
                      branches: List[_Branch]) -> bool:
        entry = self.registry.function(atom.pred)
        arg_vars = [t.name for t in atom.vars()]
        branch = self._branch_binding(branches, arg_vars)
        if branch is not None:
            branch.node = self._shared(
                SelectNode(branch.node, entry, atom.args))
            return True
        # Try joining the branches that together bind the arguments.
        involved = [b for b in branches
                    if any(v in b.bound for v in arg_vars)]
        if not involved:
            return False
        bound = frozenset().union(*(b.bound for b in involved))
        if not all(v in bound for v in arg_vars):
            return False
        merged = involved[0]
        for other in involved[1:]:
            merged.node = self._shared(JoinNode(merged.node, other.node))
            branches.remove(other)
        merged.node = self._shared(SelectNode(merged.node, entry, atom.args))
        return True

    def _branch_binding(self, branches: List[_Branch],
                        arg_vars: Sequence[str]) -> Optional[_Branch]:
        for branch in branches:
            if all(v in branch.bound for v in arg_vars):
                return branch
        return None

    def _join_all(self, branches: List[_Branch], rule: Rule) -> Node:
        if not branches:
            raise CompileError(f"rule {rule} has an empty body plan")
        node = branches[0].node
        for branch in branches[1:]:
            node = self._shared(JoinNode(node, branch.node))
        return node


@dataclass
class CompiledPlan:
    """A compiled program: one root per head relation, plus metadata."""

    program: Program
    registry: Registry
    roots: Dict[str, Node]

    def all_nodes(self) -> List[Node]:
        """All distinct nodes, children before parents (topo order)."""
        seen: Dict[int, Node] = {}
        order: List[Node] = []

        def visit(node: Node) -> None:
            if id(node) in seen:
                return
            seen[id(node)] = node
            for child in node.children:
                visit(child)
            order.append(node)

        for name in self.program.head_relations():
            visit(self.roots[name])
        return order

    def parents(self) -> Dict[int, List[Node]]:
        """Map ``id(node)`` -> distinct parent nodes."""
        out: Dict[int, List[Node]] = {}
        for node in self.all_nodes():
            out.setdefault(id(node), [])
            for child in node.children:
                lst = out.setdefault(id(child), [])
                if not any(p is node for p in lst):
                    lst.append(node)
        return out


def compile_program(program: Program, registry: Registry,
                    validate: bool = True) -> CompiledPlan:
    """Compile (and by default validate) an xlog program."""
    if validate:
        validate_program(program, registry)
    compiler = _Compiler(registry)
    rule_roots: Dict[str, List[Node]] = {}
    roots: Dict[str, Node] = {}
    for rule in program.rules:
        root = compiler.compile_rule(rule)
        rule_roots.setdefault(rule.head.pred, []).append(root)
        # Multiple rules for one head union together; later rules (and
        # derived-atom uses) see the union built so far.
        branches = rule_roots[rule.head.pred]
        if len(branches) == 1:
            combined = branches[0]
        else:
            combined = compiler._shared(UnionNode(branches))
        roots[rule.head.pred] = combined
        compiler.roots[rule.head.pred] = combined
    return CompiledPlan(program=program, registry=registry, roots=roots)
