"""IE units (Definition 5) and IE chains (Definition 6).

An *IE unit* is an IE blackbox plus the maximal single-parent chain of
σ/π operators above it that reference only the blackbox's outputs.
Reuse happens at unit granularity: the unit's post-σ/π output is what
gets captured, which is strictly cheaper than capturing raw blackbox
output (Section 4).

σ/π absorption rules (these are what make the (α, β) of the blackbox
transfer wholesale to the unit):

* a σ is absorbed iff all its variable arguments are unit output
  fields — a σ reading the unit's *input* region or other variables
  would make the unit's context unbounded;
* a π is absorbed iff it is rename-free, keeps only unit output
  fields, and keeps at least one span field (Definition 4 requires a
  span output);
* absorption stops at any node with more than one parent (shared
  subplans feed multiple consumers; their results must stay intact).

An *IE chain* is a maximal path of IE units each extracting from
regions produced by the next. When a producing unit feeds several
units, the first consumer (in plan order) continues the chain and the
others start their own — this makes the partition deterministic, and
unique in the common case the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..extractors.base import Extractor
from ..xlog.registry import EvalContext
from .compile import CompiledPlan
from .operators import IENode, JoinNode, Node, ProjectNode, ScanNode, SelectNode


@dataclass
class IEUnit:
    """One reuse unit: an IE node plus absorbed σ/π operators."""

    uid: str
    index: int
    ie_node: IENode
    absorbed: Tuple[Node, ...]  # bottom-up, all SelectNode/ProjectNode

    @property
    def top(self) -> Node:
        return self.absorbed[-1] if self.absorbed else self.ie_node

    @property
    def extractor(self) -> Extractor:
        return self.ie_node.extractor

    @property
    def in_var(self) -> str:
        return self.ie_node.in_var

    @property
    def alpha(self) -> int:
        """Unit scope — exactly the blackbox's (Section 4)."""
        return self.extractor.scope

    @property
    def beta(self) -> int:
        """Unit context — exactly the blackbox's (Section 4)."""
        return self.extractor.context

    @property
    def out_fields(self) -> Tuple[str, ...]:
        """Extension fields the unit contributes, after absorbed π."""
        fields = list(self.ie_node.out_args)
        for node in self.absorbed:
            if isinstance(node, ProjectNode):
                keep = {out for out, _ in node.mappings}
                fields = [f for f in fields if f in keep]
        return tuple(fields)

    @property
    def projects_away_input(self) -> bool:
        """True when an absorbed π drops pass-through variables."""
        return any(isinstance(n, ProjectNode) for n in self.absorbed)

    def apply_absorbed(self, extension: Dict[str, object],
                       ctx: EvalContext) -> Optional[Dict[str, object]]:
        """Run the absorbed σ/π over one extension; None if filtered."""
        row: Optional[Dict[str, object]] = extension
        for node in self.absorbed:
            if isinstance(node, SelectNode):
                if not node.passes(row, ctx):
                    return None
            else:  # ProjectNode, rename-free by construction
                row = {out: row[src] for out, src in node.mappings}
        return row

    def __repr__(self) -> str:
        return f"IEUnit({self.uid})"


def _absorbable(node: Node, unit_fields: frozenset,
                span_fields: frozenset) -> bool:
    if isinstance(node, SelectNode):
        return all(v in unit_fields for v in node.arg_vars())
    if isinstance(node, ProjectNode):
        if not node.is_rename_free():
            return False
        keep = {out for out, _ in node.mappings}
        if not keep <= unit_fields:
            return False
        return bool(keep & span_fields)
    return False


def find_units(plan: CompiledPlan, absorb: bool = True) -> List[IEUnit]:
    """Identify all IE units of a compiled plan, in topological order.

    ``absorb=False`` turns off σ/π absorption, degenerating IE units to
    bare blackboxes — the reuse-at-blackbox-level alternative Section 4
    argues against (the ablation benchmark measures the difference).
    """
    parents = plan.parents()
    units: List[IEUnit] = []
    used_uids: Dict[str, int] = {}
    for index, node in enumerate(plan.all_nodes()):
        if not isinstance(node, IENode):
            continue
        unit_fields = frozenset(node.out_args)
        span_fields = frozenset(node.span_out_args())
        absorbed: List[Node] = []
        top: Node = node
        while absorb:
            ps = parents.get(id(top), [])
            if len(ps) != 1:
                break
            parent = ps[0]
            if not _absorbable(parent, unit_fields, span_fields):
                break
            absorbed.append(parent)
            if isinstance(parent, ProjectNode):
                keep = frozenset(out for out, _ in parent.mappings)
                unit_fields = unit_fields & keep
                span_fields = span_fields & keep
            top = parent
        base_uid = node.extractor.name
        serial = used_uids.get(base_uid, 0)
        used_uids[base_uid] = serial + 1
        uid = base_uid if serial == 0 else f"{base_uid}#{serial}"
        units.append(IEUnit(uid=uid, index=len(units), ie_node=node,
                            absorbed=tuple(absorbed)))
    return units


def units_by_top(units: Sequence[IEUnit]) -> Dict[int, IEUnit]:
    """Map ``id(unit.top)`` -> unit, for the executors."""
    return {id(u.top): u for u in units}


def _binder_of(node: Node, var: str) -> Optional[Node]:
    """The node that binds ``var`` below (or at) ``node``."""
    if isinstance(node, ScanNode):
        return node if node.var == var else None
    if isinstance(node, IENode):
        if var in node.out_args:
            return node
        return _binder_of(node.child, var)
    if isinstance(node, SelectNode):
        return _binder_of(node.child, var)
    if isinstance(node, ProjectNode):
        for out, src in node.mappings:
            if out == var:
                return _binder_of(node.child, src)
        return None
    if isinstance(node, JoinNode):
        return (_binder_of(node.left, var)
                or _binder_of(node.right, var))
    return None


def producer_unit(unit: IEUnit, units: Sequence[IEUnit]) -> Optional[IEUnit]:
    """The unit producing the regions ``unit`` extracts from, if any."""
    binder = _binder_of(unit.ie_node.child, unit.in_var)
    if binder is None or not isinstance(binder, IENode):
        return None
    for candidate in units:
        if candidate.ie_node is binder:
            return candidate
    return None


@dataclass
class IEChain:
    """A maximal producer/consumer path of IE units, listed top-down
    (``units[0]`` consumes the output of ``units[1]``, etc.)."""

    units: Tuple[IEUnit, ...]

    @property
    def top(self) -> IEUnit:
        return self.units[0]

    @property
    def bottom(self) -> IEUnit:
        return self.units[-1]

    def __len__(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:
        inner = " <- ".join(u.uid for u in reversed(self.units))
        return f"IEChain({inner})"


def partition_chains(units: Sequence[IEUnit]) -> List[IEChain]:
    """Partition units into IE chains (Definition 6)."""
    producers: Dict[str, Optional[IEUnit]] = {
        u.uid: producer_unit(u, units) for u in units}
    continuation: Dict[str, IEUnit] = {}
    for unit in units:  # units are in topo order; first consumer wins
        producer = producers[unit.uid]
        if producer is not None and producer.uid not in continuation:
            continuation[producer.uid] = unit
    continued = {c.uid for c in continuation.values()}
    chains: List[IEChain] = []
    for unit in units:
        if unit.uid in continued:
            continue  # not a chain bottom: it continues its producer
        # ``unit`` is the bottom of a chain; follow continuations upward.
        path = [unit]
        cursor = unit
        while cursor.uid in continuation:
            cursor = continuation[cursor.uid]
            path.append(cursor)
        chains.append(IEChain(tuple(reversed(path))))
    return chains
