"""Vocabulary pools for the synthetic corpus generators.

The DBLife-like corpus needs researcher names, paper-title words,
conferences, and topics; the Wikipedia-like corpus needs actor names,
movie titles, characters, and awards. Everything is deterministic given
the caller's ``random.Random``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

FIRST_NAMES: Sequence[str] = (
    "Alice", "Benjamin", "Carla", "David", "Elena", "Frank", "Grace",
    "Henry", "Irene", "James", "Karen", "Louis", "Maria", "Nathan",
    "Olivia", "Peter", "Quentin", "Rachel", "Samuel", "Teresa", "Ulrich",
    "Victoria", "Walter", "Xenia", "Yusuf", "Zoe", "Arthur", "Bianca",
    "Carl", "Diana", "Edward", "Fiona", "George", "Hanna", "Ivan",
    "Julia", "Kevin", "Laura", "Martin", "Nina", "Oscar", "Paula",
)

LAST_NAMES: Sequence[str] = (
    "Anderson", "Brooks", "Chen", "Dawson", "Ellis", "Foster", "Garcia",
    "Huang", "Ivanov", "Johnson", "Kumar", "Lindqvist", "Martinez",
    "Nakamura", "Olsen", "Petrov", "Quinn", "Rossi", "Schmidt", "Tanaka",
    "Ueda", "Vargas", "Weber", "Xu", "Yamamoto", "Zhang", "Abrams",
    "Bergman", "Costa", "Duval", "Eriksen", "Fischer", "Gupta", "Hoffman",
    "Ibrahim", "Jansen", "Klein", "Lorenz", "Moreau", "Novak",
)

TOPICS: Sequence[str] = (
    "information extraction", "query optimization", "data integration",
    "stream processing", "view maintenance", "text indexing",
    "entity resolution", "schema matching", "web crawling",
    "probabilistic databases", "distributed transactions",
    "column stores", "graph mining", "sensor networks",
    "relevance feedback", "data provenance", "workload forecasting",
    "machine learning", "crowdsourcing", "keyword search",
)

CONFERENCES: Sequence[str] = (
    "SIGMOD", "VLDB", "ICDE", "KDD", "CIDR", "EDBT", "WWW", "PODS",
)

CHAIR_TYPES: Sequence[str] = (
    "program", "general", "demo", "industrial", "workshop",
)

TITLE_ADJECTIVES: Sequence[str] = (
    "Scalable", "Efficient", "Declarative", "Incremental", "Adaptive",
    "Robust", "Principled", "Distributed", "Approximate", "Unified",
)

TITLE_NOUNS: Sequence[str] = (
    "Extraction", "Optimization", "Integration", "Indexing", "Matching",
    "Crawling", "Analytics", "Provenance", "Maintenance", "Inference",
)

ROOMS: Sequence[str] = ("CS 105", "CS 1240", "EE 201", "MSC 333", "CS 2310")

TIMES: Sequence[str] = ("10 am", "11 am", "noon", "1 pm", "2 pm", "3 pm",
                        "4 pm", "4:30 pm")

MOVIE_FIRST: Sequence[str] = (
    "Midnight", "Crimson", "Silent", "Golden", "Broken", "Winter",
    "Electric", "Paper", "Hollow", "Distant", "Savage", "Gentle",
    "Burning", "Frozen", "Scarlet", "Velvet",
)

MOVIE_SECOND: Sequence[str] = (
    "Horizon", "Garden", "Empire", "Passage", "Harbor", "Letters",
    "Crossing", "Kingdom", "Shadows", "Reverie", "Arcade", "Station",
    "Voyage", "Orchard", "Cathedral", "Frontier",
)

CHARACTERS: Sequence[str] = (
    "Captain Reyes", "Dr. Malone", "Agent Carter", "Professor Lin",
    "Detective Shaw", "Sister Agnes", "Colonel Brandt", "Judge Whitfield",
    "Nurse Calloway", "Mayor Donnelly",
)

AWARDS: Sequence[str] = (
    "Academy Award for Best Actor", "Academy Award for Best Actress",
    "Golden Globe Award", "Screen Actors Guild Award", "BAFTA Award",
    "Critics Choice Award", "Saturn Award",
)

MONTHS: Sequence[str] = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

FILLER_SENTENCES: Sequence[str] = (
    "The department hosts weekly colloquia during the semester.",
    "Updates to this page are posted every Monday morning.",
    "Parking is available in the visitor lot on Dayton Street.",
    "Refreshments will be served after the session.",
    "For questions, contact the administrative office.",
    "This article needs additional citations for verification.",
    "The production received generally favorable reviews.",
    "Principal photography took place over eleven weeks.",
    "The soundtrack was composed over a period of two years.",
    "Critics praised the cinematography and the supporting cast.",
    "The project was announced at a press event in the spring.",
    "Archived materials are available from the library on request.",
)


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def paper_title(rng: random.Random) -> str:
    return (f"{rng.choice(TITLE_ADJECTIVES)} {rng.choice(TITLE_NOUNS)} for "
            f"{rng.choice(TOPICS).title()}")


def movie_title(rng: random.Random) -> str:
    return f"{rng.choice(MOVIE_FIRST)} {rng.choice(MOVIE_SECOND)}"


def topic_list(rng: random.Random, low: int = 1, high: int = 3) -> List[str]:
    count = rng.randint(low, high)
    return rng.sample(list(TOPICS), count)
