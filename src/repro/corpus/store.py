"""Disk-backed store of consecutive corpus snapshots.

Layout under the store root::

    <root>/snapshot_0000.dat
    <root>/snapshot_0001.dat
    ...
    <root>/reuse/<system>/<snapshot>/...   (reuse files, managed elsewhere)

The store only manages snapshot files; reuse files are owned by the
reuse engine but live under the same root so one directory captures an
entire evolving-extraction deployment.
"""

from __future__ import annotations

import os
import re
from typing import Iterator, List, Optional

from .snapshot import Snapshot, read_snapshot, write_snapshot

_SNAPSHOT_RE = re.compile(r"snapshot_(\d{4})\.dat$")


class CorpusStore:
    """Append-only sequence of snapshots on disk."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, index: int) -> str:
        return os.path.join(self.root, f"snapshot_{index:04d}.dat")

    def indexes(self) -> List[int]:
        """Sorted snapshot indexes present on disk."""
        out = []
        for name in os.listdir(self.root):
            m = _SNAPSHOT_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def __len__(self) -> int:
        return len(self.indexes())

    @property
    def latest_index(self) -> Optional[int]:
        idx = self.indexes()
        return idx[-1] if idx else None

    def append(self, snapshot: Snapshot) -> int:
        """Store the next snapshot; its index must follow the latest."""
        latest = self.latest_index
        expected = 0 if latest is None else latest + 1
        if snapshot.index != expected:
            raise ValueError(
                f"snapshot index {snapshot.index} != expected {expected}")
        write_snapshot(snapshot, self._path(snapshot.index))
        return snapshot.index

    def load(self, index: int) -> Snapshot:
        path = self._path(index)
        if not os.path.exists(path):
            raise KeyError(f"no snapshot {index} in {self.root}")
        return read_snapshot(path)

    def __iter__(self) -> Iterator[Snapshot]:
        for index in self.indexes():
            yield self.load(index)

    def reuse_dir(self, system: str, index: int) -> str:
        """Directory for a system's reuse files for snapshot ``index``."""
        path = os.path.join(self.root, "reuse", system, f"{index:04d}")
        os.makedirs(path, exist_ok=True)
        return path
