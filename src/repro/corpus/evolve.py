"""Page-evolution simulator.

Drives a :class:`~repro.corpus.generators.CorpusGenerator` through a
sequence of snapshots. The change model is deliberately simple and
measurable: each step, a page stays byte-identical with probability
``p_unchanged``; otherwise it receives a small number of line-level
edits (insert / delete / rewrite). Pages are occasionally retired and
new URLs appear, matching the churn of real crawls.

Presets reproduce the two corpora of the paper's evaluation:

* :func:`dblife_corpus` — 96–98 % of pages identical between snapshots.
* :func:`wikipedia_corpus` — only 8–20 % identical, but changed pages
  still share most of their text with their previous version.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..text.document import Page
from .generators import CorpusGenerator, DBLifeGenerator, PageSpec, WikipediaGenerator
from .snapshot import Snapshot


@dataclass(frozen=True)
class ChangeModel:
    """Parameters of the per-step evolution process."""

    p_unchanged: float = 0.9
    """Probability a page survives a step byte-identical."""

    p_removed: float = 0.01
    """Probability a page disappears from the next snapshot."""

    p_added: float = 0.01
    """Expected new pages per step, as a fraction of corpus size."""

    p_renamed: float = 0.0
    """Probability a surviving page moves to a fresh URL (content kept,
    possibly edited) — site reorganizations. The paper's same-URL
    matching scope loses these pages' history; the
    :class:`~repro.reuse.scope.FingerprintScope` recovers it."""

    mean_edits: float = 2.0
    """Mean number of line edits applied to a changed page."""

    p_insert: float = 0.4
    p_delete: float = 0.2
    """Edit-type mix; the remainder rewrites an existing line."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_unchanged <= 1.0:
            raise ValueError("p_unchanged must be in [0, 1]")
        if self.p_insert + self.p_delete > 1.0:
            raise ValueError("p_insert + p_delete must be <= 1")


class EvolvingCorpus:
    """Generates consecutive snapshots of a synthetic evolving corpus."""

    def __init__(self, generator: CorpusGenerator, n_pages: int,
                 change_model: ChangeModel, seed: int = 0,
                 rng: Optional[random.Random] = None) -> None:
        """``rng`` injects the random stream explicitly (tests, or
        callers sharing one stream across corpora); the default builds
        a private ``random.Random(seed)``. The evolver never touches
        the global :mod:`random` state either way — same seed, same
        snapshot bytes, regardless of interleaved global draws."""
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.generator = generator
        self.change_model = change_model
        self._rng = rng if rng is not None else random.Random(seed)
        self._next_url_id = 0
        self._pages: List[PageSpec] = [
            generator.new_page(self._rng, self._fresh_url())
            for _ in range(n_pages)
        ]
        self._snapshot_index = 0

    def _fresh_url(self) -> str:
        url = f"http://{self.generator.name}.example.org/page/{self._next_url_id:05d}"
        self._next_url_id += 1
        return url

    def current_snapshot(self) -> Snapshot:
        """Materialize the current state as a snapshot."""
        pages = [Page.from_url(spec.url, spec.text()) for spec in self._pages]
        return Snapshot(self._snapshot_index, pages)

    def step(self) -> Snapshot:
        """Advance one crawl interval and return the new snapshot."""
        model = self.change_model
        rng = self._rng
        survivors: List[PageSpec] = []
        for spec in self._pages:
            if rng.random() < model.p_removed:
                continue
            if rng.random() < model.p_unchanged:
                survivor = spec
            else:
                survivor = self._edit(rng, spec.clone())
            if model.p_renamed and rng.random() < model.p_renamed:
                survivor = survivor.clone()
                survivor.url = self._fresh_url()
            survivors.append(survivor)
        n_new = sum(1 for _ in range(len(self._pages))
                    if rng.random() < model.p_added)
        for _ in range(n_new):
            survivors.append(self.generator.new_page(rng, self._fresh_url()))
        self._pages = survivors
        self._snapshot_index += 1
        return self.current_snapshot()

    def snapshots(self, count: int) -> Iterator[Snapshot]:
        """Yield the current snapshot followed by ``count - 1`` steps."""
        if count <= 0:
            return
        yield self.current_snapshot()
        for _ in range(count - 1):
            yield self.step()

    def _edit(self, rng: random.Random, spec: PageSpec) -> PageSpec:
        model = self.change_model
        n_edits = max(1, round(rng.expovariate(1.0 / model.mean_edits)))
        for _ in range(n_edits):
            roll = rng.random()
            if roll < model.p_insert or not spec.lines:
                pos = rng.randint(0, len(spec.lines))
                spec.lines.insert(
                    pos, self.generator.new_line(rng, spec.kind))
            elif roll < model.p_insert + model.p_delete and len(spec.lines) > 1:
                del spec.lines[rng.randrange(len(spec.lines))]
            else:
                pos = rng.randrange(len(spec.lines))
                spec.lines[pos] = self.generator.modify_line(
                    rng, spec.kind, spec.lines[pos])
        return spec


def dblife_corpus(n_pages: int = 120, seed: int = 0,
                  p_unchanged: float = 0.97) -> EvolvingCorpus:
    """DBLife-like corpus: slow-changing community pages.

    The paper reports 96–98 % of DBLife pages identical between
    consecutive snapshots; ``p_unchanged`` defaults inside that band.
    """
    model = ChangeModel(p_unchanged=p_unchanged, p_removed=0.005,
                        p_added=0.005, mean_edits=2.0)
    return EvolvingCorpus(DBLifeGenerator(), n_pages, model, seed=seed)


def wikipedia_corpus(n_pages: int = 80, seed: int = 0,
                     p_unchanged: float = 0.15) -> EvolvingCorpus:
    """Wikipedia-like corpus: most pages edited every snapshot.

    The paper reports only 8–20 % of Wikipedia pages identical between
    consecutive (21-day) snapshots, yet edits are local, so changed
    pages still overlap heavily with their previous versions.
    """
    model = ChangeModel(p_unchanged=p_unchanged, p_removed=0.01,
                        p_added=0.01, mean_edits=3.0)
    return EvolvingCorpus(WikipediaGenerator(), n_pages, model, seed=seed)
