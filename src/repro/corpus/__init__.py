"""Evolving-corpus substrate: snapshots, storage, synthesis, statistics."""

from .evolve import ChangeModel, EvolvingCorpus, dblife_corpus, wikipedia_corpus
from .generators import CorpusGenerator, DBLifeGenerator, PageSpec, WikipediaGenerator
from .snapshot import (
    Snapshot,
    iter_snapshot_pages,
    read_snapshot,
    snapshot_from_texts,
    write_snapshot,
)
from .stats import CorpusProfile, SnapshotDelta, profile_corpus, snapshot_delta
from .store import CorpusStore

__all__ = [
    "Snapshot",
    "CorpusStore",
    "ChangeModel",
    "EvolvingCorpus",
    "CorpusGenerator",
    "DBLifeGenerator",
    "WikipediaGenerator",
    "PageSpec",
    "CorpusProfile",
    "SnapshotDelta",
    "profile_corpus",
    "snapshot_delta",
    "dblife_corpus",
    "wikipedia_corpus",
    "write_snapshot",
    "read_snapshot",
    "iter_snapshot_pages",
    "snapshot_from_texts",
]
