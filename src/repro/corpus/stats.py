"""Corpus change statistics (the quantities behind Figure 8a).

These feed both the experiment reports and the optimizer's estimate of
``f`` — the fraction of pages with an earlier version in the previous
snapshot (Figure 7b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .snapshot import Snapshot


@dataclass(frozen=True)
class SnapshotDelta:
    """Change profile between two consecutive snapshots."""

    prev_index: int
    next_index: int
    pages_prev: int
    pages_next: int
    shared_urls: int
    identical_pages: int

    @property
    def fraction_with_previous(self) -> float:
        """The optimizer's ``f``: pages of the new snapshot whose URL
        existed in the previous one."""
        if self.pages_next == 0:
            return 0.0
        return self.shared_urls / self.pages_next

    @property
    def fraction_identical(self) -> float:
        """Fraction of new-snapshot pages byte-identical to their
        previous version (what makes Shortcut win or lose)."""
        if self.pages_next == 0:
            return 0.0
        return self.identical_pages / self.pages_next


def snapshot_delta(prev: Snapshot, nxt: Snapshot) -> SnapshotDelta:
    shared = 0
    identical = 0
    for page in nxt:
        old = prev.get(page.url)
        if old is None:
            continue
        shared += 1
        if page.identical_to(old):
            identical += 1
    return SnapshotDelta(prev.index, nxt.index, len(prev), len(nxt),
                         shared, identical)


@dataclass(frozen=True)
class CorpusProfile:
    """Aggregate statistics over a snapshot sequence (Figure 8a row)."""

    snapshots: int
    avg_pages: float
    avg_bytes: float
    avg_fraction_identical: float
    avg_fraction_with_previous: float


def profile_corpus(snapshots: Sequence[Snapshot]) -> CorpusProfile:
    """Summarize a full snapshot sequence."""
    if not snapshots:
        raise ValueError("need at least one snapshot")
    deltas: List[SnapshotDelta] = [
        snapshot_delta(a, b) for a, b in zip(snapshots, snapshots[1:])
    ]
    avg_pages = sum(len(s) for s in snapshots) / len(snapshots)
    avg_bytes = sum(s.total_bytes() for s in snapshots) / len(snapshots)
    if deltas:
        avg_ident = sum(d.fraction_identical for d in deltas) / len(deltas)
        avg_prev = sum(d.fraction_with_previous for d in deltas) / len(deltas)
    else:
        avg_ident = avg_prev = 0.0
    return CorpusProfile(len(snapshots), avg_pages, avg_bytes,
                         avg_ident, avg_prev)
