"""Corpus snapshots and their on-disk representation.

A snapshot is the ordered set of pages retrieved by one crawl. Order
matters: the reuse engine processes pages of snapshot ``n+1`` in the
same order as snapshot ``n`` so every reuse file is scanned exactly once
(Section 5.2). Snapshots are persisted as a single sequential data file
of length-prefixed page records, mirroring the paper's disk-resident,
stream-processed corpus.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..text.document import Page


@dataclass
class Snapshot:
    """An ordered collection of pages from one crawl."""

    index: int
    pages: List[Page] = field(default_factory=list)
    _by_url: Dict[str, Page] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._by_url:
            self._by_url = {p.url: p for p in self.pages}
        if len(self._by_url) != len(self.pages):
            raise ValueError("duplicate URLs within a snapshot")

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)

    def get(self, url: str) -> Optional[Page]:
        """Page at this URL, or None if the URL was not crawled."""
        return self._by_url.get(url)

    def urls(self) -> List[str]:
        return [p.url for p in self.pages]

    def total_bytes(self) -> int:
        return sum(len(p.text.encode("utf-8")) for p in self.pages)

    def add(self, page: Page) -> None:
        if page.url in self._by_url:
            raise ValueError(f"duplicate URL {page.url!r}")
        self.pages.append(page)
        self._by_url[page.url] = page

    def canonical_pages(self) -> List[Page]:
        """Pages sorted by page id — the canonical processing order.

        Every system enumerates snapshots in this order (instead of
        store insertion order), so capture files are written in a
        stable, OS-independent order: the precondition both for
        one-pass sequential reuse-file scans across snapshots and for
        the parallel runtime's deterministic batch merge.
        """
        return sorted(self.pages, key=lambda p: p.did)

    def ordered_like(self, previous: "Snapshot") -> "Snapshot":
        """Reorder so pages shared with ``previous`` come first, in
        ``previous``'s order; brand-new pages follow.

        This is the processing order that lets the reuse engine scan
        each reuse file sequentially exactly once.
        """
        fresh: List[Page] = []
        seen = set()
        for old in previous.pages:
            page = self.get(old.url)
            if page is not None:
                fresh.append(page)
                seen.add(page.url)
        for page in self.pages:
            if page.url not in seen:
                fresh.append(page)
        return Snapshot(self.index, fresh)


def write_snapshot(snapshot: Snapshot, path: str) -> None:
    """Persist a snapshot as one sequential file of page records.

    Each record is a JSON header line ``{"did", "url", "nbytes", "fp"}``
    followed by exactly ``nbytes`` of UTF-8 page text and a newline.
    ``fp`` is the page's blake2 content fingerprint
    (:func:`repro.text.document.content_fingerprint`); persisting it
    lets the fast-path layer detect unchanged pages without hashing
    page bodies at load time.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(json.dumps({"index": snapshot.index,
                            "pages": len(snapshot)}).encode("utf-8"))
        f.write(b"\n")
        for page in snapshot:
            body = page.text.encode("utf-8")
            header = {"did": page.did, "url": page.url, "nbytes": len(body),
                      "fp": page.fingerprint}
            f.write(json.dumps(header).encode("utf-8"))
            f.write(b"\n")
            f.write(body)
            f.write(b"\n")
    os.replace(tmp, path)


def iter_snapshot_pages(path: str) -> Iterator[Page]:
    """Stream pages from a snapshot file without loading it whole.

    Raises :class:`ValueError` when a page body is shorter than its
    header's ``nbytes`` — the signature of a file torn mid-write.
    """
    with open(path, "rb") as f:
        f.readline()  # snapshot header
        while True:
            line = f.readline()
            if not line:
                return
            header = json.loads(line)
            raw = f.read(header["nbytes"])
            if len(raw) != header["nbytes"]:
                raise ValueError(
                    f"truncated snapshot file {path!r}: page "
                    f"{header.get('did')!r} body is {len(raw)} bytes, "
                    f"header declares {header['nbytes']}")
            body = raw.decode("utf-8")
            f.read(1)  # trailing newline
            yield Page(did=header["did"], url=header["url"], text=body,
                       fp=header.get("fp", ""))


def read_snapshot(path: str) -> Snapshot:
    """Load a snapshot file fully into memory.

    Validates the page count against the file header's ``pages``
    field. Before this check a snapshot file torn between page records
    — a producer writing the final name directly instead of the
    write-then-``os.replace`` protocol — parsed *successfully* with
    fewer pages, and the serve ingest path would happily publish the
    short corpus. Now truncation is a :class:`ValueError`, which the
    spool watcher treats as "partially written, retry next sweep".
    """
    with open(path, "rb") as f:
        meta = json.loads(f.readline())
    pages = list(iter_snapshot_pages(path))
    declared = meta.get("pages")
    if declared is not None and len(pages) != declared:
        raise ValueError(
            f"truncated snapshot file {path!r}: read {len(pages)} "
            f"pages, header declares {declared}")
    return Snapshot(meta["index"], pages)


def snapshot_from_texts(index: int, texts: Dict[str, str],
                        order: Optional[Iterable[str]] = None) -> Snapshot:
    """Convenience constructor from a ``url -> text`` mapping."""
    urls = list(order) if order is not None else sorted(texts)
    return Snapshot(index, [Page.from_url(u, texts[u]) for u in urls])
