"""Synthetic page generators standing in for the paper's crawls.

The paper evaluates on crawled DBLife (community portal pages) and
Wikipedia (entertainment articles) snapshots that are not publicly
available. These generators produce pages with the same *extractable
structure*: rigidly formatted fact lines that the rule-based blackboxes
in :mod:`repro.extractors.library` target, interleaved with filler prose
and section headers, organized so diffs across snapshots look like real
page edits (line insertions, deletions, and small token rewrites).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence

from . import vocab


@dataclass
class PageSpec:
    """A mutable page under evolution: an ordered list of text lines."""

    url: str
    kind: str
    lines: List[str] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def clone(self) -> "PageSpec":
        return PageSpec(self.url, self.kind, list(self.lines))


class CorpusGenerator(ABC):
    """Produces initial pages and fresh fact lines for edits."""

    #: short name used in store paths and reports
    name: str = "corpus"

    @abstractmethod
    def new_page(self, rng: random.Random, url: str) -> PageSpec:
        """Generate a brand-new page."""

    @abstractmethod
    def new_line(self, rng: random.Random, kind: str) -> str:
        """Generate one line suitable for insertion into a ``kind`` page."""

    @abstractmethod
    def page_kinds(self) -> Sequence[str]:
        """Kinds of pages this corpus contains."""

    def modify_line(self, rng: random.Random, kind: str, line: str) -> str:
        """Rewrite a line in-place the way small page edits do.

        The default implementation tweaks years/numbers when present and
        otherwise replaces the line with a fresh one of the same flavor.
        """
        tokens = line.split(" ")
        digit_slots = [i for i, t in enumerate(tokens)
                       if t.strip("().,").isdigit()]
        if digit_slots and rng.random() < 0.7:
            i = rng.choice(digit_slots)
            core = tokens[i].strip("().,")
            bumped = str(int(core) + rng.randint(1, 3))
            tokens[i] = tokens[i].replace(core, bumped)
            return " ".join(tokens)
        return self.new_line(rng, kind)


def _year(rng: random.Random) -> int:
    return rng.randint(1985, 2009)


class DBLifeGenerator(CorpusGenerator):
    """DBLife-like community pages: talks, conference service, advising.

    Fact-line grammar (the rule extractors depend on these shapes):

    * ``Talk: "<title>" by <Name>. Topics: <t1>, <t2>.``
    * ``<Name> serves as <type> chair of <CONF> <year>.``
    * ``Prof. <Name> advises <Name> on <topic>.``
    """

    name = "dblife"

    def page_kinds(self) -> Sequence[str]:
        return ("homepage", "seminar", "conference")

    def new_page(self, rng: random.Random, url: str) -> PageSpec:
        kind = rng.choice(self.page_kinds())
        page = PageSpec(url, kind)
        owner = vocab.person_name(rng)
        page.lines.append(f"{owner} - {kind.title()} Page")
        page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        page.lines.append("== Announcements ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(self._talk_line(rng))
        for _ in range(rng.randint(0, 2)):
            page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        page.lines.append("== Service ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(self._chair_line(rng))
        page.lines.append("== Advising ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(self._advise_line(rng))
        page.lines.append("== News ==")
        for _ in range(rng.randint(1, 4)):
            page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        return page

    def new_line(self, rng: random.Random, kind: str) -> str:
        roll = rng.random()
        if roll < 0.25:
            return self._talk_line(rng)
        if roll < 0.45:
            return self._chair_line(rng)
        if roll < 0.65:
            return self._advise_line(rng)
        return rng.choice(vocab.FILLER_SENTENCES)

    def _talk_line(self, rng: random.Random) -> str:
        title = vocab.paper_title(rng)
        speaker = vocab.person_name(rng)
        topics = ", ".join(vocab.topic_list(rng))
        room = rng.choice(vocab.ROOMS)
        when = rng.choice(vocab.TIMES)
        return (f'Talk: "{title}" by {speaker}. Topics: {topics}. '
                f"Location: {room} at {when}.")

    def _chair_line(self, rng: random.Random) -> str:
        person = vocab.person_name(rng)
        ctype = rng.choice(vocab.CHAIR_TYPES)
        conf = rng.choice(vocab.CONFERENCES)
        return f"{person} serves as {ctype} chair of {conf} {_year(rng)}."

    def _advise_line(self, rng: random.Random) -> str:
        advisor = vocab.person_name(rng)
        advisee = vocab.person_name(rng)
        topic = rng.choice(vocab.TOPICS)
        return f"Prof. {advisor} advises {advisee} on {topic}."


class WikipediaGenerator(CorpusGenerator):
    """Wikipedia-like entertainment articles: actors and movies.

    Fact-line grammar:

    * ``<Movie> grossed $<n> million worldwide.``
    * ``<Actor> starred as <Character> in <Movie> (<year>).``
    * ``<Actor> won the <Award> for <Movie> (<year>).``
    * ``Born <Full Name> on <Month> <d>, <year>.``
    * ``Notable roles include <Movie> and <Movie>.``
    """

    name = "wikipedia"

    def page_kinds(self) -> Sequence[str]:
        return ("actor", "movie")

    def new_page(self, rng: random.Random, url: str) -> PageSpec:
        kind = rng.choice(self.page_kinds())
        if kind == "actor":
            return self._actor_page(rng, url)
        return self._movie_page(rng, url)

    def _actor_page(self, rng: random.Random, url: str) -> PageSpec:
        page = PageSpec(url, "actor")
        actor = vocab.person_name(rng)
        page.lines.append(f"{actor} is a film actor.")
        page.lines.append("== Biography ==")
        page.lines.append(self._birth_line(rng))
        page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        page.lines.append(self._roles_line(rng))
        page.lines.append("== Filmography ==")
        for _ in range(rng.randint(2, 4)):
            page.lines.append(self._play_line(rng, actor))
        page.lines.append("== Awards ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(self._award_line(rng, actor))
        page.lines.append("== References ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        return page

    def _movie_page(self, rng: random.Random, url: str) -> PageSpec:
        page = PageSpec(url, "movie")
        movie = vocab.movie_title(rng)
        page.lines.append(f"{movie} is a feature film released in "
                          f"{_year(rng)}.")
        page.lines.append("== Production ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(rng.choice(vocab.FILLER_SENTENCES))
        page.lines.append("== Box office ==")
        page.lines.append(self._gross_line(rng, movie))
        page.lines.append("== Filmography ==")
        for _ in range(rng.randint(1, 3)):
            page.lines.append(self._play_line(rng))
        page.lines.append("== Awards ==")
        for _ in range(rng.randint(0, 2)):
            page.lines.append(self._award_line(rng))
        return page

    def new_line(self, rng: random.Random, kind: str) -> str:
        roll = rng.random()
        if roll < 0.2:
            return self._gross_line(rng)
        if roll < 0.4:
            return self._play_line(rng)
        if roll < 0.6:
            return self._award_line(rng)
        if roll < 0.7 and kind == "actor":
            return self._roles_line(rng)
        return rng.choice(vocab.FILLER_SENTENCES)

    def _gross_line(self, rng: random.Random, movie: str = "") -> str:
        movie = movie or vocab.movie_title(rng)
        amount = rng.choice((12, 35, 48, 75, 95, 120, 180, 240, 310, 480))
        return f"{movie} grossed ${amount} million worldwide."

    def _play_line(self, rng: random.Random, actor: str = "") -> str:
        actor = actor or vocab.person_name(rng)
        character = rng.choice(vocab.CHARACTERS)
        movie = vocab.movie_title(rng)
        return f"{actor} starred as {character} in {movie} ({_year(rng)})."

    def _award_line(self, rng: random.Random, actor: str = "") -> str:
        actor = actor or vocab.person_name(rng)
        award = rng.choice(vocab.AWARDS)
        movie = vocab.movie_title(rng)
        return f"{actor} won the {award} for {movie} ({_year(rng)})."

    def _birth_line(self, rng: random.Random) -> str:
        full = (f"{rng.choice(vocab.FIRST_NAMES)} "
                f"{rng.choice(vocab.FIRST_NAMES)} "
                f"{rng.choice(vocab.LAST_NAMES)}")
        month = rng.choice(vocab.MONTHS)
        return f"Born {full} on {month} {rng.randint(1, 28)}, {_year(rng)}."

    def _roles_line(self, rng: random.Random) -> str:
        return (f"Notable roles include {vocab.movie_title(rng)} and "
                f"{vocab.movie_title(rng)}.")
