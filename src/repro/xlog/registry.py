"""Registry binding xlog predicate names to Python procedures.

Three kinds of bindings:

* ``docs`` — the built-in extensional predicate over the corpus pages.
* IE predicates — backed by an :class:`~repro.extractors.base.Extractor`.
  The predicate's first argument is the input span, the remaining
  arguments name the extractor's outputs positionally.
* p-functions — boolean predicates over bound values used as selections
  (``immBefore(title, abstract)``, ``grossOver(sent, 100)``).

p-functions receive an :class:`EvalContext` so they can materialize
span values against the current page's text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

from ..text.span import Span

if TYPE_CHECKING:  # avoid a package import cycle; Extractor is typing-only
    from ..extractors.base import Extractor

DOCS_PREDICATE = "docs"

Scalar = Union[str, int, float, bool, None]
Value = Union[Span, Scalar]


class EvalContext:
    """Page-scoped evaluation context handed to p-functions."""

    def __init__(self, page_text: str, did: str) -> None:
        self.page_text = page_text
        self.did = did

    def text(self, value: Value) -> str:
        """Materialize a value: span -> its text, scalar -> str."""
        if isinstance(value, Span):
            return self.page_text[value.start:value.end]
        return str(value)


PFunction = Callable[..., bool]


@dataclass(frozen=True)
class PFunctionEntry:
    name: str
    func: PFunction
    arity: int
    #: True iff the function's verdict depends only on its argument
    #: values — span offsets, span *contents*, and scalars — never on
    #: page text outside the argument spans. Row-determined selections
    #: stay valid for tuples a page edit did not touch, which is what
    #: lets :mod:`repro.delta` classify an update as safe for in-place
    #: delta propagation (Kassaie & Tompa's safe-update notion). The
    #: conservative default is False: an unannotated function forces
    #: the per-page re-extraction fallback on changed pages.
    row_determined: bool = False


class Registry:
    """Name -> procedure bindings for a family of xlog programs."""

    def __init__(self) -> None:
        self._extractors: Dict[str, "Extractor"] = {}
        self._functions: Dict[str, PFunctionEntry] = {}
        register_builtin_functions(self)

    # -- IE predicates ---------------------------------------------------

    def register_extractor(self, extractor: "Extractor") -> None:
        if extractor.name in self._extractors or extractor.name in self._functions:
            raise ValueError(f"predicate {extractor.name!r} already bound")
        self._extractors[extractor.name] = extractor

    def extractor(self, name: str) -> "Extractor":
        return self._extractors[name]

    def is_ie_predicate(self, name: str) -> bool:
        return name in self._extractors

    # -- p-functions -----------------------------------------------------

    def register_function(self, name: str, func: PFunction,
                          arity: int,
                          row_determined: bool = False) -> None:
        if name in self._functions or name in self._extractors:
            raise ValueError(f"predicate {name!r} already bound")
        self._functions[name] = PFunctionEntry(name, func, arity,
                                               row_determined)

    def function(self, name: str) -> PFunctionEntry:
        return self._functions[name]

    def is_function(self, name: str) -> bool:
        return name in self._functions

    def kind_of(self, name: str) -> Optional[str]:
        """'docs', 'ie', 'function', or None for unknown predicates."""
        if name == DOCS_PREDICATE:
            return "docs"
        if name in self._extractors:
            return "ie"
        if name in self._functions:
            return "function"
        return None


# -- built-in p-functions --------------------------------------------------

def _as_span(value: Value, what: str) -> Span:
    if not isinstance(value, Span):
        raise TypeError(f"{what} expects a span, got {type(value).__name__}")
    return value


def imm_before(ctx: EvalContext, a: Value, b: Value) -> bool:
    """True iff span ``a`` ends right before span ``b`` starts
    (allowing whitespace between them)."""
    sa, sb = _as_span(a, "immBefore"), _as_span(b, "immBefore")
    if sa.did != sb.did or sa.end > sb.start:
        return False
    return ctx.page_text[sa.end:sb.start].strip() == ""


def before(ctx: EvalContext, a: Value, b: Value) -> bool:
    """True iff span ``a`` ends at or before span ``b`` starts."""
    sa, sb = _as_span(a, "before"), _as_span(b, "before")
    return sa.did == sb.did and sa.end <= sb.start


def within_chars(ctx: EvalContext, a: Value, b: Value, dist: Value) -> bool:
    """True iff spans ``a`` and ``b`` lie within ``dist`` characters."""
    sa, sb = _as_span(a, "withinChars"), _as_span(b, "withinChars")
    if sa.did != sb.did:
        return False
    hull = max(sa.end, sb.end) - min(sa.start, sb.start)
    return hull <= int(dist)  # type: ignore[arg-type]


def contains_phrase(ctx: EvalContext, a: Value, phrase: Value) -> bool:
    """True iff the value's text contains ``phrase`` (case-insensitive)."""
    return str(phrase).lower() in ctx.text(a).lower()


def matches(ctx: EvalContext, a: Value, pattern: Value) -> bool:
    """True iff the value's text matches the regex ``pattern``."""
    return re.search(str(pattern), ctx.text(a)) is not None


def gross_over(ctx: EvalContext, sent: Value, millions: Value) -> bool:
    """True iff the sentence reports a gross of at least N million
    (parses ``$<n> million`` from the sentence text)."""
    m = re.search(r"\$(\d+(?:\.\d+)?) million", ctx.text(sent))
    if m is None:
        return False
    return float(m.group(1)) >= float(millions)  # type: ignore[arg-type]


def year_after(ctx: EvalContext, value: Value, year: Value) -> bool:
    """True iff the value's text contains a 4-digit year >= ``year``."""
    m = re.search(r"\b(19|20)\d{2}\b", ctx.text(value))
    return m is not None and int(m.group()) >= int(year)  # type: ignore[arg-type]


def all_caps(ctx: EvalContext, value: Value) -> bool:
    """True iff the value's text is entirely upper-case."""
    text = ctx.text(value)
    return bool(text) and text == text.upper()


def at_least(ctx: EvalContext, value: Value, threshold: Value) -> bool:
    """True iff a numeric value is >= the threshold."""
    del ctx
    return float(value) >= float(threshold)  # type: ignore[arg-type]


def register_builtin_functions(registry: Registry) -> None:
    # ``row_determined`` (3rd column) marks functions whose verdict is
    # a pure function of their argument values. ``immBefore`` is the
    # one exception: it inspects the page text *between* its two spans,
    # which a page edit can change without touching either span.
    registry._functions.clear()
    for name, func, arity, row_determined in (
        ("immBefore", imm_before, 2, False),
        ("before", before, 2, True),
        ("withinChars", within_chars, 3, True),
        ("containsPhrase", contains_phrase, 2, True),
        ("matches", matches, 2, True),
        ("grossOver", gross_over, 2, True),
        ("yearAfter", year_after, 2, True),
        ("allCaps", all_caps, 1, True),
        ("atLeast", at_least, 2, True),
    ):
        registry._functions[name] = PFunctionEntry(name, func, arity,
                                                   row_determined)
