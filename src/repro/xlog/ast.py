"""AST for xlog, the Datalog variant with embedded extraction predicates.

An xlog program (Shen et al., VLDB-07; Section 3 of the Delex paper) is
a set of rules ``head :- body``. Body atoms are:

* the extensional predicate ``docs(d)`` binding ``d`` to each data page,
* *IE predicates* — procedural predicates backed by an
  :class:`~repro.extractors.base.Extractor`, taking one bound input span
  and producing output spans extracted from it,
* *p-function predicates* — procedural boolean predicates over bound
  values (e.g. ``immBefore(title, abstract)``).

xlog does not support negation or recursion (nor does this
implementation — the validator rejects them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

Literal = Union[str, int, float]


@dataclass(frozen=True)
class Var:
    """A variable term. xlog uses lowercase variable names."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = Union[Var, Literal]


def term_str(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, str):
        return f'"{term}"'
    return repr(term)


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms: ``name(t1, ..., tn)``."""

    pred: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(term_str(t) for t in self.args)
        return f"{self.pred}({inner})"

    def vars(self) -> List[Var]:
        return [t for t in self.args if isinstance(t, Var)]

    @property
    def arity(self) -> int:
        return len(self.args)


@dataclass(frozen=True)
class Rule:
    """``head :- body_1, ..., body_n.``"""

    head: Atom
    body: Tuple[Atom, ...]

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."

    def body_vars(self) -> List[Var]:
        seen: List[Var] = []
        for atom in self.body:
            for v in atom.vars():
                if v not in seen:
                    seen.append(v)
        return seen


@dataclass(frozen=True)
class Program:
    """An xlog program: an ordered set of rules."""

    rules: Tuple[Rule, ...]
    name: str = "program"

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def head_relations(self) -> List[str]:
        out: List[str] = []
        for rule in self.rules:
            if rule.head.pred not in out:
                out.append(rule.head.pred)
        return out


def make_rule(head: Atom, body: Sequence[Atom]) -> Rule:
    return Rule(head, tuple(body))
