"""Parser for the textual xlog syntax.

Grammar (whitespace-insensitive, ``%`` or ``#`` start line comments)::

    program  := rule*
    rule     := atom ":-" atom ("," atom)* "."
    atom     := IDENT "(" term ("," term)* ")"
    term     := IDENT | NUMBER | STRING

Identifiers in argument position are variables; quoted strings and
numbers are literals. Example::

    titles(d, title) :- docs(d), extractTitle(d, title).
    talks(title, abstract) :- titles(d, title), abstracts(d, abstract),
                              immBefore(title, abstract).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ast import Atom, Program, Rule, Term, Var


class XlogSyntaxError(ValueError):
    """Raised when a program cannot be parsed."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%#][^\n]*)
  | (?P<implies>:-)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<punct>[(),.])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise XlogSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = m.lastgroup or ""
        value = m.group()
        line += value.count("\n")
        if kind not in ("ws", "comment"):
            tokens.append((kind, value, line))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str, int]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> Tuple[str, str, int]:
        if self.pos >= len(self.tokens):
            last_line = self.tokens[-1][2] if self.tokens else 1
            return ("eof", "", last_line)
        return self.tokens[self.pos]

    def _next(self) -> Tuple[str, str, int]:
        tok = self._peek()
        self.pos += 1
        return tok

    def _expect(self, kind: str, value: str = "") -> Tuple[str, str, int]:
        tok = self._next()
        if tok[0] != kind or (value and tok[1] != value):
            want = value or kind
            raise XlogSyntaxError(
                f"expected {want!r}, found {tok[1]!r}", tok[2])
        return tok

    def at_end(self) -> bool:
        return self._peek()[0] == "eof"

    def parse_term(self) -> Term:
        kind, value, line = self._next()
        if kind == "ident":
            return Var(value)
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1].replace('\\"', '"').replace("\\'", "'")
        raise XlogSyntaxError(f"expected a term, found {value!r}", line)

    def parse_atom(self) -> Atom:
        _, name, _ = self._expect("ident")
        self._expect("punct", "(")
        args: List[Term] = [self.parse_term()]
        while self._peek()[1] == ",":
            self._next()
            args.append(self.parse_term())
        self._expect("punct", ")")
        return Atom(name, tuple(args))

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        self._expect("implies")
        body: List[Atom] = [self.parse_atom()]
        while self._peek()[1] == ",":
            self._next()
            body.append(self.parse_atom())
        self._expect("punct", ".")
        return Rule(head, tuple(body))


def parse_program(text: str, name: str = "program") -> Program:
    """Parse xlog source text into a :class:`Program`."""
    parser = _Parser(_tokenize(text))
    rules: List[Rule] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    if not rules:
        raise XlogSyntaxError("empty program", 1)
    return Program(tuple(rules), name=name)


def parse_rule(text: str) -> Rule:
    """Parse a single rule (for tests and interactive use)."""
    parser = _Parser(_tokenize(text))
    rule = parser.parse_rule()
    if not parser.at_end():
        tok = parser._peek()
        raise XlogSyntaxError(f"trailing input {tok[1]!r}", tok[2])
    return rule
