"""xlog: the declarative IE language (Datalog + extraction predicates)."""

from .ast import Atom, Program, Rule, Term, Var, make_rule
from .parser import XlogSyntaxError, parse_program, parse_rule
from .registry import DOCS_PREDICATE, EvalContext, Registry
from .validation import XlogValidationError, validate_program

__all__ = [
    "Atom",
    "Program",
    "Rule",
    "Term",
    "Var",
    "make_rule",
    "parse_program",
    "parse_rule",
    "XlogSyntaxError",
    "XlogValidationError",
    "validate_program",
    "Registry",
    "EvalContext",
    "DOCS_PREDICATE",
]
