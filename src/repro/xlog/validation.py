"""Static checks on xlog programs before compilation.

Validations:

* every body predicate is bound in the registry (or is ``docs`` or the
  head of an earlier rule — rule chaining);
* no recursion (a rule may only reference heads of earlier rules) and
  no negation (the syntax has none, but we also reject reserved names);
* IE predicates are used with the right arity, and their input argument
  is bound earlier in the body (range restriction);
* p-function arguments are all bound;
* head variables all appear in the body (safety).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ast import Atom, Program, Rule, Var
from .registry import DOCS_PREDICATE, Registry


class XlogValidationError(ValueError):
    """Raised when a parsed program is not executable."""


def validate_program(program: Program, registry: Registry) -> None:
    """Raise :class:`XlogValidationError` on the first problem found."""
    derived: Dict[str, int] = {}
    for rule in program.rules:
        _validate_rule(rule, registry, derived)
        head = rule.head
        if head.pred in derived and derived[head.pred] != head.arity:
            raise XlogValidationError(
                f"head {head.pred!r} redefined with different arity")
        if registry.kind_of(head.pred) is not None:
            raise XlogValidationError(
                f"head {head.pred!r} shadows a bound predicate")
        derived[head.pred] = head.arity


def _validate_rule(rule: Rule, registry: Registry,
                   derived: Dict[str, int]) -> None:
    bound: Set[str] = set()
    for atom in rule.body:
        kind = registry.kind_of(atom.pred)
        if kind is None and atom.pred in derived:
            kind = "derived"
        if kind is None:
            if atom.pred == rule.head.pred:
                raise XlogValidationError(
                    f"recursive use of {atom.pred!r} is not supported")
            raise XlogValidationError(
                f"unknown predicate {atom.pred!r} in rule {rule}")
        if kind == "docs":
            _check_docs(atom)
            bound.update(v.name for v in atom.vars())
        elif kind == "ie":
            _check_ie(atom, registry, bound)
            bound.update(v.name for v in atom.vars())
        elif kind == "derived":
            if atom.arity != derived[atom.pred]:
                raise XlogValidationError(
                    f"{atom.pred!r} used with arity {atom.arity}, "
                    f"defined with {derived[atom.pred]}")
            bound.update(v.name for v in atom.vars())
        else:  # p-function
            _check_function(atom, registry, bound)
    unbound: List[str] = [v.name for v in rule.head.vars()
                          if v.name not in bound]
    if unbound:
        raise XlogValidationError(
            f"head variables {unbound} not bound in body of rule {rule}")


def _check_docs(atom: Atom) -> None:
    if atom.arity != 1 or not isinstance(atom.args[0], Var):
        raise XlogValidationError(
            f"{DOCS_PREDICATE} takes exactly one variable, got {atom}")


def _check_ie(atom: Atom, registry: Registry, bound: Set[str]) -> None:
    extractor = registry.extractor(atom.pred)
    expected = 1 + len(extractor.output_vars)
    if atom.arity != expected:
        raise XlogValidationError(
            f"IE predicate {atom.pred!r} takes {expected} arguments "
            f"(input + {len(extractor.output_vars)} outputs), got {atom}")
    first = atom.args[0]
    if not isinstance(first, Var):
        raise XlogValidationError(
            f"IE predicate {atom.pred!r} input must be a variable")
    if first.name not in bound:
        raise XlogValidationError(
            f"IE predicate {atom.pred!r} input {first.name!r} is not bound "
            "earlier in the body")
    for arg in atom.args[1:]:
        if not isinstance(arg, Var):
            raise XlogValidationError(
                f"IE predicate {atom.pred!r} outputs must be variables")
        if arg.name in bound:
            raise XlogValidationError(
                f"IE predicate {atom.pred!r} output {arg.name!r} is "
                "already bound (joins on IE outputs are not supported)")


def _check_function(atom: Atom, registry: Registry, bound: Set[str]) -> None:
    entry = registry.function(atom.pred)
    if atom.arity != entry.arity:
        raise XlogValidationError(
            f"p-function {atom.pred!r} takes {entry.arity} arguments, "
            f"got {atom.arity}")
    for arg in atom.vars():
        if arg.name not in bound:
            raise XlogValidationError(
                f"p-function {atom.pred!r} argument {arg.name!r} is not "
                "bound earlier in the body")
