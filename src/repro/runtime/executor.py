"""Executor backends: where page batches actually run.

An :class:`Executor` maps a module-level worker function over a list
of batch payloads and returns the results *in submission order* —
order preservation is what lets callers merge per-batch outputs back
into canonical page order with a plain concatenation.

Three backends:

* :class:`SerialExecutor` — runs batches inline. Zero overhead, the
  reference for the determinism contract.
* :class:`ThreadPoolExecutor` — a thread per job. The GIL serializes
  pure-Python extraction, but threads overlap reuse-file I/O and add
  essentially no startup or serialization cost, so they are the right
  choice for cheap blackboxes.
* :class:`ProcessPoolExecutor` — a process per job. True parallelism
  for CPU-bound blackbox work at the price of forking workers and
  pickling the shared state once per worker plus each batch payload.
  Worker functions must be module-level and all state picklable.

The auto-chooser (:func:`choose_backend`) picks between them using a
blackbox *cost hint* — the task's maximum emulated ``work_factor`` —
because process startup/pickling only amortizes when extraction is
expensive enough to dominate it.
"""

from __future__ import annotations

import concurrent.futures as _futures
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import trace as _otrace

BACKEND_NAMES = ("auto", "serial", "thread", "process")

#: Blackbox ``work_factor`` at which the auto-chooser switches from
#: threads to processes. Below this the per-page Python work is so
#: cheap that fork + pickling overhead exceeds the parallel win.
AUTO_PROCESS_WORK_FACTOR = 32

#: Worker function invoked in a process-pool worker. Installed once
#: per worker by the pool initializer so the (potentially large)
#: shared state is pickled once per worker, not once per batch.
_WORKER_FN: Optional[Callable[[Any, Any], Any]] = None
_WORKER_STATE: Any = None


def _install_worker(fn: Callable[[Any, Any], Any], state: Any) -> None:
    global _WORKER_FN, _WORKER_STATE
    _WORKER_FN = fn
    _WORKER_STATE = state


def _run_installed(item: Any) -> Tuple[float, Any]:
    assert _WORKER_FN is not None, "worker pool not initialized"
    start = time.perf_counter()
    value = _WORKER_FN(_WORKER_STATE, item)
    seconds = time.perf_counter() - start
    if _otrace.ENABLED:  # tracer installed in this worker process only
        _otrace.event("batch", cat="batch", start=start, dur=seconds)
    return (seconds, value)


def _timed_call(fn: Callable[[Any, Any], Any], state: Any,
                item: Any) -> Tuple[float, Any]:
    start = time.perf_counter()
    value = fn(state, item)
    seconds = time.perf_counter() - start
    if _otrace.ENABLED:  # one module-attribute check when tracing is off
        _otrace.event("batch", cat="batch", start=start, dur=seconds)
    return (seconds, value)


@dataclass
class WorkResult:
    """What :meth:`Executor.run_work` hands back.

    ``timed`` pairs are in *submission order* regardless of the order
    items actually completed in — callers merge exactly as they would
    a ``map_batches`` result. ``steals`` counts items an idle worker
    slot took from another slot's queue; ``slot_busy`` is the per-slot
    worker-side busy seconds (one entry per slot actually used).
    """

    timed: List[Tuple[float, Any]]
    steals: int = 0
    slot_busy: List[float] = field(default_factory=list)


class Executor(ABC):
    """Maps a worker function over batch payloads, order-preserving."""

    #: Backend identifier ("serial", "thread", "process").
    name: str = "serial"
    #: Degree of parallelism the backend aims for.
    jobs: int = 1

    @abstractmethod
    def map_batches(self, fn: Callable[[Any, Any], Any], state: Any,
                    items: Sequence[Any]) -> List[Tuple[float, Any]]:
        """Apply ``fn(state, item)`` to every item.

        Returns ``(seconds, value)`` pairs in submission order;
        ``seconds`` is the worker-side wall time of that one call.
        """

    def run_work(self, fn: Callable[[Any, Any], Any], state: Any,
                 items: Sequence[Any],
                 costs: Optional[Sequence[float]] = None) -> WorkResult:
        """Run items with cost-aware placement and work stealing.

        ``costs`` are monotone per-item cost estimates (characters);
        pooled backends use them for largest-first initial placement.
        The base implementation just wraps :meth:`map_batches` — the
        serial backend has nothing to steal.
        """
        timed = self.map_batches(fn, state, items)
        return WorkResult(timed=timed,
                          slot_busy=[sum(s for s, _ in timed)])

    def describe(self) -> str:
        return f"{self.name}(jobs={self.jobs})"


def _steal_run(submit: Callable[[Any], "_futures.Future"],
               items: Sequence[Any], costs: Sequence[float],
               slots: int) -> WorkResult:
    """Shared work-stealing loop for the pooled backends.

    LPT initial placement: items sorted by descending cost are dealt
    greedily onto the currently-lightest slot's deque. Each slot keeps
    one in-flight future; on completion it pops the front of its own
    deque, or — when empty — steals from the *back* of the slot with
    the most remaining estimated cost. Backs are the cheap end under
    LPT placement, so a steal grabs the victim's smallest pending item
    and perturbs its locality least.
    """
    from collections import deque

    n = len(items)
    order = sorted(range(n), key=lambda i: (-costs[i], i))
    queues: List[deque] = [deque() for _ in range(slots)]
    loads = [0.0] * slots
    for i in order:
        slot = min(range(slots), key=lambda s: (loads[s], s))
        queues[slot].append(i)
        loads[slot] += costs[i]
    results: List[Optional[Tuple[float, Any]]] = [None] * n
    slot_busy = [0.0] * slots
    steals = 0
    inflight: dict = {}  # future -> (slot, item index)

    def dispatch(slot: int) -> bool:
        nonlocal steals
        if queues[slot]:
            i = queues[slot].popleft()
        else:
            victim = max((s for s in range(slots) if queues[s]),
                         key=lambda s: (loads[s], -s), default=None)
            if victim is None:
                return False
            i = queues[victim].pop()
            loads[victim] -= costs[i]
            loads[slot] += costs[i]
            steals += 1
        inflight[submit(items[i])] = (slot, i)
        return True

    for slot in range(slots):
        dispatch(slot)
    while inflight:
        done, _ = _futures.wait(list(inflight),
                                return_when=_futures.FIRST_COMPLETED)
        for fut in done:
            slot, i = inflight.pop(fut)
            seconds, value = fut.result()
            results[i] = (seconds, value)
            slot_busy[slot] += seconds
            loads[slot] -= costs[i]
            dispatch(slot)
    return WorkResult(timed=[r for r in results if r is not None],
                      steals=steals, slot_busy=slot_busy)


class SerialExecutor(Executor):
    """Run every batch inline in the calling thread."""

    name = "serial"
    jobs = 1

    def map_batches(self, fn: Callable[[Any, Any], Any], state: Any,
                    items: Sequence[Any]) -> List[Tuple[float, Any]]:
        return [_timed_call(fn, state, item) for item in items]


class ThreadPoolExecutor(Executor):
    """Run batches on a shared-memory thread pool."""

    name = "thread"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def map_batches(self, fn: Callable[[Any, Any], Any], state: Any,
                    items: Sequence[Any]) -> List[Tuple[float, Any]]:
        if not items:
            return []
        workers = min(self.jobs, len(items))
        with _futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_timed_call, fn, state, item)
                       for item in items]
            return [f.result() for f in futures]

    def run_work(self, fn: Callable[[Any, Any], Any], state: Any,
                 items: Sequence[Any],
                 costs: Optional[Sequence[float]] = None) -> WorkResult:
        if not items:
            return WorkResult(timed=[])
        if costs is None:
            costs = [1.0] * len(items)
        workers = min(self.jobs, len(items))
        with _futures.ThreadPoolExecutor(max_workers=workers) as pool:
            return _steal_run(
                lambda item: pool.submit(_timed_call, fn, state, item),
                items, costs, workers)


class ProcessPoolExecutor(Executor):
    """Run batches on an OS-process pool (true CPU parallelism).

    ``fn`` must be a module-level function and ``state``/payloads must
    be picklable. Prefers the ``fork`` start method when the platform
    offers it (cheap worker startup, Linux/macOS); falls back to the
    platform default otherwise.
    """

    name = "process"

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def map_batches(self, fn: Callable[[Any, Any], Any], state: Any,
                    items: Sequence[Any]) -> List[Tuple[float, Any]]:
        if not items:
            return []
        workers = min(self.jobs, len(items))
        ctx = multiprocessing.get_context(self.start_method)
        with _futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
                initializer=_install_worker,
                initargs=(fn, state)) as pool:
            return list(pool.map(_run_installed, items))

    def run_work(self, fn: Callable[[Any, Any], Any], state: Any,
                 items: Sequence[Any],
                 costs: Optional[Sequence[float]] = None) -> WorkResult:
        if not items:
            return WorkResult(timed=[])
        if costs is None:
            costs = [1.0] * len(items)
        workers = min(self.jobs, len(items))
        ctx = multiprocessing.get_context(self.start_method)
        with _futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
                initializer=_install_worker,
                initargs=(fn, state)) as pool:
            return _steal_run(
                lambda item: pool.submit(_run_installed, item),
                items, costs, workers)


def choose_backend(jobs: int, cost_hint: float = 0.0,
                   cpu_count: Optional[int] = None) -> str:
    """Pick a backend name from the job count, blackbox cost, and CPUs.

    ``cost_hint`` is the task's heaviest emulated ``work_factor`` (or
    any monotone proxy for per-character extraction cost). Serial when
    nothing to parallelize — including when the machine has a single
    CPU, where a process pool only adds fork+pickle overhead (the
    0.94x regression in BENCH_runtime.json); processes when extraction
    is CPU-heavy enough to amortize fork+pickle; threads for cheap
    blackboxes where only I/O overlap is worth having.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    if jobs <= 1 or cpu_count <= 1:
        return "serial"
    if cost_hint >= AUTO_PROCESS_WORK_FACTOR:
        return "process"
    return "thread"


def make_executor(backend: str = "auto", jobs: int = 1,
                  cost_hint: float = 0.0,
                  cpu_count: Optional[int] = None) -> Executor:
    """Build an executor; ``backend='auto'`` applies :func:`choose_backend`."""
    if backend not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {backend!r}; choose from "
                         f"{BACKEND_NAMES}")
    if backend == "auto":
        backend = choose_backend(jobs, cost_hint, cpu_count)
    if backend == "serial" or jobs <= 1:
        return SerialExecutor()
    if backend == "thread":
        return ThreadPoolExecutor(jobs)
    return ProcessPoolExecutor(jobs)
