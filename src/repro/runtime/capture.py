"""Capture sinks: how per-page capture records reach the reuse files.

The reuse engine records, per IE unit and page, the unit's input
regions (``I_U``) and output tuples (``O_U``). Serial runs write them
straight to :class:`~repro.reuse.files.ReuseFileWriter`s. Parallel
workers cannot share those writers — tuple ids are assigned by a
per-file counter and pages must land in canonical order — so workers
record into in-memory :class:`PageCapture` buffers instead, and the
parent replays the buffers into the real writers afterwards.

The replay (:func:`replay_captures`) walks pages in canonical order
and re-emits every record through the writer API, which reassigns
tuple ids with the writers' own counters. Because the serial engine
emits the very same sequence of writer calls, the merged files are
**byte-identical** to a serial run's — the determinism contract the
next snapshot's recycling relies on.

Both sinks expose one interface so the engine's per-unit code is
oblivious to which mode it runs in:

* ``begin_page(did)`` — open a page group in every unit's files;
* ``append_input(uid, did, s, e, c) -> tid`` — record an input tuple,
  returning the id output tuples must reference;
* ``append_output(uid, did, itid, fields)`` — record an output tuple.

For :class:`DirectCaptureSink` the returned tid is the writer's real
tuple id; for :class:`BufferedCaptureSink` it is a page-local index
that the replay translates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..reuse.files import ReuseFileWriter

WriterPair = Tuple[ReuseFileWriter, ReuseFileWriter]


@dataclass
class PageCapture:
    """All capture records of one page, across all units.

    ``inputs[uid]`` holds ``(s, e, c)`` triples in emission order;
    ``outputs[uid]`` holds ``(local_itid, fields)`` pairs where
    ``local_itid`` indexes into ``inputs[uid]``.
    """

    did: str
    inputs: Dict[str, List[Tuple[int, int, str]]] = field(
        default_factory=dict)
    outputs: Dict[str, List[Tuple[int, Tuple]]] = field(
        default_factory=dict)

    def records(self) -> int:
        return (sum(len(v) for v in self.inputs.values())
                + sum(len(v) for v in self.outputs.values()))


class DirectCaptureSink:
    """Serial mode: pass records straight to the real writers."""

    def __init__(self, writers: Dict[str, WriterPair]) -> None:
        self._writers = writers

    def begin_page(self, did: str) -> None:
        for writer_i, writer_o in self._writers.values():
            writer_i.begin_page(did)
            writer_o.begin_page(did)

    def append_input(self, uid: str, did: str, s: int, e: int,
                     c: str = "") -> int:
        return self._writers[uid][0].append_input(did, s, e, c)

    def append_output(self, uid: str, did: str, itid: int,
                      fields: Tuple) -> None:
        self._writers[uid][1].append_output(did, itid, fields)


class BufferedCaptureSink:
    """Worker mode: record into per-page buffers for a later replay.

    Buffers are allocated lazily on the first record of a (page, uid)
    pair — a page group that records nothing costs one
    :class:`PageCapture` with two empty dicts, not ``2 × len(uids)``
    list allocations (which used to dominate replay-merge cost for
    mostly-recycled snapshots).
    """

    def __init__(self, uids: Sequence[str]) -> None:
        self._uids = tuple(uids)
        self.pages: List[PageCapture] = []

    def _current(self) -> PageCapture:
        if not self.pages:
            raise ValueError("no page group started")
        return self.pages[-1]

    def begin_page(self, did: str) -> None:
        self.pages.append(PageCapture(did=did))

    def append_input(self, uid: str, did: str, s: int, e: int,
                     c: str = "") -> int:
        page = self._current()
        if page.did != did:
            raise ValueError(f"page group {did!r} not current "
                             f"({page.did!r} is)")
        bucket = page.inputs.setdefault(uid, [])
        bucket.append((s, e, c))
        return len(bucket) - 1

    def append_output(self, uid: str, did: str, itid: int,
                      fields: Tuple) -> None:
        page = self._current()
        if page.did != did:
            raise ValueError(f"page group {did!r} not current "
                             f"({page.did!r} is)")
        page.outputs.setdefault(uid, []).append((itid, fields))


@dataclass
class ReplayStats:
    """What one capture replay actually did.

    ``skipped`` counts (page, uid) groups whose record loops were
    skipped because the buffer was empty — the page header is still
    written (the reuse-file format emits a ``@page`` line per page
    unconditionally), but no per-record work or tid-map allocation
    happens.
    """

    pages: int = 0
    records: int = 0
    skipped: int = 0


def replay_captures(captures: Iterable[PageCapture],
                    writers: Dict[str, WriterPair]) -> ReplayStats:
    """Merge buffered captures into the real reuse files.

    ``captures`` must be in canonical page order — with LPT batches
    the caller assembles that order by page id before replaying.
    Tuple ids are reassigned by the writers' own counters, reproducing
    the byte stream a serial run would have written.
    """
    stats = ReplayStats()
    for page in captures:
        stats.pages += 1
        for uid, (writer_i, writer_o) in writers.items():
            writer_i.begin_page(page.did)
            writer_o.begin_page(page.did)
            inputs = page.inputs.get(uid, ())
            outputs = page.outputs.get(uid, ())
            if not inputs and not outputs:
                stats.skipped += 1
                continue
            tid_map = [writer_i.append_input(page.did, s, e, c)
                       for s, e, c in inputs]
            for local_itid, fields in outputs:
                writer_o.append_output(page.did, tid_map[local_itid],
                                       fields)
            stats.records += len(inputs) + len(outputs)
    return stats
