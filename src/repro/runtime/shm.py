"""Shared-memory page text: ship the snapshot's text to workers once.

The process backend used to pickle every page string into every batch
payload — for a snapshot of N pages sent to W workers that is O(total
text) serialized per *batch*, and the dominant cost for cheap
extractors. This module packs all page texts into one
``multiprocessing.shared_memory`` segment up front; work items then
carry only ``(byte offset, byte length)`` table entries and workers
decode each page lazily (and cache the decoded ``str``, since Python
extraction code needs ``str`` offsets, not bytes).

Three handle flavors behind one ``text(did)`` interface:

* :class:`LocalArenaHandle` — serial/thread backends share the parent
  address space; the handle is a plain dict of references.
* :class:`SharedArenaHandle` — process backend with shared memory
  available; pickles as ``(segment name, offset table)`` only.
* :class:`InlineArenaHandle` — fallback when shared memory is missing
  (or creation failed): texts are pickled once per worker via the
  pool initializer, which is still once-per-worker instead of
  once-per-batch.

The parent owns the segment lifetime: :meth:`TextArena.close` unlinks
it after the run. Worker processes attach lazily on first ``text()``
call and deregister from the resource tracker, which on pre-3.13
Pythons would otherwise unlink the segment when the first worker
exits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

_SHM_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Can this platform create POSIX shared memory? Probed once."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True, size=1)
            seg.close()
            seg.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


class LocalArenaHandle:
    """Same-address-space handle: plain references, zero copies."""

    kind = "local"

    def __init__(self, texts: Dict[str, str]) -> None:
        self._texts = texts

    def text(self, did: str) -> str:
        return self._texts[did]


class InlineArenaHandle:
    """Fallback process handle: texts pickled once per worker."""

    kind = "inline"

    def __init__(self, texts: Dict[str, str]) -> None:
        self._texts = texts

    def text(self, did: str) -> str:
        return self._texts[did]


class SharedArenaHandle:
    """Process handle backed by one shared-memory segment.

    Pickles as ``(name, table)``; the attached segment and the decoded
    page cache are per-process and rebuilt lazily on first use.
    """

    kind = "shared"

    def __init__(self, name: str,
                 table: Dict[str, Tuple[int, int]]) -> None:
        self.name = name
        self.table = table
        self._seg = None
        self._cache: Dict[str, str] = {}

    def __getstate__(self):
        return {"name": self.name, "table": self.table}

    def __setstate__(self, state):
        self.name = state["name"]
        self.table = state["table"]
        self._seg = None
        self._cache = {}

    def _attach(self):
        if self._seg is None:
            from multiprocessing import shared_memory
            self._seg = shared_memory.SharedMemory(name=self.name)
            try:
                # Pre-3.13 the child's resource tracker unlinks the
                # segment at worker exit; the parent owns unlinking.
                from multiprocessing import resource_tracker
                resource_tracker.unregister(self._seg._name,
                                            "shared_memory")
            except Exception:
                pass
        return self._seg

    def text(self, did: str) -> str:
        cached = self._cache.get(did)
        if cached is None:
            off, length = self.table[did]
            seg = self._attach()
            view = memoryview(seg.buf)[off:off + length]
            cached = str(view, "utf-8")
            view.release()
            self._cache[did] = cached
        return cached


class TextArena:
    """Parent-side owner of the page-text transport for one run."""

    def __init__(self, handle, seg=None) -> None:
        self.handle = handle
        self._seg = seg

    @property
    def shared(self) -> bool:
        return self.handle.kind == "shared"

    def text(self, did: str) -> str:
        return self.handle.text(did)

    def close(self) -> None:
        if self._seg is not None:
            try:
                self._seg.close()
            finally:
                self._seg.unlink()
            self._seg = None


def build_arena(texts: Dict[str, str], backend_name: str) -> TextArena:
    """Pack page texts for transport to the given backend.

    Serial/thread backends share memory already; the process backend
    gets a shared segment when the platform supports it, else the
    inline once-per-worker fallback.
    """
    if backend_name != "process":
        return TextArena(LocalArenaHandle(texts))
    if not shm_available():
        return TextArena(InlineArenaHandle(texts))
    from multiprocessing import shared_memory
    encoded = {did: text.encode("utf-8") for did, text in texts.items()}
    total = sum(len(b) for b in encoded.values())
    try:
        seg = shared_memory.SharedMemory(create=True,
                                         size=max(1, total))
    except Exception:
        return TextArena(InlineArenaHandle(texts))
    table: Dict[str, Tuple[int, int]] = {}
    off = 0
    for did, data in encoded.items():
        seg.buf[off:off + len(data)] = data
        table[did] = (off, len(data))
        off += len(data)
    handle = SharedArenaHandle(seg.name, table)
    handle._seg = seg  # parent reads without re-attaching
    return TextArena(handle, seg=seg)
