"""Runtime metrics: what did the parallel run actually do?

Per-batch wall time, worker utilization, pages/sec, steal and split
counts for one snapshot run. The systems attach a
:class:`RuntimeMetrics` to their :class:`~repro.timing.Timings`
(``timings.runtime``) so callers that already consume timing
decompositions get runtime telemetry through the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.util import safe_rate
from .scheduler import PageBatch


@dataclass(frozen=True)
class BatchMetric:
    """One work item's execution record.

    ``kind`` distinguishes whole-page batches (``"pages"``) from
    sub-page split parts (``"part"``); part items report ``pages=0``
    so page counts aren't inflated by splitting.
    """

    index: int
    pages: int
    chars: int
    seconds: float
    kind: str = "pages"


@dataclass
class RuntimeMetrics:
    """Aggregate runtime telemetry for one snapshot run."""

    backend: str
    jobs: int
    wall_seconds: float
    batches: List[BatchMetric]
    #: Work items an idle worker stole from another worker's queue.
    steals: int = 0
    #: Pages that were split into sub-page parts.
    split_pages: int = 0
    #: Total sub-page parts those pages produced.
    split_parts: int = 0
    #: Whether page text traveled via a shared-memory segment.
    shared_text: bool = False
    #: Per-worker-slot busy seconds (empty when unknown).
    slot_busy: List[float] = field(default_factory=list)

    @property
    def pages(self) -> int:
        """Pages processed — split pages count once, via their parent."""
        return sum(b.pages for b in self.batches) + self.split_pages

    @property
    def busy_seconds(self) -> float:
        """Sum of worker-side batch times (can exceed wall time)."""
        return sum(b.seconds for b in self.batches)

    @property
    def pages_per_second(self) -> float:
        """Pages over wall seconds; 0.0 on a zero/degenerate clock."""
        return safe_rate(self.pages, self.wall_seconds)

    @property
    def worker_utilization(self) -> float:
        """Busy time over available worker time, in [0, 1].

        0.0 whenever the denominator is degenerate (instant run,
        ``jobs == 0``) — never a ``ZeroDivisionError`` or ``nan``.
        """
        return min(1.0, safe_rate(self.busy_seconds,
                                  self.jobs * self.wall_seconds))

    @property
    def worker_busy_fractions(self) -> List[float]:
        """Per-slot busy fraction of wall time, each capped at 1.0."""
        return [min(1.0, safe_rate(busy, self.wall_seconds))
                for busy in self.slot_busy]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the shared ``to_dict`` contract)."""
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "pages": self.pages,
            "batches": len(self.batches),
            "busy_seconds": self.busy_seconds,
            "pages_per_second": self.pages_per_second,
            "worker_utilization": self.worker_utilization,
            "steals": self.steals,
            "split_pages": self.split_pages,
            "split_parts": self.split_parts,
            "shared_text": self.shared_text,
            "worker_busy_fractions": self.worker_busy_fractions,
        }

    #: Backwards-compatible alias (pre-serve callers used ``as_dict``).
    as_dict = to_dict

    def describe(self) -> str:
        extra = ""
        if self.steals:
            extra += f" steals={self.steals}"
        if self.split_pages:
            extra += f" splits={self.split_pages}/{self.split_parts}"
        if self.shared_text:
            extra += " shm"
        return (f"{self.backend} jobs={self.jobs} "
                f"batches={len(self.batches)} "
                f"pages/s={self.pages_per_second:.1f} "
                f"util={self.worker_utilization:.0%}" + extra)


def build_metrics(backend: str, jobs: int, wall_seconds: float,
                  batches: Sequence[PageBatch],
                  batch_seconds: Sequence[float],
                  merge_with: Optional[RuntimeMetrics] = None,
                  extra_batches: Sequence[BatchMetric] = (),
                  steals: int = 0, split_pages: int = 0,
                  split_parts: int = 0, shared_text: bool = False,
                  slot_busy: Sequence[float] = ()) -> RuntimeMetrics:
    """Assemble metrics from scheduler batches and measured times.

    ``extra_batches`` carries non-PageBatch work items (sub-page
    parts). ``merge_with`` folds in a prior phase's metrics: batch
    records and wall time concatenate/add, counters add, and slot busy
    vectors add elementwise when the slot counts match (same pool
    shape) or concatenate otherwise.
    """
    if len(batches) != len(batch_seconds):
        raise ValueError("one measured time per batch required")
    records = [BatchMetric(index=b.index, pages=len(b), chars=b.chars,
                           seconds=s)
               for b, s in zip(batches, batch_seconds)]
    records.extend(extra_batches)
    busy = list(slot_busy)
    if merge_with is not None:
        records = list(merge_with.batches) + records
        wall_seconds += merge_with.wall_seconds
        steals += merge_with.steals
        split_pages += merge_with.split_pages
        split_parts += merge_with.split_parts
        shared_text = shared_text or merge_with.shared_text
        if merge_with.slot_busy:
            if len(merge_with.slot_busy) == len(busy):
                busy = [a + b for a, b in zip(merge_with.slot_busy, busy)]
            else:
                busy = list(merge_with.slot_busy) + busy
    return RuntimeMetrics(backend=backend, jobs=jobs,
                          wall_seconds=wall_seconds, batches=records,
                          steals=steals, split_pages=split_pages,
                          split_parts=split_parts,
                          shared_text=shared_text, slot_busy=busy)