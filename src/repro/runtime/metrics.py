"""Runtime metrics: what did the parallel run actually do?

Per-batch wall time, worker utilization, and pages/sec for one
snapshot run. The systems attach a :class:`RuntimeMetrics` to their
:class:`~repro.timing.Timings` (``timings.runtime``) so callers that
already consume timing decompositions get runtime telemetry through
the same object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs.util import safe_rate
from .scheduler import PageBatch


@dataclass(frozen=True)
class BatchMetric:
    """One batch's execution record."""

    index: int
    pages: int
    chars: int
    seconds: float


@dataclass
class RuntimeMetrics:
    """Aggregate runtime telemetry for one snapshot run."""

    backend: str
    jobs: int
    wall_seconds: float
    batches: List[BatchMetric]

    @property
    def pages(self) -> int:
        return sum(b.pages for b in self.batches)

    @property
    def busy_seconds(self) -> float:
        """Sum of worker-side batch times (can exceed wall time)."""
        return sum(b.seconds for b in self.batches)

    @property
    def pages_per_second(self) -> float:
        """Pages over wall seconds; 0.0 on a zero/degenerate clock."""
        return safe_rate(self.pages, self.wall_seconds)

    @property
    def worker_utilization(self) -> float:
        """Busy time over available worker time, in [0, 1].

        0.0 whenever the denominator is degenerate (instant run,
        ``jobs == 0``) — never a ``ZeroDivisionError`` or ``nan``.
        """
        return min(1.0, safe_rate(self.busy_seconds,
                                  self.jobs * self.wall_seconds))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the shared ``to_dict`` contract)."""
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "pages": self.pages,
            "batches": len(self.batches),
            "busy_seconds": self.busy_seconds,
            "pages_per_second": self.pages_per_second,
            "worker_utilization": self.worker_utilization,
        }

    #: Backwards-compatible alias (pre-serve callers used ``as_dict``).
    as_dict = to_dict

    def describe(self) -> str:
        return (f"{self.backend} jobs={self.jobs} "
                f"batches={len(self.batches)} "
                f"pages/s={self.pages_per_second:.1f} "
                f"util={self.worker_utilization:.0%}")


def build_metrics(backend: str, jobs: int, wall_seconds: float,
                  batches: Sequence[PageBatch],
                  batch_seconds: Sequence[float],
                  merge_with: Optional[RuntimeMetrics] = None
                  ) -> RuntimeMetrics:
    """Assemble metrics from scheduler batches and measured times."""
    if len(batches) != len(batch_seconds):
        raise ValueError("one measured time per batch required")
    records = [BatchMetric(index=b.index, pages=len(b), chars=b.chars,
                           seconds=s)
               for b, s in zip(batches, batch_seconds)]
    if merge_with is not None:
        records = list(merge_with.batches) + records
        wall_seconds += merge_with.wall_seconds
    return RuntimeMetrics(backend=backend, jobs=jobs,
                          wall_seconds=wall_seconds, batches=records)
