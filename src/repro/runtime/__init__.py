"""repro.runtime — parallel page-partitioned execution runtime.

Every system processes a snapshot as a sequence of independent
per-page decisions (match / copy / extract); that is exactly the
*split-correctness* property that makes page-level IE embarrassingly
parallel. This package factors the "walk the pages" loop out of the
four systems into a shared, pluggable runtime:

* :mod:`~repro.runtime.executor` — the :class:`Executor` interface
  with serial, thread-pool, and process-pool backends, a work-stealing
  :meth:`~Executor.run_work` loop, and an auto-chooser keyed on
  blackbox cost *and* the machine's CPU count;
* :mod:`~repro.runtime.scheduler` — :class:`PageScheduler`, which
  packs pages into size-balanced batches largest-first (LPT), so the
  heaviest page can never strand alone at the schedule's tail;
* :mod:`~repro.runtime.split` — split-correct sub-page work items:
  pages that dominate a snapshot are cut at (α, β)-safe boundaries
  into :class:`PagePart`\\ s whose merged output is byte-identical to
  a whole-page run;
* :mod:`~repro.runtime.shm` — the shared-memory text arena: process
  workers attach one :mod:`multiprocessing.shared_memory` segment and
  work items carry page ids, not pickled text;
* :mod:`~repro.runtime.capture` — per-worker capture buffers and the
  deterministic replay that merges them into the snapshot's reuse
  files **byte-identically** to a serial run;
* :mod:`~repro.runtime.metrics` — per-item wall time, worker
  utilization, steal/split counts, and pages/sec accounting surfaced
  through :mod:`repro.timing`.

Determinism contract: for any executor backend and job count, a
system must produce (1) identical canonical results and (2)
byte-identical reuse/capture files compared to a serial run. All
merges are keyed by canonical page id (LPT batches interleave the
page order), split parts concatenate in part order (ownership by
extent start is a stable partition of the serial sequence), and the
capture replay reassigns tuple ids exactly as a serial writer would,
so the next snapshot's recycling is oblivious to how the previous
run was parallelized.
"""

from .capture import (
    BufferedCaptureSink,
    DirectCaptureSink,
    PageCapture,
    ReplayStats,
    replay_captures,
)
from .executor import (
    AUTO_PROCESS_WORK_FACTOR,
    BACKEND_NAMES,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    WorkResult,
    choose_backend,
    make_executor,
)
from .metrics import BatchMetric, RuntimeMetrics, build_metrics
from .scheduler import PageBatch, PageScheduler, merge_batch_lists, pack_lpt
from .shm import (
    InlineArenaHandle,
    LocalArenaHandle,
    SharedArenaHandle,
    TextArena,
    build_arena,
    shm_available,
)
from .split import (
    PagePart,
    PartPoisoned,
    SplitConfig,
    part_extensions,
    plan_parts,
)

__all__ = [
    "AUTO_PROCESS_WORK_FACTOR",
    "BACKEND_NAMES",
    "BatchMetric",
    "BufferedCaptureSink",
    "DirectCaptureSink",
    "Executor",
    "InlineArenaHandle",
    "LocalArenaHandle",
    "PageBatch",
    "PageCapture",
    "PagePart",
    "PageScheduler",
    "PartPoisoned",
    "ProcessPoolExecutor",
    "ReplayStats",
    "RuntimeMetrics",
    "SerialExecutor",
    "SharedArenaHandle",
    "SplitConfig",
    "TextArena",
    "ThreadPoolExecutor",
    "WorkResult",
    "build_arena",
    "build_metrics",
    "choose_backend",
    "make_executor",
    "merge_batch_lists",
    "pack_lpt",
    "part_extensions",
    "plan_parts",
    "replay_captures",
    "shm_available",
]
