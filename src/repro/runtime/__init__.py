"""repro.runtime — parallel page-partitioned execution runtime.

Every system processes a snapshot as a sequence of independent
per-page decisions (match / copy / extract); that is exactly the
*split-correctness* property that makes page-level IE embarrassingly
parallel. This package factors the "walk the pages" loop out of the
four systems into a shared, pluggable runtime:

* :mod:`~repro.runtime.executor` — the :class:`Executor` interface
  with serial, thread-pool, and process-pool backends plus an
  auto-chooser keyed on blackbox cost;
* :mod:`~repro.runtime.scheduler` — :class:`PageScheduler`, which
  cuts the canonical page order into contiguous, size-balanced
  batches so a deterministic merge is a plain concatenation;
* :mod:`~repro.runtime.capture` — per-worker capture buffers and the
  deterministic replay that merges them into the snapshot's reuse
  files **byte-identically** to a serial run;
* :mod:`~repro.runtime.metrics` — lightweight per-batch wall time,
  worker utilization, and pages/sec accounting surfaced through
  :mod:`repro.timing`.

Determinism contract: for any executor backend and job count, a
system must produce (1) identical canonical results and (2)
byte-identical reuse/capture files compared to a serial run. The
scheduler preserves canonical page order across the batch boundary
and the capture replay reassigns tuple ids exactly as a serial writer
would, so the next snapshot's recycling is oblivious to how the
previous run was parallelized.
"""

from .capture import (
    BufferedCaptureSink,
    DirectCaptureSink,
    PageCapture,
    replay_captures,
)
from .executor import (
    AUTO_PROCESS_WORK_FACTOR,
    BACKEND_NAMES,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    choose_backend,
    make_executor,
)
from .metrics import BatchMetric, RuntimeMetrics, build_metrics
from .scheduler import PageBatch, PageScheduler, merge_batch_lists

__all__ = [
    "AUTO_PROCESS_WORK_FACTOR",
    "BACKEND_NAMES",
    "BatchMetric",
    "BufferedCaptureSink",
    "DirectCaptureSink",
    "Executor",
    "PageBatch",
    "PageCapture",
    "PageScheduler",
    "ProcessPoolExecutor",
    "RuntimeMetrics",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "build_metrics",
    "choose_backend",
    "make_executor",
    "merge_batch_lists",
    "replay_captures",
]
