"""Split-correct sub-page work items.

Large pages serialize a parallel run: one worker grinds through the
giant page while the rest sit idle. The split-correctness framework
(Doleschal et al.; see PAPERS.md) says exactly when a document may be
cut *within* a page without changing extractor output, and the (α, β)
declarations every extractor already carries (Definitions 2–3 of the
paper) supply the safe geometry:

* **scope α** bounds every extraction's extent width (< α), and
* **context β** bounds how far the decision to produce an extraction
  can look beyond its extent.

So if a part *owns* the half-open character range ``[lo, hi)`` of a
page and extracts from the widened chunk
``[max(0, lo − β), min(L, hi + α + β))``, then every extraction whose
extent starts inside ``[lo, hi)`` is produced with its full β-context
visible (or clipped at a true page boundary, which the serial run
clips identically), and is therefore byte-for-byte the extraction the
serial run produces. Keeping exactly the owned extractions in each
part and concatenating parts in order reproduces the serial output:
extractors emit extractions in nondecreasing extent-start order, so
per-part ownership is a stable partition of the serial sequence.

The one escape hatch: an extraction with no span fields has no extent
and therefore no owner. Such a part is *poisoned* — the parent
discards all part results for that unit and falls back to whole-page
extraction, which is always correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..plan.operators import IENode


class PartPoisoned(Exception):
    """A part produced an extraction with no extent (no span fields).

    Ownership is decided by extent start, so span-less extractions
    cannot be attributed to a part; the parent must redo the whole
    page serially for that unit.
    """


@dataclass(frozen=True)
class PagePart:
    """One owned slice ``[lo, hi)`` of a page's character range.

    The chunk a unit actually extracts from depends on that unit's
    (α, β) — different frontier units widen the same owned range by
    different margins — so the part stores only the ownership geometry
    and :meth:`chunk` computes the per-unit window.
    """

    did: str
    index: int
    n_parts: int
    lo: int
    hi: int
    length: int  # full page length, for clipping

    def chunk(self, alpha: int, beta: int) -> Tuple[int, int]:
        """The widened window this part extracts from for a unit with
        the given (α, β): every extraction starting in ``[lo, hi)``
        fits inside it together with its β-context."""
        return (max(0, self.lo - beta),
                min(self.length, self.hi + alpha + beta))


@dataclass(frozen=True)
class SplitConfig:
    """Knobs for when and how pages are split into parts.

    A page is split only when it is both absolutely large
    (``2 * min_part_chars``) and relatively dominant
    (``threshold_factor`` times the fair per-worker share) — splitting
    balanced corpora is pure margin overhead.
    """

    enabled: bool = True
    min_part_chars: int = 512
    threshold_factor: float = 1.25

    def should_split(self, page_len: int, total_chars: int,
                     jobs: int) -> bool:
        if not self.enabled or jobs <= 1:
            return False
        fair_share = total_chars / max(1, jobs)
        return page_len >= max(2 * self.min_part_chars,
                               self.threshold_factor * fair_share)


def plan_parts(did: str, length: int, jobs: int, config: SplitConfig,
               alpha: int, beta: int) -> List[PagePart]:
    """Cut one page into at most ``jobs`` owned parts.

    ``alpha``/``beta`` are the maxima over the frontier units that
    will extract from these parts; the part width floor
    ``2 * (α + 2β)`` keeps the widened chunks from overlapping so much
    that the margins dominate the owned text (overhead ≤ ~50%).
    """
    if length <= 0 or jobs <= 1:
        return []
    floor = max(config.min_part_chars, 2 * (alpha + 2 * beta))
    n_parts = min(jobs, max(1, length // max(1, floor)))
    if n_parts <= 1:
        return []
    cuts = [round(i * length / n_parts) for i in range(n_parts + 1)]
    return [PagePart(did=did, index=i, n_parts=n_parts,
                     lo=cuts[i], hi=cuts[i + 1], length=length)
            for i in range(n_parts)]


def part_extensions(ie_node: IENode, text: str,
                    part: PagePart) -> List[Dict[str, object]]:
    """Run one IE node over one part's chunk; return the extension
    dicts (absolute offsets) for extractions the part owns.

    Byte-identical to the slice of the serial whole-page run whose
    extent starts fall in ``[part.lo, part.hi)``. Raises
    :class:`PartPoisoned` on a span-less extraction.
    """
    extractor = ie_node.extractor
    lo, hi = part.chunk(extractor.scope, extractor.context)
    chunk_text = text[lo:hi]
    from ..text.document import Span  # local import avoids a cycle
    chunk_span = Span(part.did, lo, hi)
    owned: List[Dict[str, object]] = []
    for extraction in extractor.extract(chunk_text):
        extent = extraction.extent()
        if extent is None:
            raise PartPoisoned(
                f"{extractor.name} produced a span-less extraction; "
                f"part {part.index} of {part.did} cannot own it")
        abs_start = lo + extent[0]
        if part.lo <= abs_start < part.hi:
            owned.append(ie_node.extension_fields(extraction, chunk_span))
    return owned
