"""Page scheduling: pack the canonical page order into balanced batches.

The scheduler partitions a page sequence into size-balanced batches.
Historically these were **contiguous** slices closed greedily at a
fair-share target — which could place the single largest page *last*
in a batch and make wall-clock equal the tail page. Batches are now
packed **largest-first** (LPT greedy): pages sorted by descending
weight are dealt onto the currently-lightest batch, which bounds the
heaviest batch at (4/3 − 1/(3m)) × optimal and, more importantly,
guarantees the largest page lands in a batch alone whenever that is
the balanced choice.

The price of LPT is that batches are no longer contiguous slices of
the canonical order, so per-batch outputs can no longer be merged by
plain concatenation — the systems merge by canonical page id instead
(see :mod:`repro.runtime.capture`). Pages *within* one batch stay in
canonical order, so per-batch processing and capture buffers remain
deterministic.

Weights are total page length in characters — the best cheap proxy
for per-page IE cost: extraction, matching, and copy work all scale
with region characters. A mild oversubscription factor
(``batches_per_job``) creates more batches than workers so the
work-stealing executor has spare items to steal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, TypeVar

from ..text.document import Page

T = TypeVar("T")

#: Default batches per worker: enough slack to smooth page-length skew
#: without drowning the run in per-batch overhead.
DEFAULT_BATCHES_PER_JOB = 4


@dataclass(frozen=True)
class PageBatch:
    """A set of pages processed together, in canonical relative order."""

    index: int
    pages: Tuple[Page, ...]

    @property
    def chars(self) -> int:
        return sum(len(p.text) for p in self.pages)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)


def pack_lpt(weights: Sequence[float], n_bins: int
             ) -> List[List[int]]:
    """LPT greedy: deal indices, heaviest first, onto the lightest bin.

    Returns per-bin index lists; indices within a bin are in original
    order, and bins are ordered by their smallest index so downstream
    numbering is deterministic. Empty bins are dropped.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    order = sorted(range(len(weights)),
                   key=lambda i: (-weights[i], i))
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    loads = [0.0] * n_bins
    for i in order:
        b = min(range(n_bins), key=lambda s: (loads[s], s))
        bins[b].append(i)
        loads[b] += weights[i]
    packed = [sorted(b) for b in bins if b]
    packed.sort(key=lambda b: b[0])
    return packed


class PageScheduler:
    """Builds size-balanced page batches via largest-first packing."""

    def __init__(self, batches_per_job: int = DEFAULT_BATCHES_PER_JOB) -> None:
        if batches_per_job < 1:
            raise ValueError("batches_per_job must be >= 1")
        self.batches_per_job = batches_per_job

    def plan(self, pages: Sequence[Page], jobs: int) -> List[PageBatch]:
        """Partition ``pages`` into at most ``jobs * batches_per_job``
        batches with near-equal character totals.

        Every page appears in exactly one batch; pages within a batch
        are in canonical order; batches are ordered by the canonical
        position of their first page; no batch is empty.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not pages:
            return []
        n_batches = min(len(pages), jobs * self.batches_per_job)
        # Weight 1 + len(text): even empty pages carry bookkeeping cost,
        # and it keeps the packing defined for all-empty snapshots.
        weights = [1 + len(p.text) for p in pages]
        packed = pack_lpt(weights, n_batches)
        batches = [PageBatch(index=k,
                             pages=tuple(pages[i] for i in group))
                   for k, group in enumerate(packed)]
        assert sum(len(b) for b in batches) == len(pages)
        return batches


def merge_batch_lists(per_batch: Sequence[List[T]]) -> List[T]:
    """Concatenate per-batch lists in batch order.

    With LPT batches this is no longer the canonical page order —
    callers that need canonical order must key by page id (all four
    systems now do); this helper remains for order-insensitive merges.
    """
    merged: List[T] = []
    for chunk in per_batch:
        merged.extend(chunk)
    return merged
