"""Page scheduling: cut canonical page order into balanced batches.

The scheduler partitions a page sequence into **contiguous** batches
so that concatenating per-batch outputs in batch-index order restores
the exact serial page order — the property that makes the capture
merge deterministic (see :mod:`repro.runtime.capture`).

Batches are size-balanced by total page length (characters), the best
cheap proxy for per-page IE cost: extraction, matching, and copy work
all scale with region characters. A mild oversubscription factor
(``batches_per_job``) creates more batches than workers so one
unusually heavy batch doesn't serialize the tail of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, TypeVar

from ..text.document import Page

T = TypeVar("T")

#: Default batches per worker: enough slack to smooth page-length skew
#: without drowning the run in per-batch overhead.
DEFAULT_BATCHES_PER_JOB = 4


@dataclass(frozen=True)
class PageBatch:
    """A contiguous slice of the canonical page order."""

    index: int
    pages: Tuple[Page, ...]

    @property
    def chars(self) -> int:
        return sum(len(p.text) for p in self.pages)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)


class PageScheduler:
    """Builds size-balanced, order-preserving page batches."""

    def __init__(self, batches_per_job: int = DEFAULT_BATCHES_PER_JOB) -> None:
        if batches_per_job < 1:
            raise ValueError("batches_per_job must be >= 1")
        self.batches_per_job = batches_per_job

    def plan(self, pages: Sequence[Page], jobs: int) -> List[PageBatch]:
        """Partition ``pages`` into at most ``jobs * batches_per_job``
        contiguous batches with near-equal character totals.

        Every page appears in exactly one batch; batch order equals
        page order; no batch is empty.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not pages:
            return []
        n_batches = min(len(pages), jobs * self.batches_per_job)
        # Weight 1 + len(text): even empty pages carry bookkeeping cost,
        # and it keeps the partition defined for all-empty snapshots.
        weights = [1 + len(p.text) for p in pages]
        total = sum(weights)
        batches: List[PageBatch] = []
        start = 0
        acc = 0
        for i, weight in enumerate(weights):
            acc += weight
            remaining_pages = len(pages) - (i + 1)
            remaining_batches = n_batches - len(batches) - 1
            # Close the current batch once it reaches its fair share,
            # but never leave fewer pages than batches still to fill.
            target = total * (len(batches) + 1) / n_batches
            if (acc >= target and remaining_batches > 0) \
                    or remaining_pages == remaining_batches:
                batches.append(PageBatch(index=len(batches),
                                         pages=tuple(pages[start:i + 1])))
                start = i + 1
            if len(batches) == n_batches - 1 and start < len(pages):
                break
        if start < len(pages):
            batches.append(PageBatch(index=len(batches),
                                     pages=tuple(pages[start:])))
        assert sum(len(b) for b in batches) == len(pages)
        return batches


def merge_batch_lists(per_batch: Sequence[List[T]]) -> List[T]:
    """Concatenate per-batch lists in batch order (the canonical merge)."""
    merged: List[T] = []
    for chunk in per_batch:
        merged.extend(chunk)
    return merged
