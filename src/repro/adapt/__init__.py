"""Drift-aware online re-optimization (the adaptive control plane).

The paper's optimizer picks one matcher assignment from statistics
sampled over the last ``k`` snapshots (Section 6.3) and never revisits
it. Real evolving corpora shift regimes mid-series — template
redesigns, churn bursts, vocabulary drift — and a plan chosen under the
old regime keeps paying for matching (or forgoing reuse) long after the
statistics that justified it stopped being true.

This package closes the loop over the existing data plane:

* :mod:`repro.adapt.drift` — a corpus-drift simulator: regime schedules
  (piecewise evolution parameters and generator swaps) over the
  :class:`~repro.corpus.evolve.EvolvingCorpus`, deterministic under the
  injected-rng contract;
* :mod:`repro.adapt.detect` — an online drift detector over per-snapshot
  run observations (change rate, fast-path hit rates, seconds/page,
  cost-model residual) using Page–Hinkley mean-shift tests;
* :mod:`repro.adapt.replan` — the mid-series re-optimizer: on a drift
  signal, re-run the §6.3 collector on a fresh sample plus the
  Algorithm-1 search, and swap the plan behind a hysteresis guard.

Theorem 1 (all assignments produce identical results) is the safety
net: switching plans mid-series can change cost only, never output, so
every post-switch generation stays byte-comparable to the batch oracle.
"""

from .detect import AdaptObservation, DriftDetector, DriftSignal, PageHinkley
from .drift import (
    DRIFT_PROFILES,
    DriftingCorpus,
    FactDilutionGenerator,
    Regime,
    RegimeSchedule,
    TemplateVariantGenerator,
    drift_profile,
)
from .replan import (
    ADAPT_MODES,
    AdaptConfig,
    AdaptDecision,
    AdaptiveDelexSystem,
    should_switch,
)

__all__ = [
    "ADAPT_MODES",
    "AdaptConfig",
    "AdaptDecision",
    "AdaptiveDelexSystem",
    "AdaptObservation",
    "DriftDetector",
    "DriftSignal",
    "DriftingCorpus",
    "DRIFT_PROFILES",
    "FactDilutionGenerator",
    "PageHinkley",
    "Regime",
    "RegimeSchedule",
    "TemplateVariantGenerator",
    "drift_profile",
    "should_switch",
]
