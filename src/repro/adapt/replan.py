"""Mid-series re-optimization behind a hysteresis guard.

:class:`AdaptiveDelexSystem` changes the optimizer's *economics*, not
its mechanics. The base :class:`~repro.core.delex.DelexSystem` pays the
§6.3 sampling cost on every snapshot; the adaptive system samples once,
pins the winning :class:`~repro.reuse.engine.PlanAssignment`, and
re-enters the optimizer only when the :class:`~repro.adapt.detect`
layer reports a mean shift in the run telemetry. On a drift signal it
re-runs the statistics collector on a fresh sample (with the
recency-weighted ``f`` estimator, so the new regime's change rate
dominates) plus the Algorithm-1 search, then applies the new plan only
if the hysteresis guard agrees:

* the new plan's estimated cost must undercut the *current* plan priced
  under the fresh statistics by at least ``switch_margin``;
* the estimated per-snapshot win must repay the sampling cost within
  ``payback_snapshots`` snapshots (the safe/unsafe-update economics of
  Kassaie & Tompa: re-planning is itself a cost);
* a ``cooldown`` of snapshots follows every replan, preventing A/B
  thrash when two plans price within noise of each other.

Theorem 1 guarantees any assignment produces identical results, so a
switch can never change output — every post-switch generation remains
byte-comparable against the batch oracle, which is exactly what
``repro check`` and the adaptive benchmark assert.

Modes: ``static`` plans once and never looks again (the benchmark
baseline); ``shadow`` detects, samples and logs the would-be decision
without ever switching; ``on`` closes the loop. ``force_replan_at``
injects ground-truth regime boundaries for the oracle-best-per-regime
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ..corpus.snapshot import Snapshot
from ..obs import registry as _oreg
from ..optimizer.cost import plan_cost
from ..reuse.engine import PlanAssignment, SnapshotRunResult
from ..timing import Timer
from ..core.delex import DelexSystem
from .detect import AdaptObservation, DriftDetector, DriftSignal

ADAPT_MODES = ("static", "shadow", "on")


@dataclass(frozen=True)
class AdaptConfig:
    """Controller policy knobs."""

    mode: str = "on"
    warmup: int = 2
    """Observations the detector needs before it may fire."""

    cooldown: int = 2
    """Snapshots after a replan during which no new replan starts."""

    switch_margin: float = 0.05
    """Minimum relative cost win required to adopt a new plan."""

    payback_snapshots: float = 4.0
    """Horizon (snapshots) within which the estimated win must repay
    the sampling seconds spent to find it."""

    eval_window: int = 2
    """Snapshots on each side of a switch compared to score win/loss."""

    detect: bool = True
    """Run the drift detector; the oracle baseline disables it and
    relies on ``force_replan_at`` alone."""

    force_replan_at: FrozenSet[int] = frozenset()
    """Snapshot indexes at which to replan unconditionally (oracle)."""

    def __post_init__(self) -> None:
        if self.mode not in ADAPT_MODES:
            raise ValueError(f"adapt mode must be one of {ADAPT_MODES}")

    @classmethod
    def from_flag(cls, flag: object) -> Optional["AdaptConfig"]:
        """CLI flag → config; ``off``/``None`` mean no adaptive layer."""
        if flag is None or flag == "off":
            return None
        if isinstance(flag, cls):
            return flag
        if isinstance(flag, str) and flag in ADAPT_MODES:
            return cls(mode=flag)
        raise ValueError(f"unknown --adapt value: {flag!r}")


def should_switch(stay_cost: float, new_cost: float,
                  sampling_seconds: float, margin: float,
                  payback_snapshots: float, differs: bool = True) -> bool:
    """The hysteresis guard, as a pure function (unit-testable).

    ``stay_cost`` is the incumbent plan priced under the *fresh*
    statistics; ``new_cost`` the search winner's estimate under the
    same statistics — comparable by construction.
    """
    if not differs:
        return False
    if not new_cost < stay_cost * (1.0 - margin):
        return False
    return (stay_cost - new_cost) * payback_snapshots >= sampling_seconds


@dataclass
class AdaptDecision:
    """One snapshot's controller decision, for offline audit."""

    snapshot_index: int
    action: str
    """``bootstrap`` | ``initial_plan`` | ``keep`` | ``replan_keep`` |
    ``replan_switch`` | ``shadow_replan`` | ``forced_replan``."""

    assignment: Dict[str, str] = field(default_factory=dict)
    drift_score: float = 0.0
    signal: Optional[DriftSignal] = None
    sampling_seconds: float = 0.0
    stay_cost: Optional[float] = None
    new_cost: Optional[float] = None
    would_switch: bool = False
    """What the guard decided — applied only in ``on`` mode."""

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "snapshot_index": self.snapshot_index,
            "action": self.action,
            "assignment": dict(self.assignment),
            "drift_score": round(self.drift_score, 4),
            "sampling_seconds": round(self.sampling_seconds, 6),
            "would_switch": self.would_switch,
        }
        if self.signal is not None:
            doc["signal"] = self.signal.to_dict()
        if self.stay_cost is not None:
            doc["stay_cost"] = self.stay_cost
        if self.new_cost is not None:
            doc["new_cost"] = self.new_cost
        return doc


class AdaptiveDelexSystem(DelexSystem):
    """Delex that plans once and re-plans only on detected drift."""

    def __init__(self, task, workdir: str,
                 adapt: Optional[AdaptConfig] = None,
                 detector: Optional[DriftDetector] = None,
                 metrics_label: Optional[str] = None,
                 **kwargs) -> None:
        super().__init__(task, workdir, **kwargs)
        self.adapt = adapt if adapt is not None else AdaptConfig()
        self.detector = (detector if detector is not None
                         else DriftDetector(warmup=self.adapt.warmup))
        self.metrics_label = metrics_label or self.name
        # Fresh samples after a drift signal should price reuse at the
        # *new* regime's change rate, not the window average.
        self.f_mode = "recency"
        self._pending: Optional[DriftSignal] = None
        self._cooldown_left = 0
        self._spp_history: List[float] = []
        self._switch_evals: List[Dict[str, object]] = []
        self.decisions: List[AdaptDecision] = []
        self.detections = 0
        self.replans = 0
        self.switches = 0
        self.shadow_switches = 0
        self.sampling_seconds = 0.0
        self.switch_wins = 0
        self.switch_losses = 0

    # -- planning ------------------------------------------------------

    def _choose_assignment(self, snapshot: Snapshot,
                           timer: Timer) -> PlanAssignment:
        if not self._history or self._prev_dir is None:
            self._decide(AdaptDecision(snapshot.index, "bootstrap"))
            return self.fixed_assignment or PlanAssignment.all_dn(self.units)
        if self.fixed_assignment is not None:
            return self.fixed_assignment
        if self.last_search is None:
            search, _stats, seconds = self._sample_and_search(snapshot,
                                                              timer)
            self.sampling_seconds += seconds
            self._decide(AdaptDecision(
                snapshot.index, "initial_plan",
                assignment=dict(search.assignment.matchers),
                sampling_seconds=seconds))
            return search.assignment
        forced = snapshot.index in self.adapt.force_replan_at
        triggered = self._pending is not None and self._cooldown_left <= 0
        if (forced or triggered) and self.adapt.mode != "static":
            return self._replan(snapshot, timer, forced=forced)
        self._decide(AdaptDecision(
            snapshot.index, "keep",
            assignment=dict(self.last_search.assignment.matchers),
            drift_score=self.detector.drift_score))
        return self.last_search.assignment

    def _replan(self, snapshot: Snapshot, timer: Timer,
                forced: bool) -> PlanAssignment:
        incumbent = self.last_search
        signal = self._pending
        search, stats, seconds = self._sample_and_search(snapshot, timer)
        self.replans += 1
        self.sampling_seconds += seconds
        stay_cost = plan_cost(self.units, incumbent.assignment, stats)
        new_cost = search.estimated_cost
        differs = search.assignment.matchers != incumbent.assignment.matchers
        would = forced or should_switch(
            stay_cost, new_cost, seconds,
            self.adapt.switch_margin, self.adapt.payback_snapshots,
            differs=differs)
        apply = would and differs and self.adapt.mode == "on"
        if apply:
            action = "forced_replan" if forced else "replan_switch"
            chosen = search
            self.switches += 1
            self._begin_switch_eval(snapshot.index)
        else:
            action = ("shadow_replan" if self.adapt.mode == "shadow"
                      else "replan_keep")
            if would and differs:
                self.shadow_switches += 1
            chosen = incumbent
            # keep last_search/last_stats honest: the incumbent plan
            # stays in force even though the sampler just ran
            self.last_search = incumbent
        self._pending = None
        self._cooldown_left = self.adapt.cooldown
        self.detector.reset()
        self._publish_replan(action, seconds)
        self._decide(AdaptDecision(
            snapshot.index, action,
            assignment=dict(chosen.assignment.matchers),
            drift_score=signal.score if signal is not None else 0.0,
            signal=signal, sampling_seconds=seconds,
            stay_cost=stay_cost, new_cost=new_cost,
            would_switch=would and differs))
        return chosen.assignment

    # -- observation ---------------------------------------------------

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        was_bootstrap = not self._history or self._prev_dir is None
        result = super().process(snapshot, prev_snapshot)
        if not was_bootstrap and self.adapt.mode != "static":
            self._observe(snapshot, result)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
        return result

    def _observe(self, snapshot: Snapshot,
                 result: SnapshotRunResult) -> None:
        predicted = (self.last_search.estimated_cost
                     if self.last_search is not None else None)
        obs = AdaptObservation.from_run(snapshot.index, result,
                                        predicted_seconds=predicted)
        self._spp_history.append(obs.seconds_per_page)
        self._settle_switch_evals(obs)
        signal = (self.detector.observe(obs)
                  if self.adapt.detect else None)
        if signal is not None and self._pending is None:
            self._pending = signal
            self.detections += 1
            if _oreg.ENABLED:
                _oreg.REGISTRY.inc(
                    "repro_adapt_detections_total",
                    help="Drift signals raised by the online detector.",
                    system=self.metrics_label,
                    channel=signal.channels[0])
        if _oreg.ENABLED:
            _oreg.REGISTRY.set(
                "repro_adapt_drift_score", self.detector.drift_score,
                help="Strongest normalized Page-Hinkley score "
                     "(fires at >= 1).",
                system=self.metrics_label)

    def _begin_switch_eval(self, index: int) -> None:
        window = self.adapt.eval_window
        pre = self._spp_history[-window:]
        if pre:
            self._switch_evals.append(
                {"at": index, "pre": sum(pre) / len(pre), "post": []})

    def _settle_switch_evals(self, obs: AdaptObservation) -> None:
        window = self.adapt.eval_window
        for ev in self._switch_evals:
            if ev.get("settled"):
                continue
            post: List[float] = ev["post"]  # type: ignore[assignment]
            post.append(obs.seconds_per_page)
            if len(post) < window:
                continue
            ev["settled"] = True
            win = (sum(post) / len(post)) < ev["pre"]
            if win:
                self.switch_wins += 1
            else:
                self.switch_losses += 1
            if _oreg.ENABLED:
                _oreg.REGISTRY.inc(
                    "repro_adapt_switch_results_total",
                    help="Plan switches scored by observed seconds/page "
                         "before vs after.",
                    system=self.metrics_label,
                    result="win" if win else "loss")

    # -- bookkeeping ---------------------------------------------------

    def _decide(self, decision: AdaptDecision) -> None:
        self.decisions.append(decision)

    def _publish_replan(self, action: str, seconds: float) -> None:
        if not _oreg.ENABLED:
            return
        _oreg.REGISTRY.inc(
            "repro_adapt_replans_total",
            help="Statistics re-samples triggered by drift or force.",
            system=self.metrics_label)
        _oreg.REGISTRY.inc(
            "repro_adapt_sampling_seconds_total", seconds,
            help="Wall seconds spent re-sampling statistics.",
            system=self.metrics_label)
        if action in ("replan_switch", "forced_replan"):
            _oreg.REGISTRY.inc(
                "repro_adapt_switches_total",
                help="Plan switches actually applied.",
                system=self.metrics_label, action=action)

    def summary(self) -> Dict[str, object]:
        """Controller counters for ``/metrics`` and run footers."""
        return {
            "mode": self.adapt.mode,
            "detections": self.detections,
            "replans": self.replans,
            "switches": self.switches,
            "shadow_switches": self.shadow_switches,
            "switch_wins": self.switch_wins,
            "switch_losses": self.switch_losses,
            "sampling_seconds": round(self.sampling_seconds, 6),
            "drift_score": round(self.detector.drift_score, 4),
        }
