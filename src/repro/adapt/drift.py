"""Corpus-drift simulator: regime schedules over the page evolver.

:class:`~repro.corpus.evolve.EvolvingCorpus` evolves pages under one
fixed :class:`~repro.corpus.evolve.ChangeModel` forever — a stationary
process. Real crawls are not stationary: sites redesign their
templates, churn spikes around events, and the density of extractable
facts drifts as content mix changes. :class:`DriftingCorpus` drives the
same evolver through a :class:`RegimeSchedule` — a piecewise sequence
of evolution parameters — so a single snapshot series crosses one or
more regime boundaries:

* **churn burst** — swap the change model (``p_unchanged`` drops,
  ``mean_edits`` rises) at the boundary;
* **template redesign** — swap the generator (e.g. for
  :class:`TemplateVariantGenerator`) and regenerate a fraction of
  surviving pages *under their existing URLs*, so page history is kept
  but content is rewritten wholesale;
* **vocabulary drift** — swap the generator for
  :class:`FactDilutionGenerator`, which biases fresh/edited lines
  toward filler, so the fact density (and with it the optimizer's
  selectivities) decays after the boundary.

Everything draws from the corpus's injected rng: same seed, same
snapshot bytes, exactly like the stationary evolver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..corpus import vocab
from ..corpus.evolve import ChangeModel, EvolvingCorpus
from ..corpus.generators import (
    CorpusGenerator,
    DBLifeGenerator,
    PageSpec,
    WikipediaGenerator,
)
from ..corpus.snapshot import Snapshot


@dataclass(frozen=True)
class Regime:
    """One piece of a piecewise evolution process.

    The regime takes effect when the corpus *produces* snapshot index
    ``at`` (i.e. the transition happens during the step from ``at - 1``
    to ``at``). Unset fields keep the previous regime's value.
    """

    at: int
    """First snapshot index generated under this regime (>= 1)."""

    change_model: Optional[ChangeModel] = None
    """New evolution parameters, or ``None`` to keep the current ones."""

    generator: Optional[CorpusGenerator] = None
    """New page/line generator (template redesign, vocabulary drift)."""

    redesign_fraction: float = 0.0
    """Fraction of surviving pages regenerated from scratch — under
    their existing URLs — when the regime starts. Models a site-wide
    template rollout: history is kept, content is rewritten."""

    note: str = ""
    """Human-readable tag recorded in the corpus's shift log."""

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("regime 'at' must be >= 1 (index 0 is the "
                             "initial snapshot)")
        if not 0.0 <= self.redesign_fraction <= 1.0:
            raise ValueError("redesign_fraction must be in [0, 1]")


@dataclass(frozen=True)
class RegimeSchedule:
    """An ordered sequence of regime boundaries."""

    regimes: Tuple[Regime, ...] = ()

    def __post_init__(self) -> None:
        ats = [r.at for r in self.regimes]
        if ats != sorted(set(ats)):
            raise ValueError("regime boundaries must be strictly "
                             "increasing snapshot indexes")

    @classmethod
    def of(cls, *regimes: Regime) -> "RegimeSchedule":
        return cls(tuple(regimes))

    def starting_at(self, index: int) -> Optional[Regime]:
        """The regime that takes effect exactly at snapshot ``index``."""
        for regime in self.regimes:
            if regime.at == index:
                return regime
        return None

    @property
    def boundaries(self) -> Tuple[int, ...]:
        return tuple(r.at for r in self.regimes)


class TemplateVariantGenerator(CorpusGenerator):
    """A redesigned template over the same fact-line grammar.

    Delegates fact/line generation to the base generator — the rule
    extractors keep firing on the same line shapes — but restructures
    pages: a navigation banner the old template lacked, extra filler
    interleaved through the body, and a few additional fact lines. The
    result shifts region counts, region positions and selectivities
    without changing what is extractable *per line*.
    """

    def __init__(self, base: CorpusGenerator, banner: str = "v2",
                 extra_filler: int = 3, extra_facts: int = 2) -> None:
        self.base = base
        self.name = base.name
        self.banner = banner
        self.extra_filler = extra_filler
        self.extra_facts = extra_facts

    def page_kinds(self) -> Sequence[str]:
        return self.base.page_kinds()

    def new_page(self, rng: random.Random, url: str) -> PageSpec:
        page = self.base.new_page(rng, url)
        page.lines.insert(
            0, f"[{self.banner}] site navigation :: home | index | search")
        for _ in range(self.extra_filler):
            pos = rng.randint(0, len(page.lines))
            page.lines.insert(pos, rng.choice(vocab.FILLER_SENTENCES))
        for _ in range(self.extra_facts):
            pos = rng.randint(0, len(page.lines))
            page.lines.insert(pos, self.base.new_line(rng, page.kind))
        return page

    def new_line(self, rng: random.Random, kind: str) -> str:
        return self.base.new_line(rng, kind)

    def modify_line(self, rng: random.Random, kind: str, line: str) -> str:
        return self.base.modify_line(rng, kind, line)


class FactDilutionGenerator(CorpusGenerator):
    """Vocabulary drift: fresh and rewritten lines trend toward filler.

    Existing pages are untouched at the boundary; the drift materializes
    through the normal edit process, as inserted/rewritten lines are
    filler with probability ``dilution`` instead of the base grammar's
    fact mix. Fact density — and the optimizer's ``g``/``h``
    selectivities with it — decays gradually after the swap.

    With ``salt=True`` every diluted line carries a unique revision tag
    drawn from the corpus rng, so no two diluted lines are ever
    byte-identical. That defeats *both* reuse channels at once — line
    matching (the rewritten line never matches its predecessor) and the
    content-keyed shortcut store (no duplicate content to hit) — which
    is the regime where deferring to from-scratch extraction is the
    honest optimum.
    """

    def __init__(self, base: CorpusGenerator, dilution: float = 0.75,
                 salt: bool = False) -> None:
        if not 0.0 <= dilution <= 1.0:
            raise ValueError("dilution must be in [0, 1]")
        self.base = base
        self.name = base.name
        self.dilution = dilution
        self.salt = salt

    def page_kinds(self) -> Sequence[str]:
        return self.base.page_kinds()

    def new_page(self, rng: random.Random, url: str) -> PageSpec:
        return self.base.new_page(rng, url)

    def _filler(self, rng: random.Random) -> str:
        line = rng.choice(vocab.FILLER_SENTENCES)
        if self.salt:
            line = f"{line} [rev {rng.randint(0, 10 ** 9)}]"
        return line

    def new_line(self, rng: random.Random, kind: str) -> str:
        if rng.random() < self.dilution:
            return self._filler(rng)
        return self.base.new_line(rng, kind)

    def modify_line(self, rng: random.Random, kind: str, line: str) -> str:
        if rng.random() < self.dilution:
            return self._filler(rng)
        return self.base.modify_line(rng, kind, line)


class DriftingCorpus(EvolvingCorpus):
    """An evolving corpus whose parameters follow a regime schedule."""

    def __init__(self, generator: CorpusGenerator, n_pages: int,
                 change_model: ChangeModel,
                 schedule: RegimeSchedule = RegimeSchedule(),
                 seed: int = 0,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(generator, n_pages, change_model,
                         seed=seed, rng=rng)
        self.schedule = schedule
        #: (snapshot_index, note) for every boundary crossed so far —
        #: the ground truth an oracle controller replans on.
        self.regime_shifts: List[Tuple[int, str]] = []

    def step(self) -> Snapshot:
        next_index = self._snapshot_index + 1
        regime = self.schedule.starting_at(next_index)
        if regime is not None:
            self._enter_regime(next_index, regime)
        return super().step()

    def _enter_regime(self, index: int, regime: Regime) -> None:
        if regime.change_model is not None:
            self.change_model = regime.change_model
        if regime.generator is not None:
            self.generator = regime.generator
        if regime.redesign_fraction > 0.0:
            rng = self._rng
            for i, spec in enumerate(self._pages):
                if rng.random() < regime.redesign_fraction:
                    self._pages[i] = self.generator.new_page(rng, spec.url)
        self.regime_shifts.append(
            (index, regime.note or f"regime@{regime.at}"))


#: Profile names accepted by :func:`drift_profile` (and registered as
#: ``repro check`` corpus axes as ``drift_<name>``).
DRIFT_PROFILES = ("stationary", "churn_burst", "redesign", "vocab_drift")

_BASE_GENERATORS = {
    "dblife": DBLifeGenerator,
    "wikipedia": WikipediaGenerator,
}


def drift_profile(name: str, n_pages: int = 24, seed: int = 0,
                  shift_at: int = 2, kind: str = "dblife"
                  ) -> DriftingCorpus:
    """A named drifting corpus crossing one regime boundary.

    ``shift_at`` is the first snapshot index produced under the new
    regime; the default of 2 puts the boundary inside even the 3-snapshot
    series the check fuzzer generates. ``kind`` picks the base page
    generator (``dblife`` or ``wikipedia``).
    """
    if kind not in _BASE_GENERATORS:
        raise ValueError(f"unknown corpus kind: {kind!r}")
    base = _BASE_GENERATORS[kind]()
    calm = ChangeModel(p_unchanged=0.9, p_removed=0.005, p_added=0.005,
                       mean_edits=2.0)
    if name == "stationary":
        schedule = RegimeSchedule()
    elif name == "churn_burst":
        burst = ChangeModel(p_unchanged=0.2, p_removed=0.02, p_added=0.02,
                            mean_edits=6.0)
        schedule = RegimeSchedule.of(
            Regime(at=shift_at, change_model=burst, note="churn_burst"))
    elif name == "redesign":
        schedule = RegimeSchedule.of(
            Regime(at=shift_at, generator=TemplateVariantGenerator(base),
                   redesign_fraction=0.9, note="redesign"))
    elif name == "vocab_drift":
        churny = ChangeModel(p_unchanged=0.5, p_removed=0.01, p_added=0.01,
                             mean_edits=4.0)
        schedule = RegimeSchedule.of(
            Regime(at=shift_at, change_model=churny,
                   generator=FactDilutionGenerator(base, dilution=0.75),
                   note="vocab_drift"))
    else:
        raise ValueError(f"unknown drift profile: {name!r} "
                         f"(choose from {DRIFT_PROFILES})")
    return DriftingCorpus(base, n_pages, calm, schedule=schedule, seed=seed)
