"""Online drift detection over per-snapshot run telemetry.

Every processed snapshot yields one :class:`AdaptObservation` — a small
vector of rates and costs assembled from what the runtime already
measures for free: the observed change rate (``pages_with_previous``),
the fast-path short-circuit and memo hit rates
(:class:`~repro.fastpath.stats.FastPathStats`), wall seconds per page
from the :class:`~repro.timing.Timings` decomposition, and the
cost-model residual (observed seconds vs the search's estimated plan
cost). Each channel feeds a two-sided :class:`PageHinkley` mean-shift
test; :class:`DriftDetector` aggregates them and raises a
:class:`DriftSignal` when any channel's cumulative deviation clears its
threshold.

Channel tuning: deterministic rate channels (change rate, hit rates)
use absolute deviations with tight thresholds; wall-clock channels are
normalized by their running mean (machine noise scales with magnitude);
the cost residual works on a log-ratio, so it is unit-free — a mean
shift there means the cost model stopped fitting reality, whichever
direction the regime moved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..reuse.engine import SnapshotRunResult


@dataclass(frozen=True)
class AdaptObservation:
    """One snapshot's telemetry as seen by the drift detector."""

    snapshot_index: int
    pages: int
    f_obs: float
    """Observed fraction of pages with a previous version."""

    unchanged_fraction: float
    """Fast-path identity short-circuit rate (0 when the path is off)."""

    combined_hit_rate: float
    """Fast-path short-circuit + memo combined hit rate."""

    seconds_per_page: float
    match_seconds_per_page: float
    extract_seconds_per_page: float
    observed_seconds: float
    predicted_seconds: Optional[float] = None
    """The cost model's estimate for the plan that ran, if any."""

    fallback_ratio: Optional[float] = None
    """Delta-view fallback ratio, when a delta layer is in play."""

    @classmethod
    def from_run(cls, snapshot_index: int, result: SnapshotRunResult,
                 predicted_seconds: Optional[float] = None,
                 fallback_ratio: Optional[float] = None
                 ) -> "AdaptObservation":
        timings = result.timings
        pages = max(1, result.pages)
        fp = timings.fastpath
        return cls(
            snapshot_index=snapshot_index,
            pages=result.pages,
            f_obs=result.pages_with_previous / pages,
            unchanged_fraction=(fp.unchanged_fraction
                                if fp is not None else 0.0),
            combined_hit_rate=(fp.combined_hit_rate
                               if fp is not None else 0.0),
            seconds_per_page=timings.total / pages,
            match_seconds_per_page=timings.get("match") / pages,
            extract_seconds_per_page=timings.get("extract") / pages,
            observed_seconds=timings.total,
            predicted_seconds=predicted_seconds,
            fallback_ratio=fallback_ratio,
        )

    def channel_values(self) -> Dict[str, float]:
        """The detector's input vector; ``None``-valued channels omitted."""
        values = {
            "f": self.f_obs,
            "unchanged_fraction": self.unchanged_fraction,
            "combined_hit_rate": self.combined_hit_rate,
            "seconds_per_page": self.seconds_per_page,
        }
        if (self.predicted_seconds is not None
                and self.predicted_seconds > 0.0
                and self.observed_seconds > 0.0):
            values["cost_residual"] = math.log(
                self.observed_seconds / self.predicted_seconds)
        if self.fallback_ratio is not None:
            values["fallback_ratio"] = self.fallback_ratio
        return values


class PageHinkley:
    """Two-sided Page–Hinkley mean-shift test.

    Tracks the cumulative deviation of the stream from its running mean
    (minus a tolerance ``delta``) in both directions; fires when the
    excursion from the running extremum exceeds ``threshold``. With
    ``relative=True`` deviations are normalized by the running mean's
    magnitude, making the test scale-free for wall-clock channels.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.5,
                 min_obs: int = 2, relative: bool = False) -> None:
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.min_obs = min_obs
        self.relative = relative
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._mt_up = 0.0
        self._min_up = 0.0
        self._mt_dn = 0.0
        self._max_dn = 0.0

    @property
    def score(self) -> float:
        """Normalized drift score; fires at >= 1.0."""
        excursion = max(self._mt_up - self._min_up,
                        self._max_dn - self._mt_dn)
        return excursion / self.threshold

    def update(self, x: float) -> bool:
        self.n += 1
        self.mean += (x - self.mean) / self.n
        scale = (max(abs(self.mean), 1e-12) if self.relative else 1.0)
        deviation = (x - self.mean) / scale
        self._mt_up += deviation - self.delta
        self._min_up = min(self._min_up, self._mt_up)
        self._mt_dn += deviation + self.delta
        self._max_dn = max(self._max_dn, self._mt_dn)
        if self.n < self.min_obs:
            return False
        return self.score >= 1.0


@dataclass(frozen=True)
class ChannelSpec:
    """Page–Hinkley parameters for one observation channel."""

    delta: float
    threshold: float
    relative: bool = False


#: Default channel tuning. Rate channels are deterministic given the
#: corpus, so tight absolute thresholds hold without false positives;
#: wall-clock channels are relative (machine-noise tolerant) and
#: slower to fire.
DEFAULT_CHANNELS: Mapping[str, ChannelSpec] = {
    "f": ChannelSpec(delta=0.01, threshold=0.35),
    "unchanged_fraction": ChannelSpec(delta=0.02, threshold=0.45),
    "combined_hit_rate": ChannelSpec(delta=0.02, threshold=0.45),
    "seconds_per_page": ChannelSpec(delta=0.15, threshold=1.6,
                                    relative=True),
    "cost_residual": ChannelSpec(delta=0.15, threshold=1.6),
    "fallback_ratio": ChannelSpec(delta=0.02, threshold=0.45),
}


@dataclass(frozen=True)
class DriftSignal:
    """Raised (returned) by the detector when a mean shift clears."""

    snapshot_index: int
    score: float
    channels: Tuple[str, ...]
    """Channels whose tests fired, strongest first."""

    values: Dict[str, float] = field(default_factory=dict)
    """The observation's channel values at firing time."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "snapshot_index": self.snapshot_index,
            "score": round(self.score, 4),
            "channels": list(self.channels),
            "values": {k: round(v, 6) for k, v in self.values.items()},
        }


class DriftDetector:
    """Aggregates per-channel Page–Hinkley tests over observations.

    ``warmup`` observations must be seen before any signal is raised —
    the first few snapshots establish the baseline mean. ``reset()``
    restarts every channel (called after a replan so the new regime
    becomes the new baseline).
    """

    def __init__(self, warmup: int = 2,
                 channels: Optional[Mapping[str, ChannelSpec]] = None
                 ) -> None:
        self.warmup = warmup
        self.specs: Dict[str, ChannelSpec] = dict(channels
                                                  if channels is not None
                                                  else DEFAULT_CHANNELS)
        self._tests: Dict[str, PageHinkley] = {}
        self.seen = 0
        self.last_scores: Dict[str, float] = {}

    def reset(self) -> None:
        for test in self._tests.values():
            test.reset()
        self.seen = 0
        self.last_scores = {}

    @property
    def drift_score(self) -> float:
        """Strongest channel score from the last observation (>= 0)."""
        return max(self.last_scores.values(), default=0.0)

    def observe(self, obs: AdaptObservation) -> Optional[DriftSignal]:
        self.seen += 1
        values = obs.channel_values()
        fired = []
        scores: Dict[str, float] = {}
        for channel, value in values.items():
            spec = self.specs.get(channel)
            if spec is None:
                continue
            test = self._tests.get(channel)
            if test is None:
                test = PageHinkley(delta=spec.delta,
                                   threshold=spec.threshold,
                                   relative=spec.relative)
                self._tests[channel] = test
            if test.update(value):
                fired.append((test.score, channel))
            scores[channel] = test.score
        self.last_scores = scores
        if not fired or self.seen <= self.warmup:
            return None
        fired.sort(reverse=True)
        return DriftSignal(
            snapshot_index=obs.snapshot_index,
            score=fired[0][0],
            channels=tuple(channel for _score, channel in fired),
            values=values,
        )
