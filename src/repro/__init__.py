"""repro — a reproduction of Delex (SIGMOD 2009).

Delex executes complex, multi-blackbox information-extraction programs
over *evolving* text corpora efficiently by recycling IE results
captured on previous corpus snapshots.

Quickstart::

    from repro import dblife_corpus, make_task, run_series

    corpus = dblife_corpus(n_pages=40, seed=1)
    snapshots = list(corpus.snapshots(4))
    task = make_task("chair")
    reports = run_series(task, snapshots,
                         systems=("noreuse", "delex"))
    for name, report in reports.items():
        print(name, [f"{s:.2f}s" for s in report.seconds_series()])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .corpus import (
    ChangeModel,
    CorpusStore,
    EvolvingCorpus,
    Snapshot,
    dblife_corpus,
    profile_corpus,
    wikipedia_corpus,
)
from .core import (
    CyclexSystem,
    DelexPipeline,
    DelexSystem,
    NoReuseSystem,
    ShortcutSystem,
    run_series,
    run_task_series,
    verify_agreement,
)
from .extractors import ALL_TASKS, RULE_TASKS, IETask, make_task
from .plan import compile_program, find_units, partition_chains
from .reuse import FingerprintScope, PlanAssignment, ReuseEngine, SameUrlScope
from .timing import Timings
from .xlog import Registry, parse_program, validate_program

__version__ = "1.0.0"

__all__ = [
    "Snapshot",
    "CorpusStore",
    "EvolvingCorpus",
    "ChangeModel",
    "dblife_corpus",
    "wikipedia_corpus",
    "profile_corpus",
    "IETask",
    "make_task",
    "ALL_TASKS",
    "RULE_TASKS",
    "parse_program",
    "validate_program",
    "Registry",
    "compile_program",
    "find_units",
    "partition_chains",
    "ReuseEngine",
    "PlanAssignment",
    "SameUrlScope",
    "FingerprintScope",
    "DelexSystem",
    "DelexPipeline",
    "CyclexSystem",
    "NoReuseSystem",
    "ShortcutSystem",
    "run_series",
    "run_task_series",
    "verify_agreement",
    "Timings",
    "__version__",
]
