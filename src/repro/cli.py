"""Command-line interface.

Eight subcommands::

    python -m repro tasks                      # list evaluation tasks
    python -m repro inspect --task play        # program, units, chains
    python -m repro corpus --kind dblife --pages 60 --snapshots 5 \\
        --store /tmp/corpus                    # generate + persist corpus
    python -m repro run --task play --store /tmp/corpus \\
        --systems noreuse,delex                # run systems, print table
    python -m repro check --seed 0 --budget 60 # differential oracle sweep
    python -m repro serve --demo --port 8800   # incremental serving API
    python -m repro obs report --metrics-json m.json   # render telemetry
    python -m repro report                     # aggregate bench tables

The ``run`` command verifies Theorem 1 (all systems produce identical
results) and prints per-snapshot runtimes plus the mean decomposition.
The ``check`` command is the adversarial version of that claim: a
budgeted fuzz campaign sweeping every (system, matcher policy,
fastpath, backend) configuration against from-scratch ground truth,
with failure shrinking and replayable repro bundles (see
docs/testing.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional, Sequence

from .corpus import CorpusStore, dblife_corpus, profile_corpus, wikipedia_corpus
from .core.runner import SYSTEM_NAMES, run_series, verify_agreement
from .extractors import ALL_TASKS, make_task
from .plan import compile_program, find_units, partition_chains


def _cmd_tasks(args: argparse.Namespace) -> int:
    print(f"{'task':<13}{'corpus':<11}{'blackboxes':>11}"
          f"{'prog alpha':>11}{'prog beta':>10}")
    for name in ALL_TASKS:
        task = make_task(name, work_scale=0)
        print(f"{name:<13}{task.corpus:<11}{len(task.blackboxes):>11}"
              f"{task.program_alpha:>11}{task.program_beta:>10}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    task = make_task(args.task, work_scale=0)
    print(f"# task: {task.name} ({task.corpus} corpus)")
    print("\n## xlog program")
    print(task.source.strip())
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    print("\n## IE units (uid, alpha, beta, absorbed operators)")
    for unit in units:
        absorbed = [type(n).__name__ for n in unit.absorbed]
        print(f"  {unit.uid:<22} alpha={unit.alpha:<7} "
              f"beta={unit.beta:<5} absorbed={absorbed}")
    print("\n## IE chains")
    for chain in partition_chains(units):
        print(f"  {chain}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.drift is not None:
        from .adapt.drift import drift_profile

        corpus = drift_profile(args.drift, n_pages=args.pages,
                               seed=args.seed, shift_at=args.shift_at,
                               kind=args.kind)
    else:
        factory = (dblife_corpus if args.kind == "dblife"
                   else wikipedia_corpus)
        corpus = factory(n_pages=args.pages, seed=args.seed)
    store = CorpusStore(args.store)
    if len(store) > 0:
        print(f"error: store {args.store} is not empty", file=sys.stderr)
        return 2
    snapshots = list(corpus.snapshots(args.snapshots))
    for snapshot in snapshots:
        store.append(snapshot)
    profile = profile_corpus(snapshots)
    print(f"wrote {len(snapshots)} snapshots to {args.store}")
    print(f"  avg pages/snapshot : {profile.avg_pages:.0f}")
    print(f"  avg KB/snapshot    : {profile.avg_bytes / 1024:.1f}")
    print(f"  fraction identical : {profile.avg_fraction_identical:.2f}")
    shifts = getattr(corpus, "regime_shifts", None)
    if shifts:
        rendered = ", ".join(f"{note}@{index}" for index, note in shifts)
        print(f"  regime shifts      : {rendered}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    unknown = [s for s in systems if s not in SYSTEM_NAMES]
    if unknown:
        print(f"error: unknown systems {unknown}; choose from "
              f"{SYSTEM_NAMES}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    task = make_task(args.task, work_scale=args.work_scale)
    if args.store is not None:
        store = CorpusStore(args.store)
        snapshots = list(store)
        if len(snapshots) < 2:
            print("error: need at least 2 snapshots (use the corpus "
                  "subcommand first)", file=sys.stderr)
            return 2
    else:
        # Demo mode: a small generated corpus matching the task.
        factory = (dblife_corpus if task.corpus == "dblife"
                   else wikipedia_corpus)
        snapshots = list(factory(n_pages=12, seed=0).snapshots(3))
        print("no --store given: using a generated 12-page, "
              "3-snapshot demo corpus\n")
    from . import obs
    from .check import invariants

    # Observability setup (all off by default; zero hot-path cost).
    tracer = None
    profiler = None
    if getattr(args, "trace_out", None):
        tracer = obs.trace.install(sample=args.trace_sample)
    if getattr(args, "profile", "off") == "on":
        profiler = obs.profile.install(top_k=args.top_pages)
    if getattr(args, "metrics_json", None):
        obs.registry.enable()
    try:
        with tempfile.TemporaryDirectory() as workdir:
            with invariants.checking(
                    getattr(args, "check", "off") == "on"):
                reports = run_series(task, snapshots, systems=systems,
                                     workdir=workdir, jobs=args.jobs,
                                     backend=args.backend,
                                     fastpath=args.fastpath,
                                     adapt=getattr(args, "adapt", "off"))
    except BaseException:
        obs.disable_all()
        raise
    problems = verify_agreement(reports) if "noreuse" in systems else []
    print(f"task {task.name} over {len(snapshots)} snapshots "
          f"({len(snapshots[0])} pages each)\n")
    header = "snapshot  " + "".join(f"{s:>10}" for s in systems)
    print(header)
    for i in range(len(snapshots)):
        row = f"{i:>8}  " + "".join(
            f"{reports[s].snapshots[i].seconds:>10.3f}" for s in systems)
        print(row)
    print("   total  " + "".join(
        f"{reports[s].total_seconds():>10.3f}" for s in systems))
    print("\nmean decomposition (reuse snapshots):")
    for s in systems:
        decomp = reports[s].mean_decomposition()
        inner = "  ".join(f"{k}={v:.3f}" for k, v in decomp.items())
        print(f"  {s:<9} {inner}")
    if args.jobs > 1:
        print("\nruntime:")
        for s in systems:
            runtime = reports[s].snapshots[-1].timings.runtime
            print(f"  {s:<9} "
                  f"{runtime.describe() if runtime else 'serial'}")
    fastpath_lines = []
    for s in systems:
        fp = reports[s].snapshots[-1].timings.fastpath
        if fp is not None and fp.pages_paired:
            fastpath_lines.append(f"  {s:<9} {fp.describe()}")
    if fastpath_lines:
        print("\nfastpath (last snapshot):")
        for line in fastpath_lines:
            print(line)
    if getattr(args, "adapt", "off") != "off" and "delex" in systems:
        summary = _adapt_summary(reports["delex"])
        print(f"\nadapt (delex): mode={args.adapt} "
              f"detections={summary['detections']} "
              f"replans={summary['replans']} "
              f"switches={summary['switches']} "
              f"sampling={summary['sampling_seconds']:.3f}s")
    if getattr(args, "metrics_json", None):
        obs_doc = {"registry": obs.REGISTRY.to_dict()}
        if profiler is not None:
            obs_doc["profile"] = profiler.to_dict()
        _dump_metrics_json(args.metrics_json, task, snapshots, systems,
                           reports, obs_doc=obs_doc)
        print(f"\nmetrics written to {args.metrics_json}")
    if tracer is not None:
        spans = tracer.export_chrome(args.trace_out)
        print(f"trace written to {args.trace_out} ({spans} spans; "
              "open at chrome://tracing or ui.perfetto.dev)")
    if profiler is not None and not getattr(args, "metrics_json", None):
        slow = profiler.slow_pages()[:3]
        if slow:
            print("\nslowest pages: " + ", ".join(
                f"{p['did']} ({p['seconds']:.3f}s)" for p in slow))
    obs.disable_all()
    if "noreuse" in systems:
        print("\nresult agreement:",
              "OK" if not problems else f"MISMATCH {problems[:3]}")
        if problems:
            return 1
    return 0


def _adapt_summary(report) -> dict:
    """Aggregate the controller's per-snapshot decisions of a series."""
    replan_actions = ("replan_switch", "replan_keep", "shadow_replan",
                      "forced_replan")
    switch_actions = ("replan_switch", "forced_replan")
    summary = {"detections": 0, "replans": 0, "switches": 0,
               "sampling_seconds": 0.0}
    for snap in report.snapshots:
        decision = (snap.optimizer or {}).get("adapt")
        if not decision:
            continue
        if decision.get("signal"):
            summary["detections"] += 1
        if decision["action"] in replan_actions:
            summary["replans"] += 1
        if decision["action"] in switch_actions:
            summary["switches"] += 1
        summary["sampling_seconds"] += decision.get("sampling_seconds",
                                                    0.0)
    return summary


def _dump_metrics_json(path: str, task, snapshots, systems,
                       reports, obs_doc=None) -> None:
    """Write the run's full telemetry as one JSON document.

    Per system: total seconds, the mean Figure 11 decomposition, and a
    per-snapshot list of ``Timings.to_dict()`` (which nests
    ``RuntimeMetrics``/``FastPathStats`` when attached) plus mention
    counts — the same shapes the serving layer's ``/metrics`` endpoint
    exports. ``obs_doc`` (the metrics registry dump and, when
    profiling, the profiler dump) lands under the ``obs`` key — the
    JSON superset of the Prometheus exposition.
    """
    import json

    doc = {
        "task": task.name,
        "n_snapshots": len(snapshots),
        "n_pages": len(snapshots[0]) if snapshots else 0,
        "systems": {},
    }
    if obs_doc:
        doc["obs"] = obs_doc
    for s in systems:
        report = reports[s]
        doc["systems"][s] = {
            "total_seconds": report.total_seconds(),
            "mean_decomposition": report.mean_decomposition(),
            "snapshots": [
                {
                    "index": snap.snapshot_index,
                    "seconds": snap.seconds,
                    "mentions": snap.mentions,
                    "timings": snap.timings.to_dict(),
                    **({"optimizer": snap.optimizer}
                       if snap.optimizer is not None else {}),
                }
                for snap in report.snapshots
            ],
        }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def _cmd_check(args: argparse.Namespace) -> int:
    """Differential-oracle sweep (implementation in repro.check)."""
    from .check.faults import FAULTS
    from .check.runner import main_check

    if args.fault is not None and args.fault not in FAULTS:
        print(f"error: unknown fault {args.fault!r}; choose from "
              f"{tuple(sorted(FAULTS))}", file=sys.stderr)
        return 2
    return main_check(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the incremental extraction service (repro.serve)."""
    import json as _json
    import shutil
    import threading
    import time

    from .serve import (
        IngestLoop,
        IngestQueue,
        ServeApp,
        SpoolWatcher,
        ViewConfig,
        ViewRegistry,
        build_server,
    )

    task_names = [t.strip() for t in args.tasks.split(",") if t.strip()]
    unknown = [t for t in task_names if t not in ALL_TASKS]
    if unknown:
        print(f"error: unknown tasks {unknown}; choose from {ALL_TASKS}",
              file=sys.stderr)
        return 2
    own_workdir = args.workdir is None
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro_serve_")
    configs = [ViewConfig(
        name=name, task=name, system=args.system,
        fastpath=args.fastpath, jobs=args.jobs,
        backend=args.backend, work_scale=args.work_scale,
        adapt=args.adapt)
        for name in task_names]
    snapshot_store = (CorpusStore(os.path.join(workdir, "corpus"))
                      if args.persist else None)
    if args.shards > 1:
        from .shard import ShardedDeployment

        deployment = ShardedDeployment(
            os.path.join(workdir, "shards"), configs,
            n_shards=args.shards, n_replicas=args.replicas,
            max_staleness=args.max_staleness,
            check=args.check == "on", capacity=args.queue_size,
            snapshot_store=snapshot_store)
        registry = deployment.workers[0].registry
        ingest_queue = deployment  # duck-typed front door
        loop = deployment
        watcher = (SpoolWatcher(args.spool, deployment)
                   if args.spool else None)
        app = ServeApp(registry, ingest_queue, loop, watcher=watcher,
                       sharded=deployment)
    else:
        registry = ViewRegistry(os.path.join(workdir, "views"))
        for config in configs:
            registry.register(config)
        ingest_queue = IngestQueue(maxsize=args.queue_size)
        loop = IngestLoop(registry, ingest_queue,
                          check=args.check == "on",
                          snapshot_store=snapshot_store)
        watcher = (SpoolWatcher(args.spool, ingest_queue)
                   if args.spool else None)
        app = ServeApp(registry, ingest_queue, loop, watcher=watcher)
    app.start()

    # Bootstrap snapshots: an existing corpus store, or the demo corpus.
    snapshots = []
    if args.store is not None:
        snapshots = list(CorpusStore(args.store))
    elif args.demo:
        template = make_task(task_names[0], work_scale=0)
        factory = (dblife_corpus if template.corpus == "dblife"
                   else wikipedia_corpus)
        kwargs = ({} if args.demo_unchanged is None
                  else {"p_unchanged": args.demo_unchanged})
        snapshots = list(factory(n_pages=args.demo_pages,
                                 seed=args.seed, **kwargs)
                         .snapshots(args.demo_snapshots))
    for snapshot in snapshots:
        while not ingest_queue.push(snapshot, block=True, timeout=1.0):
            pass
    if snapshots:
        print(f"ingesting {len(snapshots)} bootstrap snapshot(s) ...")
        loop.drain(timeout=600.0)

    server = build_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    tier = (f" across {args.shards} shard(s)"
            + (f" x {args.replicas} replica(s)" if args.replicas else "")
            if args.shards > 1 else "")
    print(f"serving {len(task_names)} view(s) "
          f"({', '.join(task_names)}){tier} on http://{host}:{port}")
    print("  try:")
    print(f"    curl 'http://{host}:{port}/views'")
    print(f"    curl 'http://{host}:{port}/query?view={task_names[0]}"
          "&limit=5'")
    print(f"    curl 'http://{host}:{port}/metrics'")
    if args.spool:
        print(f"  spool: drop snapshot_NNNN.dat files into {args.spool}")
    if args.max_seconds is not None:
        threading.Timer(args.max_seconds, server.shutdown).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if args.status_json:
            # Capture while the ingest loop is still alive so the
            # health verdict reflects the serving state, not shutdown.
            status = {
                "healthz": app.handle_healthz()[1],
                "metrics": app.handle_metrics()[1],
            }
            with open(args.status_json, "w", encoding="utf-8") as f:
                _json.dump(status, f, indent=2)
                f.write("\n")
            print(f"status written to {args.status_json}")
        if args.prom_out:
            _, exposition = app.handle_metrics_prom()
            with open(args.prom_out, "w", encoding="utf-8") as f:
                f.write(exposition)
            print(f"prometheus exposition written to {args.prom_out}")
        app.shutdown()
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        # Give daemon HTTP worker threads a beat to unwind.
        time.sleep(0.05)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Render telemetry files (``repro obs report``)."""
    from .obs import report as obs_report

    if args.action != "report":  # argparse enforces; belt and braces
        print(f"error: unknown obs action {args.action!r}",
              file=sys.stderr)
        return 2
    paths = [p for p in (args.metrics_json, args.trace) if p]
    if not paths:
        print("error: pass --metrics-json PATH and/or --trace PATH",
              file=sys.stderr)
        return 2
    for i, path in enumerate(paths):
        if not os.path.exists(path):
            print(f"error: no such file {path!r}", file=sys.stderr)
            return 2
        try:
            doc = obs_report.load_document(path)
            rendered = obs_report.render_report(doc, top=args.top)
        except ValueError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        if i:
            print()
        print(rendered, end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Aggregate the rendered benchmark tables into one report."""
    import os

    directory = args.results
    if not os.path.isdir(directory):
        print(f"error: no results directory {directory} — run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 2
    names = sorted(n for n in os.listdir(directory)
                   if n.endswith(".txt"))
    if not names:
        print(f"error: no result tables in {directory}", file=sys.stderr)
        return 2
    print("# Delex reproduction — benchmark results\n")
    for name in names:
        with open(os.path.join(directory, name), encoding="utf-8") as f:
            body = f.read().rstrip()
        print(f"## {name}\n")
        print(body)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Delex (SIGMOD 2009) reproduction — IE over "
                    "evolving text")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tasks", help="list the evaluation IE tasks")

    inspect = sub.add_parser("inspect",
                             help="show a task's program/units/chains")
    inspect.add_argument("--task", required=True, choices=ALL_TASKS)

    corpus = sub.add_parser("corpus", help="generate an evolving corpus")
    corpus.add_argument("--kind", choices=("dblife", "wikipedia"),
                        required=True)
    corpus.add_argument("--pages", type=int, default=60)
    corpus.add_argument("--snapshots", type=int, default=5)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--store", required=True,
                        help="directory for the corpus store")
    corpus.add_argument("--drift", default=None,
                        choices=("stationary", "churn_burst", "redesign",
                                 "vocab_drift"),
                        help="generate a regime-shifting series with "
                             "this drift profile instead of the "
                             "stationary evolver")
    corpus.add_argument("--shift-at", type=int, default=2,
                        metavar="INDEX",
                        help="first snapshot index produced under the "
                             "drifted regime (default 2)")

    run = sub.add_parser(
        "run", help="run systems over a stored corpus",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro run --task play --store /tmp/corpus "
               "--systems noreuse,delex\n"
               "  repro run --task play --systems noreuse,delex "
               "--jobs 4\n"
               "      (no --store: small generated demo corpus; "
               "--jobs 4 fans page\n"
               "       batches out over 4 workers — results are "
               "identical to --jobs 1)")
    run.add_argument("--task", required=True, choices=ALL_TASKS)
    run.add_argument("--store",
                     help="corpus store directory (omit for a small "
                          "generated demo corpus)")
    run.add_argument("--systems", default="noreuse,delex",
                     help="comma-separated subset of "
                          f"{','.join(SYSTEM_NAMES)}")
    run.add_argument("--work-scale", type=float, default=1.0)
    run.add_argument("--jobs", type=int, default=1,
                     help="worker count for the execution runtime "
                          "(default 1 = serial)")
    run.add_argument("--backend", default="auto",
                     choices=("auto", "serial", "thread", "process"),
                     help="executor backend; auto picks by blackbox "
                          "cost (default auto)")
    run.add_argument("--check", default="off", choices=("on", "off"),
                     help="runtime invariant assertions (derivation "
                          "geometry, span bounds, page order, memo "
                          "replay); off by default — zero hot-path "
                          "cost when disabled")
    run.add_argument("--fastpath", default="on", choices=("on", "off"),
                     help="snapshot-delta fast paths (page "
                          "fingerprinting, match memoization, automaton "
                          "cache, reuse-file index) for the reusing "
                          "systems; results are identical either way "
                          "(default on)")
    run.add_argument("--adapt", default="off",
                     choices=("off", "shadow", "on"),
                     help="drift-aware online re-optimization for delex: "
                          "off = re-plan every snapshot (the paper's "
                          "behavior); shadow = plan once, detect drift "
                          "and log would-be replans without switching; "
                          "on = plan once and re-plan/switch on drift "
                          "behind a hysteresis guard. Results are "
                          "identical in all modes (Theorem 1)")
    run.add_argument("--metrics-json", default=None, metavar="PATH",
                     help="after the run, dump per-system per-snapshot "
                          "timings, runtime telemetry, fast-path "
                          "counters, and the obs metrics registry as "
                          "JSON to PATH")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="record hierarchical spans (snapshot > page "
                          "> unit > batch) and write a Chrome "
                          "trace_event JSON file to PATH")
    run.add_argument("--trace-sample", type=float, default=1.0,
                     help="keep every 1/SAMPLE-th high-volume span "
                          "(pages, units, batches); snapshot spans are "
                          "always kept (default 1.0 = keep all)")
    run.add_argument("--profile", default="off", choices=("on", "off"),
                     help="per-IE-unit and per-matcher wall/CPU "
                          "accounting plus a slowest-pages log; "
                          "results are identical either way "
                          "(default off)")
    run.add_argument("--top-pages", type=int, default=10,
                     help="slow-page log size for --profile "
                          "(default 10)")

    check = sub.add_parser(
        "check", help="differential correctness sweep (fuzz + oracle)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro check --seed 0 --budget 60 --grid full\n"
               "  repro check --fault drop_copied --bundle-dir /tmp/b\n"
               "      (self-test: the oracle must catch the planted "
               "bug,\n       shrink it, and write a replayable bundle)\n"
               "  repro check --replay /tmp/b\n")
    check.add_argument("--seed", type=int, default=0,
                       help="first fuzz seed (default 0)")
    check.add_argument("--budget", type=float, default=60.0,
                       help="wall-clock budget in seconds (default 60)")
    check.add_argument("--grid", default="small",
                       choices=("small", "full"),
                       help="sweep grid: small = CI smoke set, full "
                            "adds the process backend, the ST policy, "
                            "the mixed assignment, and the live "
                            "optimizer (default small)")
    check.add_argument("--shrink", dest="shrink", action="store_true",
                       default=True,
                       help="minimize a failing series (default)")
    check.add_argument("--no-shrink", dest="shrink",
                       action="store_false",
                       help="report the first failing series as-is")
    check.add_argument("--check", default="on", choices=("on", "off"),
                       help="runtime invariant assertions during the "
                            "sweep (default on)")
    check.add_argument("--fault", default=None,
                       help="plant a known reuse bug (harness "
                            "self-test); the run must FAIL")
    check.add_argument("--bundle-dir", default=None,
                       help="write a replayable repro bundle here on "
                            "failure")
    check.add_argument("--replay", default=None, metavar="BUNDLE",
                       help="replay a previously written repro bundle "
                            "instead of fuzzing")
    check.add_argument("--verbose", action="store_true",
                       help="per-case progress on stderr")

    serve = sub.add_parser(
        "serve", help="run the incremental extraction service",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro serve --demo --port 8800\n"
               "      (generate a small evolving corpus, ingest it, "
               "serve /query)\n"
               "  repro serve --tasks play,talk --store /tmp/corpus "
               "--spool /tmp/spool\n"
               "      (bootstrap from a stored corpus, then keep "
               "ingesting snapshot\n       files dropped into the "
               "spool directory)\n"
               "  curl 'http://127.0.0.1:8800/query?view=play&limit=5'")
    serve.add_argument("--tasks", default="play",
                       help="comma-separated tasks to register as "
                            "materialized views (default play)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8800,
                       help="HTTP port (0 = ephemeral; default 8800)")
    serve.add_argument("--store", default=None,
                       help="bootstrap: ingest all snapshots of this "
                            "corpus store at startup")
    serve.add_argument("--demo", action="store_true",
                       help="bootstrap: ingest a small generated "
                            "evolving demo corpus")
    serve.add_argument("--demo-pages", type=int, default=12)
    serve.add_argument("--demo-snapshots", type=int, default=3)
    serve.add_argument("--demo-unchanged", type=float, default=None,
                       metavar="P",
                       help="demo corpus per-page probability of "
                            "staying identical between snapshots "
                            "(default: the corpus's paper band; lower "
                            "it for a churn-heavy series)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--spool", default=None, metavar="DIR",
                       help="watch DIR for snapshot_NNNN.dat files and "
                            "ingest them continuously")
    serve.add_argument("--mode", "--system", dest="system",
                       default="delex",
                       choices=("delex", "noreuse", "delta"),
                       help="view maintenance mode (default delex); "
                            "'delta' applies each snapshot as a "
                            "tuple-level (adds, dels) delta through "
                            "the relational plan")
    serve.add_argument("--fastpath", default="on",
                       choices=("on", "off"))
    serve.add_argument("--adapt", default="off",
                       choices=("off", "shadow", "on"),
                       help="drift-aware in-flight re-planning for "
                            "delex views: shadow detects and logs, on "
                            "re-plans behind the hysteresis guard; "
                            "published rows are identical in every "
                            "mode (default off)")
    serve.add_argument("--jobs", type=int, default=1)
    serve.add_argument("--backend", default="auto",
                       choices=("auto", "serial", "thread", "process"))
    serve.add_argument("--work-scale", type=float, default=1.0)
    serve.add_argument("--check", default="off", choices=("on", "off"),
                       help="guard every apply with the invariant "
                            "layer and the store-vs-engine consistency "
                            "check (default off)")
    serve.add_argument("--queue-size", type=int, default=8,
                       help="ingest queue bound (backpressure beyond "
                            "this; default 8)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition the store across N in-process "
                            "shard workers behind a scatter-gather "
                            "router with consistent generation "
                            "vectors (default 1 = classic single "
                            "apply loop)")
    serve.add_argument("--replicas", type=int, default=0, metavar="R",
                       help="read replicas per shard (sharded mode "
                            "only; default 0)")
    serve.add_argument("--max-staleness", type=int, default=0,
                       metavar="K",
                       help="route reads to a replica only if it is "
                            "at most K snapshots behind its shard "
                            "primary (default 0)")
    serve.add_argument("--persist", action="store_true",
                       help="persist applied snapshots to "
                            "<workdir>/corpus")
    serve.add_argument("--workdir", default=None,
                       help="serving state directory (default: "
                            "temporary, removed on exit)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="shut down after this many seconds "
                            "(smoke tests)")
    serve.add_argument("--status-json", default=None, metavar="PATH",
                       help="on shutdown, dump /healthz + /metrics "
                            "JSON to PATH")
    serve.add_argument("--prom-out", default=None, metavar="PATH",
                       help="on shutdown, dump the Prometheus text "
                            "exposition (same payload as "
                            "/metrics?format=prometheus) to PATH")

    obs = sub.add_parser(
        "obs", help="observability utilities",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro run --task play --metrics-json m.json "
               "--profile on\n"
               "  repro obs report --metrics-json m.json\n"
               "      (figure-11 decomposition table + slowest pages "
               "/ costliest units)\n"
               "  repro run --task play --trace-out t.json\n"
               "  repro obs report --trace t.json")
    obs.add_argument("action", choices=("report",),
                     help="report: render a metrics-json or trace file")
    obs.add_argument("--metrics-json", default=None, metavar="PATH",
                     help="a `repro run --metrics-json` document")
    obs.add_argument("--trace", default=None, metavar="PATH",
                     help="a `repro run --trace-out` Chrome trace file")
    obs.add_argument("--top", type=int, default=10,
                     help="rows per ranking table (default 10)")

    report = sub.add_parser("report",
                            help="print all rendered benchmark tables")
    report.add_argument(
        "--results",
        default=os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
            "benchmarks", "results"),
        help="directory holding benchmarks/results/*.txt")

    return parser


_COMMANDS = {
    "tasks": _cmd_tasks,
    "inspect": _cmd_inspect,
    "corpus": _cmd_corpus,
    "run": _cmd_run,
    "check": _cmd_check,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
