"""Cost-based plan selection: parameters, statistics, model, search."""

from .cost import (
    RankedPlan,
    from_scratch_cost,
    plan_cost,
    rank_plans,
    resolve_ru_donor,
    unit_cost,
)
from .enumerate import canonical_plans, count_assignments, enumerate_assignments
from .kernels import DEFAULT_KERNEL_MODEL, KernelCostModel
from .params import CostWeights, Statistics, UnitEstimates, probe_io_weight
from .search import SearchResult, search_plan
from .stats import UnitProfile, collect_statistics, profile_page

__all__ = [
    "CostWeights",
    "UnitEstimates",
    "Statistics",
    "probe_io_weight",
    "collect_statistics",
    "profile_page",
    "UnitProfile",
    "unit_cost",
    "plan_cost",
    "from_scratch_cost",
    "rank_plans",
    "RankedPlan",
    "resolve_ru_donor",
    "search_plan",
    "SearchResult",
    "enumerate_assignments",
    "canonical_plans",
    "count_assignments",
    "KernelCostModel",
    "DEFAULT_KERNEL_MODEL",
]
