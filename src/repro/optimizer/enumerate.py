"""Exhaustive plan enumeration (for the Figure 12 experiment).

The "play" task has 4 IE units and 4 matchers — 256 plans, small
enough to enumerate, execute, and rank, which is how the paper
evaluates how close the optimizer's pick lands to the true best plan.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Sequence

from ..matchers.base import MATCHER_NAMES
from ..plan.units import IEUnit
from ..reuse.engine import PlanAssignment


def enumerate_assignments(units: Sequence[IEUnit],
                          matchers: Sequence[str] = MATCHER_NAMES
                          ) -> Iterator[PlanAssignment]:
    """Yield every matcher assignment (|matchers|^|units| plans)."""
    uids = [u.uid for u in units]
    for combo in product(matchers, repeat=len(uids)):
        yield PlanAssignment(dict(zip(uids, combo)))


def count_assignments(units: Sequence[IEUnit],
                      matchers: Sequence[str] = MATCHER_NAMES) -> int:
    return len(matchers) ** len(units)


def canonical_plans(units: Sequence[IEUnit],
                    matchers: Sequence[str] = MATCHER_NAMES
                    ) -> List[PlanAssignment]:
    """All assignments as a list (use only for small unit counts)."""
    if count_assignments(units, matchers) > 100_000:
        raise ValueError("plan space too large to materialize")
    return list(enumerate_assignments(units, matchers))
