"""Cost model choosing vectorized kernel vs pure-Python matcher path.

The vectorized kernels (:mod:`repro.matchers.st` / ``ud`` / ``ws``)
amortize a fixed per-call setup (array interning, hash tables, sort)
against a much lower per-character cost, so they lose on small regions
and win on large ones. This model carries the measured per-unit costs
and answers "which path is cheaper for *this* region size?" — the same
shape of decision the plan optimizer makes at the unit level, pushed
down to the matcher inner loop.

Constants were fit on the DBLife-style bench corpus
(``benchmarks/test_matcher_kernels.py`` re-measures them); they only
steer *performance*, never results — both paths are parity-pinned.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelCostModel:
    """Linear cost curves (nanoseconds) for kernel vs fallback paths."""

    # ST: suffix-automaton build+probe vs k-gram anchor kernel, per
    # combined character (len(p_region) + len(q_region)).
    st_fallback_ns_per_char: float = 590.0
    st_kernel_ns_per_char: float = 190.0
    st_kernel_overhead_ns: float = 75_000.0

    # UD: Myers diff over interned int lines needs enough lines to pay
    # for the interning pass.
    ud_min_lines: int = 192

    # WS: vectorized winnowing (crc table + window minima) per combined
    # UTF-8 byte.
    ws_fallback_ns_per_byte: float = 1350.0
    ws_kernel_ns_per_byte: float = 260.0
    ws_kernel_overhead_ns: float = 90_000.0

    def use_st_kernel(self, p_chars: int, q_chars: int) -> bool:
        total = p_chars + q_chars
        fallback = total * self.st_fallback_ns_per_char
        kernel = self.st_kernel_overhead_ns + total * self.st_kernel_ns_per_char
        return kernel < fallback

    def use_ud_kernel(self, p_lines: int, q_lines: int) -> bool:
        return p_lines + q_lines >= self.ud_min_lines

    def use_ws_kernel(self, n_bytes: int) -> bool:
        fallback = n_bytes * self.ws_fallback_ns_per_byte
        kernel = self.ws_kernel_overhead_ns + n_bytes * self.ws_kernel_ns_per_byte
        return kernel < fallback


#: Shared instance the matchers consult (lazily, to dodge the
#: optimizer -> cost -> engine -> matchers import cycle).
DEFAULT_KERNEL_MODEL = KernelCostModel()
