"""Statistics estimation from a small sample (Section 6.3, end).

The collector samples pages of the snapshot to be processed, pairs them
with their previous versions, and:

* profiles a plain execution of each sampled *previous* page to learn
  per-unit input-region counts/lengths (``a``, ``l``) and extractor
  speed (seconds/char);
* runs each ST/UD matcher over every sampled page pair, per unit,
  deriving copy/extraction regions with the unit's (α, β) to estimate
  the matcher's speed and its selectivities ``s``, ``g``, ``h``;
* estimates RU's selectivities by replaying whole-page ST/UD segments
  through region intersection — the work RU would recycle;
* estimates ``f`` from the last ``k`` snapshot deltas.

Figure 13 shows Delex needs only ~3 snapshots and ~30 sample pages for
the estimates to be good; ``sample_size`` and ``k_snapshots`` expose
exactly those knobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corpus.snapshot import Snapshot
from ..corpus.stats import snapshot_delta
from ..matchers.base import RU_NAME, ST_NAME, UD_NAME, MatchCache
from ..matchers.registry import make_matcher
from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    dedupe_rows,
    hash_join,
)
from ..plan.units import IEUnit
from ..reuse.files import BLOCK_SIZE, InputTuple
from ..reuse.regions import derive_reuse
from ..text.document import Page
from ..text.regions import MatchSegment
from ..text.span import Interval, Span
from ..xlog.registry import EvalContext
from .params import CostWeights, Statistics, UnitEstimates


def estimate_f(deltas: Sequence[object], mode: str = "flat",
               half_life: float = 1.0) -> float:
    """Estimate ``f`` from consecutive snapshot deltas, oldest first.

    ``mode="flat"`` is the paper's estimator — the unweighted mean of
    ``fraction_with_previous`` over the window — and the pinned
    default. ``mode="recency"`` weights delta ``i`` by ``0.5 ** (age /
    half_life)`` (age in steps, newest delta has age 0), so after a
    regime shift the estimate converges to the new change rate within
    about one half-life instead of dragging the stale regime along for
    the whole window; the adaptive re-planner samples with this
    variant so post-drift plans price reuse at the new rate.
    """
    if not deltas:
        return 0.0
    if mode == "flat":
        return (sum(d.fraction_with_previous for d in deltas)
                / len(deltas))
    if mode != "recency":
        raise ValueError(f"unknown f estimator mode: {mode!r}")
    span = max(half_life, 1e-9)
    weights = [0.5 ** ((len(deltas) - 1 - i) / span)
               for i in range(len(deltas))]
    total = sum(weights)
    return sum(w * d.fraction_with_previous
               for w, d in zip(weights, deltas)) / total


@dataclass
class UnitProfile:
    """Input regions seen by one unit on one page, plus extract cost."""

    regions: List[Interval] = field(default_factory=list)
    extract_seconds: float = 0.0
    extract_chars: int = 0
    output_tuples: int = 0


def profile_page(plan: CompiledPlan, units: Sequence[IEUnit],
                 page: Page) -> Dict[str, UnitProfile]:
    """Plain-execute one page, recording per-unit inputs and timings."""
    profiles = {u.uid: UnitProfile() for u in units}
    unit_of_top = {id(u.top): u for u in units}
    memo: Dict[int, List[TupleRow]] = {}
    ctx = EvalContext(page.text, page.did)

    def run_unit(unit: IEUnit, rows: List[TupleRow]) -> List[TupleRow]:
        profile = profiles[unit.uid]
        out: List[TupleRow] = []
        for row in rows:
            region = row[unit.in_var]
            profile.regions.append(region.interval)
            text = page.text[region.start:region.end]
            start = time.perf_counter()
            extractions = unit.extractor.extract(text)
            profile.extract_seconds += time.perf_counter() - start
            profile.extract_chars += len(text)
            for extraction in extractions:
                fields = unit.ie_node.extension_fields(extraction, region)
                post = unit.apply_absorbed(fields, ctx)
                if post is None:
                    continue
                profile.output_tuples += 1
                if unit.projects_away_input:
                    out.append(dict(post))
                else:
                    out.append({**row, **post})
        return out

    def evaluate(node: Node) -> List[TupleRow]:
        key = id(node)
        if key in memo:
            return memo[key]
        unit = unit_of_top.get(key)
        if unit is not None:
            rows = run_unit(unit, evaluate(unit.ie_node.child))
        elif isinstance(node, ScanNode):
            rows = [{node.var: Span(page.did, 0, len(page.text))}]
        elif isinstance(node, SelectNode):
            rows = [r for r in evaluate(node.child) if node.passes(r, ctx)]
        elif isinstance(node, ProjectNode):
            rows = dedupe_rows([node.apply(r) for r in evaluate(node.child)])
        elif isinstance(node, JoinNode):
            rows = hash_join(evaluate(node.left), evaluate(node.right),
                             node.on)
        elif isinstance(node, UnionNode):
            rows = dedupe_rows([row for child in node.children
                                for row in evaluate(child)])
        elif isinstance(node, IENode):
            raise AssertionError("IENode outside unit")
        else:
            raise TypeError(type(node).__name__)
        memo[key] = rows
        return rows

    for rel in plan.program.head_relations():
        evaluate(plan.roots[rel])
    return profiles


def _probe_extract_rate(unit: IEUnit,
                        pairs: Sequence[Tuple[Page, Page]]) -> float:
    """Measure the unit's extractor seconds/char on one short probe
    region (with the blackbox work enabled).

    The rate is a property of the extractor and the machine, so callers
    cache it across snapshots (see :class:`~repro.core.delex.DelexSystem`).
    """
    for p_page, _ in pairs:
        text = p_page.text[:512]
        if not text:
            continue
        start = time.perf_counter()
        unit.extractor.extract(text)
        elapsed = time.perf_counter() - start
        return elapsed / len(text)
    return 0.0


def _sample_pairs(snapshot: Snapshot, prev: Snapshot,
                  sample_size: int) -> List[Tuple[Page, Page]]:
    """Deterministic spread sample of pages that have a previous
    version (reuse statistics only make sense on those)."""
    shared = [(p, prev.get(p.url)) for p in snapshot.canonical_pages()
              if prev.get(p.url) is not None]
    if not shared:
        return []
    if len(shared) <= sample_size:
        return shared
    step = len(shared) / sample_size
    return [shared[int(i * step)] for i in range(sample_size)]


def load_recorded_regions(capture_dir: str, units: Sequence[IEUnit]
                          ) -> Dict[str, Dict[str, List[Interval]]]:
    """Read each unit's recorded input regions from its I reuse file.

    This gives the previous snapshot's per-unit regions *for free* (a
    cheap sequential scan) instead of re-running extraction on sampled
    previous pages.
    """
    import os

    from ..reuse.engine import ReuseEngine
    from ..reuse.files import iter_all_pages

    out: Dict[str, Dict[str, List[Interval]]] = {}
    for unit in units:
        path = ReuseEngine._file(capture_dir, unit.uid, "I")
        per_page: Dict[str, List[Interval]] = {}
        if os.path.exists(path):
            for did, records in iter_all_pages(path):
                per_page[did] = [Interval(r["s"], r["e"]) for r in records]
        out[unit.uid] = per_page
    return out


def collect_statistics(plan: CompiledPlan, units: Sequence[IEUnit],
                       snapshot: Snapshot,
                       history: Sequence[Snapshot],
                       sample_size: int = 30,
                       k_snapshots: int = 3,
                       weights: Optional[CostWeights] = None,
                       max_match_pairs: int = 6,
                       prev_capture_dir: Optional[str] = None,
                       prev_unit_stats: Optional[Dict[str, object]] = None,
                       known_extract_rates: Optional[Dict[str, float]] = None,
                       f_mode: str = "flat",
                       f_half_life: float = 1.0) -> Statistics:
    """Estimate all cost-model parameters for processing ``snapshot``.

    ``history`` is the list of past snapshots, most recent last (the
    previous snapshot is ``history[-1]``); only the last
    ``k_snapshots`` contribute to the change-rate estimate ``f``.

    When ``prev_capture_dir`` points at the previous run's reuse files,
    the previous snapshot's per-unit regions are read from the I files
    instead of re-profiled; when ``prev_unit_stats`` carries the
    previous run's :class:`~repro.reuse.engine.UnitRunStats`, per-unit
    sizes and extract rates come from there. Both cut the statistics
    collection cost roughly in half, which matters at small corpus
    scales where sampling is proportionally expensive.
    """
    if not history:
        raise ValueError("need at least the previous snapshot")
    prev = history[-1]
    window = list(history[-k_snapshots:]) + [snapshot]
    deltas = [snapshot_delta(a, b) for a, b in zip(window, window[1:])]
    f = estimate_f(deltas, mode=f_mode, half_life=f_half_life)

    pairs = _sample_pairs(snapshot, prev, sample_size)
    weights = weights if weights is not None else CostWeights()
    estimates = {u.uid: UnitEstimates() for u in units}
    if not pairs:
        return Statistics(f=f, m=len(snapshot),
                          d_blocks=prev.total_bytes() / BLOCK_SIZE,
                          units=estimates, weights=weights,
                          sample_pages=0, snapshots_used=len(deltas))

    recorded_q = (load_recorded_regions(prev_capture_dir, units)
                  if prev_capture_dir else None)

    # 1. Profile plain execution of the sampled current pages with the
    #    blackbox work disabled (structure only, nearly free); previous
    #    pages are profiled only when no capture is available.
    from ..extractors.base import profiling_mode

    p_profiles: Dict[str, List[UnitProfile]] = {u.uid: [] for u in units}
    q_regions_by_page: Dict[str, List[List[Interval]]] = {
        u.uid: [] for u in units}
    with profiling_mode():
        for p_page, q_page in pairs:
            prof_p = profile_page(plan, units, p_page)
            if recorded_q is not None:
                for u in units:
                    p_profiles[u.uid].append(prof_p[u.uid])
                    q_regions_by_page[u.uid].append(
                        recorded_q[u.uid].get(q_page.did, []))
            else:
                prof_q = profile_page(plan, units, q_page)
                for u in units:
                    p_profiles[u.uid].append(prof_p[u.uid])
                    q_regions_by_page[u.uid].append(prof_q[u.uid].regions)

    n_pages = len(pairs)
    for u in units:
        est = estimates[u.uid]
        p_profs = p_profiles[u.uid]
        total_regions = sum(len(pr.regions) for pr in p_profs)
        total_chars = sum(sum(len(r) for r in pr.regions) for pr in p_profs)
        est.a = total_regions / n_pages
        est.a_prev = (sum(len(rs) for rs in q_regions_by_page[u.uid])
                      / n_pages)
        est.l = (total_chars / total_regions) if total_regions else 0.0
        if known_extract_rates is not None and u.uid in known_extract_rates:
            est.extract_rate = known_extract_rates[u.uid]
        else:
            est.extract_rate = _probe_extract_rate(u, pairs)
            if known_extract_rates is not None:
                known_extract_rates[u.uid] = est.extract_rate
        prev_stats = (prev_unit_stats or {}).get(u.uid)
        if prev_stats is not None:
            est.b_blocks = float(getattr(prev_stats, "i_blocks", 1.0))
            est.c_blocks = float(getattr(prev_stats, "o_blocks", 1.0))
        else:
            # Rough block estimate from tuple counts (~60 B/record).
            est.b_blocks = max(1.0,
                               est.a_prev * len(prev) * 60 / BLOCK_SIZE)
            est.c_blocks = max(1.0,
                               est.a_prev * len(prev) * 80 / BLOCK_SIZE)

    # 2. Matcher probes per unit and page pair.
    match_secs: Dict[str, float] = {ST_NAME: 0.0, UD_NAME: 0.0}
    match_chars: Dict[str, float] = {ST_NAME: 0.0, UD_NAME: 0.0}
    ru_secs = 0.0
    ru_ops = 1.0
    sums: Dict[Tuple[str, str], Dict[str, float]] = {}
    for u in units:
        for name in (ST_NAME, UD_NAME, "RU:" + ST_NAME, "RU:" + UD_NAME):
            sums[(u.uid, name)] = {"g": 0.0, "h": 0.0, "s": 0.0, "n": 0.0}

    for idx, (p_page, q_page) in enumerate(pairs[:max_match_pairs]):
        whole_segments: Dict[str, List[MatchSegment]] = {}
        for name in (ST_NAME, UD_NAME):
            matcher = make_matcher(name, MatchCache(), min_length=16)
            start = time.perf_counter()
            segs = matcher.match(p_page.text, p_page.whole,
                                 q_page.text, q_page.whole)
            match_secs[name] += time.perf_counter() - start
            match_chars[name] += len(p_page.text) + len(q_page.text)
            whole_segments[name] = segs
        for u in units:
            # Probing every (region, candidate) combination is
            # quadratic for sentence-level units; a capped sample is
            # plenty for estimating rates and selectivities.
            p_regions = p_profiles[u.uid][idx].regions[:6]
            q_regions = q_regions_by_page[u.uid][idx][:6]
            q_inputs = {i: InputTuple(i, q_page.did, r.start, r.end)
                        for i, r in enumerate(q_regions)}
            for name in (ST_NAME, UD_NAME):
                matcher = make_matcher(
                    name, MatchCache(),
                    min_length=max(8, min(2 * u.beta + 2, 32)))
                agg = sums[(u.uid, name)]
                for region in p_regions:
                    segments: List[MatchSegment] = []
                    start = time.perf_counter()
                    for itid, q_input in q_inputs.items():
                        found = matcher.match(p_page.text, region,
                                              q_page.text, q_input.interval)
                        segments.extend(
                            MatchSegment(s.p_start, s.q_start, s.length,
                                         itid) for s in found)
                    elapsed = time.perf_counter() - start
                    match_secs[name] += elapsed
                    match_chars[name] += (len(region) + sum(
                        len(r) for r in q_regions)) or 1
                    derivation = derive_reuse(region, p_page.did, segments,
                                              q_inputs, {}, u.alpha, u.beta)
                    uncovered = sum(len(er) for er in
                                    derivation.extraction_regions)
                    agg["g"] += uncovered / max(1, len(region))
                    agg["h"] += len(derivation.copy_zones)
                    agg["s"] += len(q_inputs)
                    agg["n"] += 1
                # RU replay: intersect whole-page segments with regions.
                agg_ru = sums[(u.uid, "RU:" + name)]
                for region in p_regions:
                    start = time.perf_counter()
                    segments = []
                    for itid, q_input in q_inputs.items():
                        for seg in whole_segments[name]:
                            trimmed = seg.trim_to_p(region)
                            if trimmed is None:
                                continue
                            trimmed = trimmed.trim_to_q(q_input.interval)
                            if trimmed is not None:
                                segments.append(MatchSegment(
                                    trimmed.p_start, trimmed.q_start,
                                    trimmed.length, itid))
                    ru_secs += time.perf_counter() - start
                    ru_ops += len(whole_segments[name]) * max(1, len(q_inputs))
                    derivation = derive_reuse(region, p_page.did, segments,
                                              q_inputs, {}, u.alpha, u.beta)
                    uncovered = sum(len(er) for er in
                                    derivation.extraction_regions)
                    agg_ru["g"] += uncovered / max(1, len(region))
                    agg_ru["h"] += len(derivation.copy_zones)
                    agg_ru["s"] += len(q_inputs)
                    agg_ru["n"] += 1

    for u in units:
        est = estimates[u.uid]
        for name in (ST_NAME, UD_NAME):
            agg = sums[(u.uid, name)]
            n = agg["n"] or 1.0
            est.g[name] = agg["g"] / n
            est.h[name] = agg["h"] / n
            est.s[name] = agg["s"] / n
            agg_ru = sums[(u.uid, "RU:" + name)]
            n_ru = agg_ru["n"] or 1.0
            est.g_ru[name] = agg_ru["g"] / n_ru
            est.h_ru[name] = agg_ru["h"] / n_ru
            est.s[RU_NAME] = agg_ru["s"] / n_ru

    weights.match_rate[ST_NAME] = (match_secs[ST_NAME]
                                   / max(1.0, match_chars[ST_NAME]))
    weights.match_rate[UD_NAME] = (match_secs[UD_NAME]
                                   / max(1.0, match_chars[UD_NAME]))
    weights.match_rate[RU_NAME] = ru_secs / ru_ops / 100.0

    return Statistics(f=f, m=len(snapshot),
                      d_blocks=prev.total_bytes() / BLOCK_SIZE,
                      units=estimates, weights=weights,
                      sample_pages=len(pairs),
                      snapshots_used=len(deltas))
