"""Greedy chain-based plan search (Algorithm 1, Section 6.2).

The plan space (one matcher per IE unit) is exponential, and plan cost
is not decomposable because RU units recycle the matching work of other
units. Algorithm 1 tames it:

1. partition the execution tree into IE chains;
2. sort chains by their from-scratch cost estimate, most expensive
   first;
3. for the most expensive chain, pick the best plan from the family
   ``M``: all-DN, or one ST/UD at some unit with RU above it and DN
   below it (plans with two expensive matchers are dominated because
   RU is nearly free);
4. for each later chain, compare its best standalone plan against the
   all-RU plan recycling an earlier chain's bottom matcher, and keep
   the cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME
from ..plan.units import IEChain, IEUnit, partition_chains
from ..reuse.engine import PlanAssignment
from .cost import plan_cost, unit_cost
from .params import Statistics


@dataclass
class SearchResult:
    assignment: PlanAssignment
    estimated_cost: float
    chain_order: List[str] = field(default_factory=list)
    considered: int = 0


def _chain_scratch_cost(chain: IEChain, stats: Statistics) -> float:
    return sum(unit_cost(u, DN_NAME, stats, None) for u in chain.units)


def _chain_plans(chain: IEChain) -> List[Dict[str, str]]:
    """The candidate family M' for one chain (FindBest, lines 3–11).

    ``chain.units`` is top-down: units[0] is the topmost consumer. The
    "ancestors" of unit j (which get RU) are the units above it —
    indices < j; the "descendants" (which get DN) are indices > j.
    """
    plans: List[Dict[str, str]] = [
        {u.uid: DN_NAME for u in chain.units}]
    for j, unit in enumerate(chain.units):
        for expensive in (ST_NAME, UD_NAME):
            plan = {}
            for i, other in enumerate(chain.units):
                if i == j:
                    plan[other.uid] = expensive
                elif i < j:
                    plan[other.uid] = RU_NAME
                else:
                    plan[other.uid] = DN_NAME
            plans.append(plan)
    return plans


def _full_assignment(partial: Dict[str, str],
                     units: Sequence[IEUnit]) -> PlanAssignment:
    """Extend a partial per-chain plan with DN for unassigned units
    (placeholder while other chains are still uncovered)."""
    matchers = {u.uid: partial.get(u.uid, DN_NAME) for u in units}
    return PlanAssignment(matchers)


def search_plan(units: Sequence[IEUnit], stats: Statistics,
                chains: Optional[Sequence[IEChain]] = None) -> SearchResult:
    """Run Algorithm 1 and return the chosen matcher assignment."""
    if chains is None:
        chains = partition_chains(list(units))
    ordered = sorted(chains, key=lambda c: -_chain_scratch_cost(c, stats))
    chosen: Dict[str, str] = {}
    considered = 0

    def cost_with(partial: Dict[str, str]) -> float:
        merged = dict(chosen)
        merged.update(partial)
        return plan_cost(units, _full_assignment(merged, units), stats)

    for i, chain in enumerate(ordered):
        best_plan: Optional[Dict[str, str]] = None
        best_cost = float("inf")
        for plan in _chain_plans(chain):
            considered += 1
            cost = cost_with(plan)
            if cost < best_cost:
                best_plan, best_cost = plan, cost
        if i > 0:
            # Cross-chain alternative: all-RU recycling an earlier
            # chain's bottom matcher (Algorithm 1, lines 9–13).
            bottoms = [c.bottom for c in ordered[:i]]
            donor_available = any(
                chosen.get(b.uid) in (ST_NAME, UD_NAME)
                and _has_raw_page_input(b)
                for b in bottoms)
            if donor_available:
                ru_plan = {u.uid: RU_NAME for u in chain.units}
                considered += 1
                cost = cost_with(ru_plan)
                if cost < best_cost:
                    best_plan, best_cost = ru_plan, cost
        assert best_plan is not None
        chosen.update(best_plan)

    assignment = _full_assignment(chosen, units)
    return SearchResult(assignment=assignment,
                        estimated_cost=plan_cost(units, assignment, stats),
                        chain_order=[c.bottom.uid for c in ordered],
                        considered=considered)


def _has_raw_page_input(unit: IEUnit) -> bool:
    """True when the unit's input is the raw data page (a scan var)."""
    from ..plan.operators import ScanNode
    from ..plan.units import _binder_of

    binder = _binder_of(unit.ie_node.child, unit.in_var)
    return isinstance(binder, ScanNode)
