"""Cost-model parameters (Figure 7).

Three parameter families:

* meta-data statistics (Figure 7a): per-unit input tuple counts ``a``,
  region lengths ``l``, reuse-file sizes ``b``/``c`` in blocks, corpus
  size ``d``/``m``, hash-bucket count ``v``;
* selectivity statistics (Figure 7b): fraction of pages with a previous
  version ``f``, matcher invocations ``s``, post-match extraction
  fraction ``g``, copy regions per region ``h``;
* cost weights ``w``: seconds per block of I/O, per matched character,
  per extracted character, per comparison/probe.

Estimated quantities carry hats in the paper; here everything in
:class:`Statistics` is an estimate produced by
:mod:`repro.optimizer.stats` from a small page sample and the last few
snapshots.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME

DEFAULT_HASH_BUCKETS = 1024


@dataclass
class CostWeights:
    """Environment-dependent cost weights (seconds per unit of work)."""

    io_per_block: float = 2e-5
    find_per_comparison: float = 2e-7
    copy_per_probe: float = 5e-7
    match_rate: Dict[str, float] = field(default_factory=dict)
    """Seconds per character matched, per matcher name."""

    def rate_of(self, matcher: str) -> float:
        if matcher == DN_NAME:
            return 0.0
        if matcher == RU_NAME:
            # RU touches recorded segments, not text; per-character cost
            # is negligible (Section 6.2 relies on this).
            return self.match_rate.get(RU_NAME, 1e-9)
        return self.match_rate.get(matcher, 1e-6)

    def to_dict(self) -> Dict[str, object]:
        return {
            "io_per_block": self.io_per_block,
            "find_per_comparison": self.find_per_comparison,
            "copy_per_probe": self.copy_per_probe,
            "match_rate": dict(sorted(self.match_rate.items())),
        }


def probe_io_weight(block_size: int = 4096, blocks: int = 256) -> float:
    """Measure sequential I/O seconds per block on this machine."""
    payload = b"x" * block_size
    with tempfile.NamedTemporaryFile(delete=False) as f:
        path = f.name
        start = time.perf_counter()
        for _ in range(blocks):
            f.write(payload)
        f.flush()
        os.fsync(f.fileno())
        write_time = time.perf_counter() - start
    try:
        start = time.perf_counter()
        with open(path, "rb") as f:
            while f.read(block_size):
                pass
        read_time = time.perf_counter() - start
    finally:
        os.unlink(path)
    return (write_time + read_time) / (2 * blocks)


@dataclass
class UnitEstimates:
    """Per-IE-unit statistics feeding the cost formulas."""

    a: float = 1.0
    """Average input tuples per page (current snapshot)."""

    a_prev: float = 1.0
    """Average input tuples per page recorded on the previous snapshot."""

    l: float = 0.0
    """Average region length (characters) per input tuple."""

    extract_rate: float = 0.0
    """Extractor seconds per character."""

    b_blocks: float = 0.0
    """Size of I_U on disk (blocks), previous snapshot."""

    c_blocks: float = 0.0
    """Size of O_U on disk (blocks), previous snapshot."""

    s: Dict[str, float] = field(default_factory=dict)
    """Matcher invocations per input tuple, per matcher."""

    g: Dict[str, float] = field(default_factory=dict)
    """Post-match extraction fraction, per matcher (1.0 for DN)."""

    h: Dict[str, float] = field(default_factory=dict)
    """Copy regions per matched input region, per matcher."""

    g_ru: Dict[str, float] = field(default_factory=dict)
    """RU extraction fraction when recycling a donor of each kind."""

    h_ru: Dict[str, float] = field(default_factory=dict)
    """RU copy regions when recycling a donor of each kind."""

    def g_of(self, matcher: str,
             donor_matcher: Optional[str] = None) -> float:
        if matcher == DN_NAME:
            return 1.0
        if matcher == RU_NAME:
            if donor_matcher is None:
                return 1.0  # no donor: RU degenerates to DN
            return self.g_ru.get(donor_matcher, 1.0)
        return self.g.get(matcher, 1.0)

    def h_of(self, matcher: str,
             donor_matcher: Optional[str] = None) -> float:
        if matcher == DN_NAME:
            return 0.0
        if matcher == RU_NAME:
            if donor_matcher is None:
                return 0.0
            return self.h_ru.get(donor_matcher, 0.0)
        return self.h.get(matcher, 0.0)

    def s_of(self, matcher: str) -> float:
        if matcher == DN_NAME:
            return 0.0
        return self.s.get(matcher, 1.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "a": self.a, "a_prev": self.a_prev, "l": self.l,
            "extract_rate": self.extract_rate,
            "b_blocks": self.b_blocks, "c_blocks": self.c_blocks,
            "s": dict(sorted(self.s.items())),
            "g": dict(sorted(self.g.items())),
            "h": dict(sorted(self.h.items())),
            "g_ru": dict(sorted(self.g_ru.items())),
            "h_ru": dict(sorted(self.h_ru.items())),
        }


@dataclass
class Statistics:
    """Everything the cost model needs to price a plan."""

    f: float
    """Fraction of pages with an earlier version (Figure 7b)."""

    m: int
    """Number of pages in the snapshot to be processed."""

    d_blocks: float
    """Raw page data size in blocks (previous snapshot)."""

    units: Dict[str, UnitEstimates]
    weights: CostWeights
    v: int = DEFAULT_HASH_BUCKETS
    sample_pages: int = 0
    snapshots_used: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the shared ``to_dict`` contract).

        Emitted per snapshot by ``repro run --metrics-json`` so the
        optimizer's sampled inputs — and therefore every plan/replan
        decision derived from them — are auditable offline.
        """
        return {
            "f": self.f, "m": self.m, "d_blocks": self.d_blocks,
            "v": self.v, "sample_pages": self.sample_pages,
            "snapshots_used": self.snapshots_used,
            "weights": self.weights.to_dict(),
            "units": {uid: est.to_dict()
                      for uid, est in sorted(self.units.items())},
        }


__all__ = [
    "CostWeights",
    "UnitEstimates",
    "Statistics",
    "probe_io_weight",
    "DEFAULT_HASH_BUCKETS",
    "DN_NAME",
    "UD_NAME",
    "ST_NAME",
    "RU_NAME",
]
