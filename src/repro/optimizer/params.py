"""Cost-model parameters (Figure 7).

Three parameter families:

* meta-data statistics (Figure 7a): per-unit input tuple counts ``a``,
  region lengths ``l``, reuse-file sizes ``b``/``c`` in blocks, corpus
  size ``d``/``m``, hash-bucket count ``v``;
* selectivity statistics (Figure 7b): fraction of pages with a previous
  version ``f``, matcher invocations ``s``, post-match extraction
  fraction ``g``, copy regions per region ``h``;
* cost weights ``w``: seconds per block of I/O, per matched character,
  per extracted character, per comparison/probe.

Estimated quantities carry hats in the paper; here everything in
:class:`Statistics` is an estimate produced by
:mod:`repro.optimizer.stats` from a small page sample and the last few
snapshots.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME

DEFAULT_HASH_BUCKETS = 1024


@dataclass
class CostWeights:
    """Environment-dependent cost weights (seconds per unit of work)."""

    io_per_block: float = 2e-5
    find_per_comparison: float = 2e-7
    copy_per_probe: float = 5e-7
    match_rate: Dict[str, float] = field(default_factory=dict)
    """Seconds per character matched, per matcher name."""

    def rate_of(self, matcher: str) -> float:
        if matcher == DN_NAME:
            return 0.0
        if matcher == RU_NAME:
            # RU touches recorded segments, not text; per-character cost
            # is negligible (Section 6.2 relies on this).
            return self.match_rate.get(RU_NAME, 1e-9)
        return self.match_rate.get(matcher, 1e-6)


def probe_io_weight(block_size: int = 4096, blocks: int = 256) -> float:
    """Measure sequential I/O seconds per block on this machine."""
    payload = b"x" * block_size
    with tempfile.NamedTemporaryFile(delete=False) as f:
        path = f.name
        start = time.perf_counter()
        for _ in range(blocks):
            f.write(payload)
        f.flush()
        os.fsync(f.fileno())
        write_time = time.perf_counter() - start
    try:
        start = time.perf_counter()
        with open(path, "rb") as f:
            while f.read(block_size):
                pass
        read_time = time.perf_counter() - start
    finally:
        os.unlink(path)
    return (write_time + read_time) / (2 * blocks)


@dataclass
class UnitEstimates:
    """Per-IE-unit statistics feeding the cost formulas."""

    a: float = 1.0
    """Average input tuples per page (current snapshot)."""

    a_prev: float = 1.0
    """Average input tuples per page recorded on the previous snapshot."""

    l: float = 0.0
    """Average region length (characters) per input tuple."""

    extract_rate: float = 0.0
    """Extractor seconds per character."""

    b_blocks: float = 0.0
    """Size of I_U on disk (blocks), previous snapshot."""

    c_blocks: float = 0.0
    """Size of O_U on disk (blocks), previous snapshot."""

    s: Dict[str, float] = field(default_factory=dict)
    """Matcher invocations per input tuple, per matcher."""

    g: Dict[str, float] = field(default_factory=dict)
    """Post-match extraction fraction, per matcher (1.0 for DN)."""

    h: Dict[str, float] = field(default_factory=dict)
    """Copy regions per matched input region, per matcher."""

    g_ru: Dict[str, float] = field(default_factory=dict)
    """RU extraction fraction when recycling a donor of each kind."""

    h_ru: Dict[str, float] = field(default_factory=dict)
    """RU copy regions when recycling a donor of each kind."""

    def g_of(self, matcher: str,
             donor_matcher: Optional[str] = None) -> float:
        if matcher == DN_NAME:
            return 1.0
        if matcher == RU_NAME:
            if donor_matcher is None:
                return 1.0  # no donor: RU degenerates to DN
            return self.g_ru.get(donor_matcher, 1.0)
        return self.g.get(matcher, 1.0)

    def h_of(self, matcher: str,
             donor_matcher: Optional[str] = None) -> float:
        if matcher == DN_NAME:
            return 0.0
        if matcher == RU_NAME:
            if donor_matcher is None:
                return 0.0
            return self.h_ru.get(donor_matcher, 0.0)
        return self.h.get(matcher, 0.0)

    def s_of(self, matcher: str) -> float:
        if matcher == DN_NAME:
            return 0.0
        return self.s.get(matcher, 1.0)


@dataclass
class Statistics:
    """Everything the cost model needs to price a plan."""

    f: float
    """Fraction of pages with an earlier version (Figure 7b)."""

    m: int
    """Number of pages in the snapshot to be processed."""

    d_blocks: float
    """Raw page data size in blocks (previous snapshot)."""

    units: Dict[str, UnitEstimates]
    weights: CostWeights
    v: int = DEFAULT_HASH_BUCKETS
    sample_pages: int = 0
    snapshots_used: int = 0


__all__ = [
    "CostWeights",
    "UnitEstimates",
    "Statistics",
    "probe_io_weight",
    "DEFAULT_HASH_BUCKETS",
    "DN_NAME",
    "UD_NAME",
    "ST_NAME",
    "RU_NAME",
]
