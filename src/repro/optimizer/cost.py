"""The cost model: formulas (1)–(4) of Section 6.3.

A plan's estimated cost is the sum of per-IE-unit costs; each unit's
cost has four components:

1. identifying matching input tuples (read ``I_U^n`` + c-comparisons);
2. matching the identified regions (read prev pages + matcher CPU);
3. re-extracting the derived extraction regions;
4. reusing output tuples for copy regions (read ``O_U^n`` + probes).

RU units need a *donor*: an earlier-executed unit assigned ST or UD
whose recorded segments RU recycles. Without a donor RU degenerates to
DN (g = 1, nothing copied), which the model prices accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME
from ..plan.units import IEUnit
from ..reuse.engine import PlanAssignment
from .params import Statistics


def resolve_ru_donor(unit: IEUnit, units: Sequence[IEUnit],
                     assignment: PlanAssignment) -> Optional[IEUnit]:
    """The earlier-executed ST/UD unit whose matches RU would recycle.

    Units execute in topological (list) order; the engine's match cache
    is global per page pair, so any earlier ST/UD unit is a donor. The
    closest earlier one dominates the recorded segments, so we price
    against it.
    """
    donor: Optional[IEUnit] = None
    for candidate in units:
        if candidate.index >= unit.index:
            break
        if assignment.matchers.get(candidate.uid) in (ST_NAME, UD_NAME):
            donor = candidate
    return donor


def unit_cost(unit: IEUnit, matcher: str, stats: Statistics,
              donor_matcher: Optional[str]) -> float:
    """Estimated seconds to execute ``unit`` with ``matcher``."""
    est = stats.units[unit.uid]
    w = stats.weights
    f = stats.f
    m = stats.m
    a_n, a_n1 = est.a_prev, est.a
    length = est.l

    # (1) identify matching input tuples.
    cost = w.io_per_block * est.b_blocks
    if matcher != DN_NAME:
        cost += w.find_per_comparison * a_n * a_n1 * m * f

    # (2) match the regions.
    s = est.s_of(matcher)
    if matcher not in (DN_NAME,):
        cost += w.io_per_block * stats.d_blocks * f
        cost += w.rate_of(matcher) * a_n1 * m * f * s * length

    # (3) extract over extraction regions.
    g = est.g_of(matcher, donor_matcher)
    cost += est.extract_rate * (a_n1 * m * (1.0 - f) * length
                                + a_n1 * m * f * length * g)

    # (4) reuse output tuples for copy regions.
    if matcher != DN_NAME:
        h = est.h_of(matcher, donor_matcher)
        cost += w.io_per_block * est.c_blocks
        cost += (w.copy_per_probe * a_n * m
                 * (a_n1 * m * f * h) / stats.v)
    return cost


def plan_cost(units: Sequence[IEUnit], assignment: PlanAssignment,
              stats: Statistics) -> float:
    """Estimated cost of a full matcher assignment."""
    total = 0.0
    for unit in units:
        matcher = assignment.of(unit)
        donor_matcher: Optional[str] = None
        if matcher == RU_NAME:
            donor = resolve_ru_donor(unit, units, assignment)
            if donor is not None:
                donor_matcher = assignment.matchers[donor.uid]
        total += unit_cost(unit, matcher, stats, donor_matcher)
    return total


def from_scratch_cost(units: Sequence[IEUnit],
                      stats: Statistics) -> float:
    """Cost of running every unit with DN (pure extraction)."""
    assignment = PlanAssignment({u.uid: DN_NAME for u in units})
    return plan_cost(units, assignment, stats)


@dataclass(frozen=True)
class RankedPlan:
    assignment: PlanAssignment
    cost: float


def rank_plans(units: Sequence[IEUnit],
               assignments: Sequence[PlanAssignment],
               stats: Statistics) -> List[RankedPlan]:
    ranked = [RankedPlan(a, plan_cost(units, a, stats))
              for a in assignments]
    ranked.sort(key=lambda r: r.cost)
    return ranked
