"""Runtime decomposition accounting (the Figure 11 categories).

Every system reports its elapsed time split into the paper's
components: Match, Extraction, Copy, Opt, and Others (relational
operators, reuse-file I/O, bookkeeping). Timers are accumulated with
``perf_counter`` around the relevant code regions; the engine takes
care that categories never nest, so the parts sum to at most the
total and "Others" is the measured remainder.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # typing-only; avoids a package import cycle
    from .fastpath.stats import FastPathStats
    from .runtime.metrics import RuntimeMetrics

MATCH = "match"
EXTRACT = "extract"
COPY = "copy"
OPT = "opt"
IO = "io"
OTHER = "other"

CATEGORIES = (MATCH, EXTRACT, COPY, OPT, IO, OTHER)


@dataclass
class Timings:
    """Accumulated seconds per category plus the wall-clock total.

    ``runtime`` optionally carries the execution runtime's telemetry
    (:class:`~repro.runtime.metrics.RuntimeMetrics`) for the run that
    produced these timings: per-batch wall time, worker utilization,
    pages/sec. It is attached by the systems when they route their
    page loop through :mod:`repro.runtime`.

    ``fastpath`` optionally carries the snapshot-delta fast-path
    counters (:class:`~repro.fastpath.stats.FastPathStats`): pages
    short-circuited, memo hits, automata reused, matcher seconds
    avoided. Attached by the engines when fast paths are active.
    """

    parts: Dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    runtime: Optional["RuntimeMetrics"] = field(default=None, repr=False,
                                                compare=False)
    fastpath: Optional["FastPathStats"] = field(default=None, repr=False,
                                                compare=False)

    def add(self, category: str, seconds: float) -> None:
        self.parts[category] = self.parts.get(category, 0.0) + seconds

    def get(self, category: str) -> float:
        return self.parts.get(category, 0.0)

    @property
    def others(self) -> float:
        """Total minus all attributed categories, clamped at 0.

        Under the thread/process backends the per-worker category
        seconds are summed across workers while ``total`` is the
        parent's wall clock, so the attributed sum can legitimately
        exceed ``total`` — the derived remainder must never go
        negative. The clamped-away excess is *not* silently dropped:
        it is reported explicitly as :attr:`overlap_seconds`.
        """
        attributed = sum(self.parts.values())
        return max(0.0, self.total - attributed)

    @property
    def overlap_seconds(self) -> float:
        """Attributed seconds in excess of wall ``total`` (>= 0).

        Zero for serial runs; under parallel backends this is the
        amount of per-worker time that overlapped in wall-clock terms
        — the quantity the :attr:`others` clamp keeps out of the
        decomposition instead of mis-reporting it as a negative
        remainder. Meaningless (and reported as 0) when no wall total
        was measured.
        """
        if self.total <= 0.0:
            return 0.0
        attributed = sum(self.parts.values())
        return max(0.0, attributed - self.total)

    def merged(self, other: "Timings") -> "Timings":
        merged = Timings(parts=dict(self.parts),
                         total=self.total + other.total,
                         runtime=self.runtime or other.runtime,
                         fastpath=self.fastpath or other.fastpath)
        for category, seconds in other.parts.items():
            merged.add(category, seconds)
        return merged

    def as_row(self) -> Dict[str, float]:
        """Figure 11-style decomposition row."""
        return {
            "match": self.get(MATCH),
            "extraction": self.get(EXTRACT),
            "copy": self.get(COPY),
            "opt": self.get(OPT),
            "io": self.get(IO),
            "others": self.others,
            "total": self.total,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the shared ``to_dict`` contract).

        The decomposition row plus — when attached — the nested
        runtime and fast-path telemetry, each through its own
        ``to_dict``. This is what ``repro run --metrics-json`` and the
        serving layer's ``/metrics`` endpoint emit; everything in the
        returned mapping is plain JSON types.
        """
        out: Dict[str, object] = dict(self.as_row())
        out["overlap_seconds"] = self.overlap_seconds
        if self.runtime is not None:
            out["runtime"] = self.runtime.to_dict()
        if self.fastpath is not None:
            out["fastpath"] = self.fastpath.to_dict()
        return out


class _NoopMeasure:
    """Returned for nested measures; attributes nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_MEASURE = _NoopMeasure()


class _Measure:
    """Hand-rolled measuring context: the engine opens one of these
    per input row per category, so the ~2.5us a ``@contextmanager``
    generator costs per block was showing up as phantom matcher time
    on fast-path runs whose real per-row work is sub-microsecond."""

    __slots__ = ("_timer", "category", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self.category = ""
        self._start = 0.0

    def __enter__(self) -> None:
        self._timer._active = True
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc) -> bool:
        timer = self._timer
        timer.timings.add(self.category, time.perf_counter() - self._start)
        timer._active = False
        return False


class Timer:
    """Accumulates time into a :class:`Timings` object.

    The ``measure`` context manager is reentrancy-guarded: while one
    category is being measured, nested measures are ignored so no
    second of wall-clock is attributed twice. The returned context
    object is reused across calls (enter it immediately, ``with
    timer.measure(...)``-style; holding several un-entered measures
    from one timer is not supported).
    """

    def __init__(self, timings: Timings) -> None:
        self.timings = timings
        self._active = False
        self._measure = _Measure(self)

    def measure(self, category: str) -> "_Measure | _NoopMeasure":
        if self._active:
            return _NOOP_MEASURE
        m = self._measure
        m.category = category
        return m

    @contextmanager
    def measure_total(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timings.total += time.perf_counter() - start
