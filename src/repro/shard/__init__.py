"""repro.shard — the sharded serving tier (scatter-gather reads).

Partitions each arriving snapshot across N in-process shard workers
(stable blake2b page-hash partitioning), maintains every shard with
the unchanged single-writer machinery of :mod:`repro.serve`, and
serves cross-shard reads under a consistent **generation vector**: a
response can never mix one shard's state for snapshot *k* with
another's for *k-1*. See ``docs/architecture.md`` ("Sharded serving")
for the design and failure modes.
"""

from .deploy import ShardedDeployment, ShardWorker
from .genvec import ShardVector
from .partition import Partitioner, shard_of
from .replica import ReplicaSet, ShardReplica
from .router import ShardRouter

__all__ = [
    "Partitioner",
    "ReplicaSet",
    "ShardReplica",
    "ShardRouter",
    "ShardVector",
    "ShardWorker",
    "ShardedDeployment",
    "shard_of",
]
