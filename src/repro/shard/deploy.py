"""The in-process sharded deployment: N shard workers + one front door.

A :class:`ShardWorker` is a complete single-writer serving stack —
its own :class:`~repro.serve.views.ViewRegistry` (stores in lazy-index
mode), its own bounded :class:`~repro.serve.ingest.IngestQueue`, its
own :class:`~repro.serve.ingest.IngestLoop` thread — maintaining only
the pages the partitioner assigns it. All of PR 5-7's single-shard
machinery (retry, quarantine, per-view isolation, monotonic-clock
lag) is reused verbatim per shard; the sharded tier adds routing
around it, not a new apply path.

:class:`ShardedDeployment` is the front door plus the fan-out:

* ``push`` first takes an **admission token** from a bounded pool
  (``capacity``), then splits the snapshot and enqueues one
  sub-snapshot per shard. Worker queues are sized to ``capacity``
  too, so the inner pushes can never block while holding the token —
  admission is the only gate, and a full pool is the only
  backpressure point (HTTP 429 / blocking producer, exactly like the
  single queue's semantics).
* every shard reports each sub-snapshot's outcome (applied,
  quarantined, or stale-skipped) through its loop's ``on_applied``
  hook; the deployment forwards it to the router's barrier and
  releases the admission token once **all** shards have reported that
  snapshot. A dead or stalled shard therefore holds its snapshots'
  tokens — the front door fills and rejects instead of queues growing
  without bound — and restarting the shard drains, reports, releases,
  and heals.

The deployment also duck-types both halves of the classic single-
shard surface — queue-like (``push``/``depth``/``describe``) and
loop-like (``start``/``stop``/``drain``/``running``) — so the HTTP
app and the spool watcher drive it unchanged.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..corpus.snapshot import Snapshot
from ..corpus.store import CorpusStore
from ..obs import registry as _oreg
from ..serve.ingest import IngestLoop, IngestQueue
from ..serve.store import Generation
from ..serve.views import ViewConfig, ViewRegistry
from .partition import Partitioner
from .router import ShardRouter


class ShardWorker:
    """One shard: registry + queue + single-writer apply loop."""

    def __init__(self, shard_id: int, workdir: str,
                 configs: Sequence[ViewConfig], check: bool,
                 capacity: int, on_applied) -> None:
        self.shard_id = shard_id
        self.registry = ViewRegistry(workdir)
        for config in configs:
            # Lazy indexes: a shard's apply replaces page row maps
            # only; dedupe+sort happens on the read side, per vector.
            self.registry.register(config, lazy_index=True)
        self.queue = IngestQueue(maxsize=capacity)
        self.loop = IngestLoop(
            self.registry, self.queue, check=check,
            on_applied=on_applied,
            name=f"repro-shard-{shard_id}")

    def describe(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "queue": self.queue.describe(),
            "loop": self.loop.describe(),
            "views": {name: self.registry.get(name).describe()
                      for name in self.registry.names()},
        }


class ShardedDeployment:
    """N shard workers, one admission-bounded front door, one router."""

    def __init__(self, workdir: str, configs: Sequence[ViewConfig],
                 n_shards: int, n_replicas: int = 0,
                 max_staleness: int = 0, check: bool = False,
                 capacity: int = 8,
                 snapshot_store: Optional[CorpusStore] = None) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.workdir = workdir
        self.partitioner = Partitioner(n_shards)
        self.router = ShardRouter(n_shards, n_replicas=n_replicas,
                                  max_staleness=max_staleness)
        self.capacity = max(1, capacity)
        self.snapshot_store = snapshot_store
        self.workers: List[ShardWorker] = [
            ShardWorker(
                shard_id=s,
                workdir=os.path.join(workdir, f"shard_{s:02d}"),
                configs=configs, check=check, capacity=self.capacity,
                on_applied=self._make_on_applied(s))
            for s in range(n_shards)]
        for config in configs:
            schema = self.workers[0].registry.get(
                config.name).store.schema
            self.router.register_view(config.name, schema)
        self._admission = threading.BoundedSemaphore(self.capacity)
        self._pending_lock = threading.Lock()
        #: snapshot index -> sub-snapshot completions still owed.
        self._pending: Dict[int, int] = {}
        self.pushed = 0
        self.rejected = 0
        self._in_flight = 0

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    # -- the front door (queue-like) ---------------------------------------

    @property
    def depth(self) -> int:
        """Snapshots admitted but not yet reported by every shard."""
        with self._pending_lock:
            return self._in_flight

    def push(self, snapshot: Snapshot, block: bool = False,
             timeout: Optional[float] = None) -> bool:
        """Admit one snapshot and scatter it; ``False`` = backpressure.

        Mirrors :meth:`IngestQueue.push`: the HTTP path fails fast on
        a full admission pool, the spool watcher blocks up to
        ``timeout``. Admission is all-or-nothing — once the token is
        held, every shard's sub-snapshot enqueues without blocking
        (worker queues hold ``capacity`` items, the token pool admits
        at most ``capacity`` snapshots), so a snapshot can never be
        half-delivered to the tier.
        """
        if block:
            acquired = self._admission.acquire(timeout=timeout)
        else:
            acquired = self._admission.acquire(blocking=False)
        if not acquired:
            with self._pending_lock:
                self.rejected += 1
            return False
        with self._pending_lock:
            self._pending[snapshot.index] = (
                self._pending.get(snapshot.index, 0) + self.n_shards)
            self._in_flight += 1
            self.pushed += 1
        for worker, sub in zip(self.workers,
                               self.partitioner.split(snapshot)):
            worker.queue.push(sub, block=True, timeout=5.0)
        if self.snapshot_store is not None:
            try:
                self.snapshot_store.append(snapshot)
            except (ValueError, OSError):
                pass  # persistence is best-effort, serving is the job
        if _oreg.ENABLED:
            _oreg.REGISTRY.set(
                "repro_shard_front_in_flight", float(self.depth),
                help="admitted snapshots awaiting all shards' reports")
        return True

    def describe_queue(self) -> Dict[str, object]:
        with self._pending_lock:
            return {
                "depth": self._in_flight,
                "capacity": self.capacity,
                "pushed": self.pushed,
                "rejected": self.rejected,
                "pending": dict(self._pending),
            }

    # -- shard completion accounting ---------------------------------------

    def _make_on_applied(self, shard_id: int):
        def on_applied(snapshot: Snapshot,
                       outcomes: Dict[str, Optional[Generation]],
                       enqueued_mono: Optional[float],
                       skipped: bool) -> None:
            self.router.record(shard_id, snapshot, outcomes,
                               enqueued_mono, skipped)
            self._mark_done(snapshot.index)
        return on_applied

    def _mark_done(self, index: int) -> None:
        """One shard reported one sub-snapshot; maybe release a token.

        Every admitted snapshot owes exactly ``n_shards`` reports
        (applied, quarantined, and stale-skipped all count — the shard
        is done with it either way); the token returns when the count
        crosses a multiple of ``n_shards``, so a re-pushed index in
        flight twice releases twice.
        """
        release = False
        with self._pending_lock:
            count = self._pending.get(index)
            if count is None:
                return  # direct worker push (tests) — not admitted
            count -= 1
            if count <= 0:
                del self._pending[index]
            else:
                self._pending[index] = count
            if count % self.n_shards == 0:
                self._in_flight = max(0, self._in_flight - 1)
                release = True
        if release:
            try:
                self._admission.release()
            except ValueError:  # pragma: no cover - bounded pool guard
                pass

    # -- lifecycle (loop-like) ---------------------------------------------

    @property
    def running(self) -> bool:
        return all(worker.loop.running for worker in self.workers)

    def start(self) -> None:
        for worker in self.workers:
            worker.loop.start()

    def stop(self, timeout: float = 10.0) -> bool:
        ok = True
        for worker in self.workers:
            ok = worker.loop.stop(timeout=timeout) and ok
        return ok

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until every admitted snapshot is fully reported."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._pending_lock:
                if not self._pending:
                    return True
            time.sleep(0.02)
        return False

    def apply_inline(self, snapshot: Snapshot) -> None:
        """Apply one snapshot synchronously on the caller's thread.

        Bootstrap helper (mirrors calling ``loop.apply_one`` inline on
        the single-shard path): splits, applies each shard's subset
        directly, and reports to the router, without touching the
        admission pool. Only safe when no loops are running. No
        enqueue timestamp — like an inline single-shard apply, the
        bootstrap's published lag is None (reported as 0.0 by
        :func:`repro.serve.ingest.lag_series`), never a fabricated
        duration.
        """
        for worker, sub in zip(self.workers,
                               self.partitioner.split(snapshot)):
            worker.loop.apply_one(sub)

    # -- status ------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        doc = self.router.healthz()
        doc["shards"] = [
            {
                "shard": worker.shard_id,
                "loop_running": worker.loop.running,
                "queue_depth": worker.queue.depth,
                "quarantined": worker.loop.snapshots_quarantined,
            }
            for worker in self.workers]
        doc["front"] = self.describe_queue()
        doc["ok"] = bool(doc["ok"]) and self.running
        return doc

    def describe(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "running": self.running,
            "front": self.describe_queue(),
            "router": self.router.describe(),
            "shards": [worker.describe() for worker in self.workers],
        }

    def sync_registry(self) -> None:
        """Push point-in-time shard gauges into the metrics registry.

        Hot paths keep plain Python counters; this folds them into the
        process registry at exposition time (the ``repro_shard_*``
        families of docs/observability.md).
        """
        reg = _oreg.REGISTRY
        reg.set("repro_shard_count", float(self.n_shards),
                help="shard workers in this deployment")
        reg.set("repro_shard_front_in_flight", float(self.depth),
                help="admitted snapshots awaiting all shards' reports")
        for worker in self.workers:
            shard = str(worker.shard_id)
            reg.set("repro_shard_queue_depth",
                    float(worker.queue.depth),
                    help="sub-snapshots waiting per shard", shard=shard)
            reg.set("repro_shard_loop_running",
                    1.0 if worker.loop.running else 0.0,
                    help="1 when the shard's apply loop is alive",
                    shard=shard)
            reg.set("repro_shard_applies_total",
                    float(worker.loop.snapshots_applied),
                    help="sub-snapshots applied per shard", shard=shard)
            for name in worker.registry.names():
                generation = worker.registry.get(name).generation
                if generation is not None:
                    reg.set("repro_shard_generation",
                            float(generation.gen_id),
                            help="current generation id per view per "
                                 "shard", view=name, shard=shard)
        for name in self.router.names():
            vector = self.router.vector(name)
            if vector is not None:
                reg.set("repro_shard_vector_index",
                        float(vector.snapshot_index),
                        help="snapshot index of the current consistent "
                             "vector per view", view=name)
                reg.set("repro_shard_vector_id",
                        float(vector.vector_id),
                        help="current vector id per view", view=name)
        for replica_set in self.router.replica_sets:
            shard = str(replica_set.shard_id)
            reg.set("repro_shard_replica_hits",
                    float(replica_set.hits),
                    help="reads served by a replica per shard",
                    shard=shard)
            reg.set("repro_shard_replica_fallbacks",
                    float(replica_set.fallbacks),
                    help="reads that fell back to the shard primary",
                    shard=shard)
