"""Per-shard read replicas with staleness-bounded routing.

Each shard can fan its published generations out to R read replicas.
In-process a "replica" is a bounded catalog of recent generation
references (the generations themselves are immutable and shared — the
fan-out copies nothing), but the routing contract is the one a
networked replica tier would have to honor:

* **consistency** — a replica may serve a vector position only if it
  holds the *exact* generation the vector names (matched by object
  identity, the strictest possible check). A replica that has the
  right snapshot index but a different generation object — e.g. after
  a quarantine-and-heal rebuilt the shard — is a miss, never an
  approximate hit.
* **staleness bound** — a replica more than ``max_staleness``
  snapshots behind the vector is not even consulted; the router falls
  back to the shard primary and counts the fallback. Propagation is
  asynchronous by design (``offer`` happens after the primary's
  publish), so bounded staleness, not freshness, is the guarantee.

``ShardReplica.offer_delay`` is a deliberate test seam: the chaos
suite installs a delaying/dropping hook to force replicas behind and
assert the router's fallback path keeps every response byte-identical
to the primary's.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..serve.store import Generation

#: How many recent generations one replica retains per view.
REPLICA_HISTORY = 8


class ShardReplica:
    """One read replica of one shard: recent generations per view."""

    def __init__(self, shard_id: int, replica_id: int,
                 history_limit: int = REPLICA_HISTORY) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.history_limit = max(1, history_limit)
        self._lock = threading.Lock()
        #: view -> snapshot_index -> Generation, insertion-ordered so
        #: the oldest entry evicts first.
        self._gens: Dict[str, "OrderedDict[int, Generation]"] = {}
        self.offers = 0
        #: Test seam: called with ``(view, generation)`` before the
        #: replica stores an offered generation; raising drops the
        #: offer (models a lost replication message), sleeping delays
        #: it (models replication lag).
        self.offer_delay: Optional[
            Callable[[str, Generation], None]] = None

    def offer(self, view: str, generation: Generation) -> bool:
        """Asynchronously replicate one published generation."""
        hook = self.offer_delay
        if hook is not None:
            try:
                hook(view, generation)
            except Exception:  # noqa: BLE001 - dropped replication message
                return False
        with self._lock:
            history = self._gens.setdefault(view, OrderedDict())
            history[generation.snapshot_index] = generation
            while len(history) > self.history_limit:
                history.popitem(last=False)
            self.offers += 1
        return True

    def get(self, view: str, snapshot_index: int) -> Optional[Generation]:
        with self._lock:
            return self._gens.get(view, {}).get(snapshot_index)

    def high_water(self, view: str) -> Optional[int]:
        """The newest snapshot index this replica holds for a view."""
        with self._lock:
            history = self._gens.get(view)
            if not history:
                return None
            return next(reversed(history))

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "shard": self.shard_id,
                "replica": self.replica_id,
                "offers": self.offers,
                "views": {view: list(history)
                          for view, history in self._gens.items()},
            }


class ReplicaSet:
    """The replicas of one shard plus the routing policy over them."""

    def __init__(self, shard_id: int, n_replicas: int,
                 max_staleness: int = 0,
                 history_limit: int = REPLICA_HISTORY) -> None:
        self.shard_id = shard_id
        self.max_staleness = max(0, max_staleness)
        self.replicas: List[ShardReplica] = [
            ShardReplica(shard_id, r, history_limit=history_limit)
            for r in range(n_replicas)]
        self._lock = threading.Lock()
        self._rr = 0
        self.hits = 0
        self.fallbacks = 0

    def offer(self, view: str, generation: Generation) -> None:
        for replica in self.replicas:
            replica.offer(view, generation)

    def pick(self, view: str, want: Generation,
             head_index: Optional[int] = None
             ) -> Tuple[str, Generation]:
        """Route one shard read: ``("replica"|"primary", generation)``.

        The round-robin-chosen replica serves only when it holds the
        exact generation the caller's vector names (identity match)
        *and* its own high-water mark is within ``max_staleness``
        snapshots of the shard primary's head (``head_index``);
        anything else falls back to the primary — the generation the
        vector itself pins, so the answer is identical either way.
        Consistency is never traded for replica traffic; the staleness
        bound only removes chronically lagging replicas from rotation.
        """
        if not self.replicas:
            return "primary", want
        with self._lock:
            replica = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
        held = replica.get(view, want.snapshot_index)
        if held is want:
            high = replica.high_water(view)
            head = head_index if head_index is not None \
                else want.snapshot_index
            if high is not None and head - high <= self.max_staleness:
                with self._lock:
                    self.hits += 1
                return "replica", held
        with self._lock:
            self.fallbacks += 1
        return "primary", want

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "shard": self.shard_id,
                "replicas": len(self.replicas),
                "max_staleness": self.max_staleness,
                "hits": self.hits,
                "fallbacks": self.fallbacks,
            }
