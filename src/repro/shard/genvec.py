"""The generation vector: one consistent cross-shard read epoch.

A sharded view publishes per shard — shard *s* swaps in its own
:class:`~repro.serve.store.Generation` when its sub-snapshot applies —
so "the current state of the view" is no longer one reference but a
*vector* of per-shard generations. The consistency hazard is mixing
vector positions from different snapshots: generation *g* of shard A
(which already applied snapshot *k*) merged with generation *g-1* of
shard B (still at *k-1*) is a torn read that no single corpus state
ever produced.

:class:`ShardVector` is the fix, shaped exactly like the single-store
answer: an immutable value holding one generation per shard, all
published by the *same* snapshot index, assembled by the router's
barrier (:mod:`repro.shard.router`) only once every shard has applied
that snapshot. Readers take the current vector reference once and run
the whole query off it — the same epoch discipline as
``TupleStore.current()``, lifted from one generation to N.

The vector also owns the read-side index cache: per-shard stores run
lazy (:class:`~repro.serve.store.LazyRelationIndex` — apply does not
sort), and the cross-shard merged relation index materializes here on
first read, at most once per (vector, relation). That is the sharded
tier's structural lag win: dedupe+sort leaves the writer path
entirely, and the merge cost is amortized across every query served
from the same vector.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..serve.store import Generation, merge_relation_indexes


class ShardVector:
    """One immutable consistent epoch of a sharded view.

    ``generations[s]`` is shard *s*'s generation as published for
    ``snapshot_index``; ``vector_id`` increases by one per published
    vector (the cross-shard analogue of ``gen_id``). The merged
    relation cache is internally mutable but write-once per relation
    and lock-guarded, so the object is safe to share across any
    number of reader threads.
    """

    __slots__ = ("view", "vector_id", "snapshot_index", "generations",
                 "published_mono", "lag_seconds", "_merged", "_lock")

    def __init__(self, view: str, vector_id: int, snapshot_index: int,
                 generations: Sequence[Generation],
                 published_mono: float,
                 lag_seconds: Optional[float]) -> None:
        self.view = view
        self.vector_id = vector_id
        self.snapshot_index = snapshot_index
        self.generations: Tuple[Generation, ...] = tuple(generations)
        self.published_mono = published_mono
        self.lag_seconds = lag_seconds
        self._merged: Dict[str, Tuple[tuple, ...]] = {}
        self._lock = threading.Lock()

    def relation(self, relation: str) -> Tuple[tuple, ...]:
        """The merged cross-shard relation index, built on first read.

        Byte-identical to the single store's eager index: each shard's
        index is already in canonical order, and
        :func:`~repro.serve.store.merge_relation_indexes` is exactly
        the global dedupe-then-sort over the union of the shards'
        pages. Double-checked lock: concurrent first readers build at
        most once.
        """
        merged = self._merged.get(relation)
        if merged is None:
            with self._lock:
                merged = self._merged.get(relation)
                if merged is None:
                    merged = merge_relation_indexes(
                        [gen.relations.get(relation, ())
                         for gen in self.generations])
                    self._merged[relation] = merged
        return merged

    def gen_ids(self) -> Tuple[int, ...]:
        """Per-shard generation ids, in shard order."""
        return tuple(gen.gen_id for gen in self.generations)

    def total_tuples(self, schema: Sequence[str]) -> int:
        return sum(len(self.relation(rel)) for rel in schema)

    def describe(self) -> Mapping[str, object]:
        return {
            "view": self.view,
            "vector_id": self.vector_id,
            "snapshot_index": self.snapshot_index,
            "shard_generations": list(self.gen_ids()),
            "lag_seconds": self.lag_seconds,
            "merged_relations": sorted(self._merged),
        }
