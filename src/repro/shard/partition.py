"""Stable page-to-shard partitioning by content-independent page hash.

The partitioner is the one place the sharded tier decides which shard
owns which page, and its single hard requirement is *stability*: a
page's shard assignment depends only on its ``did`` (the URL-derived
page id, constant across snapshots and across edits), never on
content, arrival order, shard load, or process lifetime. Stability is
what makes per-shard differential maintenance sound — shard *s* diffs
its sub-snapshot against its own previous sub-snapshot, and a page
that "migrated" between shards would look like a delete on one shard
and a fresh add on another, silently losing reuse state and, worse,
racing the two shards' publishes. A page that leaves the corpus and
later returns (resurrection) therefore lands on the *same* shard,
where the view's tombstone map turns it into an explicit
retract-then-add.

The hash is ``blake2b`` over the did bytes — keyed by nothing, so the
assignment is reproducible across processes and runs (Python's
builtin ``hash`` is randomized per process and would shuffle the
partition on every restart).
"""

from __future__ import annotations

import hashlib
from typing import List

from ..corpus.snapshot import Snapshot


def shard_of(did: str, n_shards: int) -> int:
    """The owning shard of a page id: ``blake2b(did) mod n_shards``."""
    digest = hashlib.blake2b(did.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class Partitioner:
    """Splits snapshots into per-shard sub-snapshots."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, did: str) -> int:
        return shard_of(did, self.n_shards)

    def split(self, snapshot: Snapshot) -> List[Snapshot]:
        """One sub-snapshot per shard, all carrying the parent's index.

        Page order within each sub-snapshot preserves the parent
        snapshot's order (the reuse engine's sequential-scan
        precondition). A shard whose subset is empty still gets a
        zero-page sub-snapshot: every shard sees every snapshot index,
        which is what lets the router's generation vector use plain
        per-shard high-water marks, and an empty subset correctly
        means "all of this shard's pages left the corpus" — partition
        stability guarantees a page absent from shard *s*'s subset is
        absent from the whole snapshot.
        """
        buckets: List[List] = [[] for _ in range(self.n_shards)]
        for page in snapshot.pages:
            buckets[self.shard_of(page.did)].append(page)
        return [Snapshot(snapshot.index, pages) for pages in buckets]

    def describe(self) -> dict:
        return {"n_shards": self.n_shards, "hash": "blake2b/8"}
