"""Scatter-gather query routing under the generation-vector barrier.

The router is the sharded tier's consistency authority. Each shard's
ingest loop reports every apply outcome through its ``on_applied``
hook into :meth:`ShardRouter.record`; the router keeps, per view and
per shard, a bounded history of ``snapshot index -> published
generation`` plus a per-shard high-water mark, and publishes a new
:class:`~repro.shard.genvec.ShardVector` only when **every** shard has
applied the same snapshot index — the snapshot-scoped barrier. The
published vector is a single atomic reference swap, so readers get
the same epoch discipline the single store gives them: take the
current vector once, answer the whole query off it, and it is
impossible to observe shard A at snapshot *k* mixed with shard B at
*k-1*.

Failure modes, by construction:

* a shard **quarantines** snapshot *k* → its high-water mark stays at
  *k-1*, the barrier never fires for *k*, the view keeps serving the
  last consistent vector (degraded, visible in :meth:`healthz`) — a
  torn read is not representable;
* the shard later applies *k+1* cleanly → the barrier fires at *k+1*
  the moment every shard has it, and the view **heals without
  intervention** (vector indexes may skip, like generation ids after
  a quarantine);
* a shard's loop **dies or stalls** → same freeze, plus the front
  door's admission tokens stop coming back, so producers see
  backpressure instead of unbounded queue growth.

Query answering is scatter-gather with the scatter done at publish
time: the vector pins one generation per shard, the cross-shard
merged relation index materializes lazily on the vector
(:meth:`ShardVector.relation`), and per-shard replica routing
(:mod:`repro.shard.replica`) only ever serves the exact pinned
generation. Results are byte-identical to a single
:class:`~repro.serve.store.TupleStore` over the whole corpus — pinned
by ``tests/test_shard.py``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..corpus.snapshot import Snapshot
from ..obs import registry as _oreg
from ..serve.store import (EmptyViewError, Generation, QueryResult,
                           UnknownRelationError, filter_rows)
from .genvec import ShardVector
from .replica import ReplicaSet

#: Per (view, shard) bound on retained ``snapshot -> generation``
#: entries awaiting the barrier. 32 spans far more in-flight skew
#: than a queue of capacity 8 can create.
VECTOR_HISTORY = 32

#: Published vectors retained per view for lag reporting.
PUBLISH_HISTORY = 64


class _ViewVectorState:
    """Barrier bookkeeping for one view (all under the router lock)."""

    def __init__(self, name: str, schema: Sequence[str],
                 n_shards: int) -> None:
        self.name = name
        self.schema = tuple(schema)
        #: Per shard: snapshot index -> the Generation that shard
        #: published for it (bounded, oldest evicts first).
        self.histories: List["OrderedDict[int, Generation]"] = [
            OrderedDict() for _ in range(n_shards)]
        #: Per shard: highest snapshot index applied cleanly.
        self.last_ok: List[Optional[int]] = [None] * n_shards
        #: Per shard: snapshot indexes this shard quarantined.
        self.quarantined: List[List[int]] = [[] for _ in range(n_shards)]
        #: Earliest front-door enqueue mono seen per snapshot index —
        #: vector lag is publish minus this.
        self.enqueued_mono: Dict[int, float] = {}
        self.current: Optional[ShardVector] = None
        self.vector_counter = 0
        self.publishes: Deque[Dict[str, object]] = deque(
            maxlen=PUBLISH_HISTORY)


class ShardRouter:
    """Assembles consistent cross-shard reads for every view."""

    def __init__(self, n_shards: int, n_replicas: int = 0,
                 max_staleness: int = 0) -> None:
        self.n_shards = n_shards
        self._lock = threading.Lock()
        self._views: Dict[str, _ViewVectorState] = {}
        #: One replica set per shard, shared across views.
        self.replica_sets: List[ReplicaSet] = [
            ReplicaSet(s, n_replicas, max_staleness=max_staleness)
            for s in range(n_shards)]
        self.queries_served = 0
        self.vectors_published = 0
        self.records_seen = 0

    # -- registration ------------------------------------------------------

    def register_view(self, name: str, schema: Sequence[str]) -> None:
        with self._lock:
            if name in self._views:
                raise ValueError(f"view {name!r} already routed")
            self._views[name] = _ViewVectorState(
                name, schema, self.n_shards)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._views)

    def _state(self, view: str) -> _ViewVectorState:
        with self._lock:
            if view not in self._views:
                raise KeyError(f"no view {view!r}; routed: "
                               f"{sorted(self._views)}")
            return self._views[view]

    # -- the barrier (called from shard ingest threads) --------------------

    def record(self, shard_id: int, snapshot: Snapshot,
               outcomes: Mapping[str, Optional[Generation]],
               enqueued_mono: Optional[float], skipped: bool) -> None:
        """Fold one shard's apply outcome into every view's barrier.

        ``outcomes[view]`` is the generation shard ``shard_id``
        published for this snapshot, or None when that view
        quarantined it there. A stale idempotent skip (``skipped``)
        changes no barrier state — the shard already counted that
        index. Publishes happen inside the router lock; the swap of
        ``state.current`` is the only thing readers race with, and
        they only ever read the reference.
        """
        with self._lock:
            self.records_seen += 1
            if skipped:
                return
            for state in self._views.values():
                self._record_view(state, shard_id, snapshot.index,
                                  outcomes.get(state.name),
                                  enqueued_mono)

    def _record_view(self, state: _ViewVectorState, shard_id: int,
                     index: int, generation: Optional[Generation],
                     enqueued_mono: Optional[float]) -> None:
        if enqueued_mono is not None:
            known = state.enqueued_mono.get(index)
            if known is None or enqueued_mono < known:
                state.enqueued_mono[index] = enqueued_mono
        if generation is None:
            state.quarantined[shard_id].append(index)
            return
        history = state.histories[shard_id]
        history[index] = generation
        while len(history) > VECTOR_HISTORY:
            history.popitem(last=False)
        last = state.last_ok[shard_id]
        if last is None or index > last:
            state.last_ok[shard_id] = index
        self._try_publish(state)

    def _try_publish(self, state: _ViewVectorState) -> None:
        """Fire the barrier if every shard has a common new index."""
        if any(last is None for last in state.last_ok):
            return
        frontier = min(last for last in state.last_ok
                       if last is not None)
        current = state.current
        if current is not None and frontier <= current.snapshot_index:
            return
        # Publish the *highest* index <= frontier that every shard
        # holds: a shard that quarantined the frontier index on its
        # own timeline keeps the barrier at the last common one.
        candidates = set(state.histories[0])
        for history in state.histories[1:]:
            candidates &= set(history)
        if current is not None:
            candidates = {c for c in candidates
                          if c > current.snapshot_index}
        if not candidates:
            return
        index = max(c for c in candidates if c <= frontier) \
            if any(c <= frontier for c in candidates) else None
        if index is None:
            return
        generations = [state.histories[s][index]
                       for s in range(self.n_shards)]
        now_mono = time.monotonic()
        enq = state.enqueued_mono.get(index)
        lag = max(0.0, now_mono - enq) if enq is not None else None
        state.vector_counter += 1
        vector = ShardVector(
            view=state.name, vector_id=state.vector_counter,
            snapshot_index=index, generations=generations,
            published_mono=now_mono, lag_seconds=lag)
        state.current = vector
        state.publishes.append({
            "snapshot_index": index,
            "vector_id": vector.vector_id,
            "shard_generations": list(vector.gen_ids()),
            "lag_seconds": lag,
        })
        # Old enqueue stamps can never publish again; drop them.
        for stale in [k for k in state.enqueued_mono if k <= index]:
            del state.enqueued_mono[stale]
        self.vectors_published += 1
        for shard_id, generation in enumerate(generations):
            self.replica_sets[shard_id].offer(state.name, generation)
        if _oreg.ENABLED:
            _oreg.REGISTRY.inc(
                "repro_shard_vectors_published_total",
                help="consistent generation vectors published per view",
                view=state.name)
            if lag is not None:
                _oreg.REGISTRY.observe(
                    "repro_shard_vector_lag_seconds", lag,
                    help="front-door enqueue to consistent-vector "
                         "publish (monotonic clock)", view=state.name)

    # -- reads (any thread) ------------------------------------------------

    def vector(self, view: str) -> Optional[ShardVector]:
        """The current consistent vector (None before the first)."""
        return self._state(view).current

    def query(self, view: str, relation: str, offset: int = 0,
              limit: int = 50, contains: Optional[str] = None,
              field_filters: Optional[Mapping[str, str]] = None
              ) -> QueryResult:
        """One consistent scatter-gather read.

        Same request surface and same semantics as
        :meth:`TupleStore.query`; ``generation`` in the result is the
        vector id and ``snapshot_index`` the barrier index — every
        tuple comes from that one epoch.
        """
        state = self._state(view)
        vector = state.current
        if vector is None:
            raise EmptyViewError(
                f"view {view!r} has no consistent vector yet")
        if relation not in state.schema:
            raise UnknownRelationError(
                f"view {view!r} has no relation {relation!r}; "
                f"schema is {state.schema}")
        # Replica routing: bookkeeping + the consistency assertion
        # that a picked replica serves the exact pinned generation.
        sources = [
            self.replica_sets[s].pick(
                view, vector.generations[s],
                head_index=state.last_ok[s])[0]
            for s in range(self.n_shards)]
        source = ("replica" if all(src == "replica" for src in sources)
                  else "primary")
        rows: Sequence[tuple] = vector.relation(relation)
        rows = filter_rows(rows, contains, field_filters)
        offset = max(0, offset)
        limit = max(0, limit)
        with self._lock:
            self.queries_served += 1
        if _oreg.ENABLED:
            _oreg.REGISTRY.inc(
                "repro_shard_queries_total",
                help="scatter-gather queries answered, by serving tier",
                view=view, source=source)
        return QueryResult(
            view=view, generation=vector.vector_id,
            snapshot_index=vector.snapshot_index, relation=relation,
            total=len(rows), offset=offset, limit=limit,
            tuples=list(rows[offset:offset + limit]))

    # -- status ------------------------------------------------------------

    def lagging_shards(self, view: str) -> List[int]:
        """Shards whose high-water mark trails the most advanced one."""
        state = self._state(view)
        with self._lock:
            marks = [(-1 if last is None else last)
                     for last in state.last_ok]
        head = max(marks) if marks else -1
        return [s for s, mark in enumerate(marks) if mark < head]

    def healthz(self) -> Dict[str, object]:
        views: Dict[str, object] = {}
        ok = True
        with self._lock:
            states = list(self._views.values())
        for state in states:
            lagging = self.lagging_shards(state.name)
            quarantines = sum(len(q) for q in state.quarantined)
            vector = state.current
            healthy = not lagging and not quarantines
            ok = ok and healthy
            views[state.name] = {
                "healthy": healthy,
                "lagging_shards": lagging,
                "quarantined": quarantines,
                "last_ok": list(state.last_ok),
                "vector": (vector.describe()
                           if vector is not None else None),
            }
        return {"consistent": True, "ok": ok, "views": views}

    def publishes(self, view: str) -> List[Dict[str, object]]:
        """Per-publish records (vector id, barrier index, lag)."""
        return list(self._state(view).publishes)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            states = list(self._views.values())
            summary: Dict[str, object] = {
                "n_shards": self.n_shards,
                "queries_served": self.queries_served,
                "vectors_published": self.vectors_published,
                "records_seen": self.records_seen,
            }
        summary["replicas"] = [rs.describe() for rs in self.replica_sets]
        summary["views"] = {
            state.name: {
                "schema": list(state.schema),
                "last_ok": list(state.last_ok),
                "vector": (state.current.describe()
                           if state.current is not None else None),
                "publishes": len(state.publishes),
            }
            for state in states
        }
        return summary
