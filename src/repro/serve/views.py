"""Named materialized views over an evolving corpus.

A :class:`MaterializedView` registers one xlog task as a continuously
maintained extracted view: the view owns a per-view work directory
(reuse files live there), a :class:`~repro.serve.store.TupleStore`
(the published generations), and the maintenance machinery that turns
an arriving snapshot into a store delta. All views of a
:class:`ViewRegistry` are fed from the same ingest loop, so one
snapshot stream maintains many programs at once (the shared-corpus,
many-views deployment of the ROADMAP north star).

Three maintenance modes, selected per view:

* ``system="delex"`` (default) — the snapshot runs through a
  :class:`~repro.core.delex.DelexSystem` with per-page row collection
  on: the engine recycles against the view's reuse files exactly as in
  batch mode, and its ``last_page_rows`` *is* the per-page attribution
  of the recycled run (no second extraction pass). The store delta
  replaces only the pages whose fingerprints changed.
* ``system="noreuse"`` — differential maintenance without capture
  files: only changed/new pages are extracted, from scratch, via the
  shared attribution helper
  (:func:`repro.reuse.attribution.extract_page_rows`); unchanged
  pages' rows are carried over. Cheaper per snapshot when churn is
  low and there is no engine state to manage, at the cost of paying
  full extraction for every changed page.
* ``system="delta"`` — true differential maintenance
  (:mod:`repro.delta`): the snapshot applies as an ``(adds, dels)``
  delta flowing through the compiled relational plan. Sub-page
  regions an edit did not touch reuse memoized extractor output, the
  relation index is merged incrementally instead of rebuilt, and a
  per-page classifier falls back to re-extraction when delta
  propagation is unsafe (non-row-determined selections) or
  uneconomical (page mostly rewritten). The view's tombstone map
  feeds :attr:`SnapshotDiff.resurrected` so a page that leaves and
  returns is an explicit retract-then-add, never a silent no-op.

All modes produce byte-identical stores (Theorem 1 — pinned by the
serve test suite), which is what lets ``--check on`` cross-guard them:
under the guard the delex mode verifies, before publishing, that every
unchanged page's stored rows equal what the engine just produced for
that page and that the delta covers exactly the snapshot's page set;
the delta mode goes further and cross-checks the *entire*
delta-maintained generation — relation indexes byte-for-byte, changed
pages' rows as sets — against a from-scratch batch extraction of the
snapshot. Any drift raises :class:`ViewConsistencyError` and the
store keeps serving the previous generation.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..check import invariants
from ..core.runner import make_system
from ..delta.maintain import DeltaApplyResult, DeltaMaintainer
from ..obs import registry as _oreg
from ..corpus.snapshot import Snapshot
from ..extractors.library import IETask, make_task
from ..plan.compile import compile_program
from ..reuse.attribution import PageRows, extract_page_rows
from ..text.document import Page
from ..timing import Timer, Timings
from .store import Generation, QueryResult, TupleStore, _sort_key

MAINTENANCE_SYSTEMS = ("delex", "noreuse", "delta")

#: How many apply records a view keeps for ``/metrics``.
APPLY_HISTORY = 64


class ViewConsistencyError(RuntimeError):
    """The maintained store and the engine's run disagree."""


@dataclass(frozen=True)
class ViewConfig:
    """Registration-time description of one materialized view."""

    name: str
    task: str
    system: str = "delex"
    fastpath: str = "on"
    jobs: int = 1
    backend: str = "auto"
    work_scale: float = 1.0
    adapt: str = "off"
    """Drift-aware re-planning for ``system="delex"`` views: ``off``
    re-optimizes every apply (the batch default), ``shadow`` plans once
    and logs drift without switching, ``on`` re-plans in flight behind
    the hysteresis guard. Published rows are identical in every mode
    (Theorem 1); only maintenance cost changes."""

    def __post_init__(self) -> None:
        if self.system not in MAINTENANCE_SYSTEMS:
            raise ValueError(
                f"unknown maintenance system {self.system!r}; choose "
                f"from {MAINTENANCE_SYSTEMS}")
        if self.adapt not in ("off", "shadow", "on", "static"):
            raise ValueError(f"unknown adapt mode {self.adapt!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "task": self.task,
            "system": self.system,
            "fastpath": self.fastpath,
            "jobs": self.jobs,
            "backend": self.backend,
            "work_scale": self.work_scale,
            "adapt": self.adapt,
        }


@dataclass
class ApplyRecord:
    """Telemetry of one successful snapshot apply on one view."""

    gen_id: int
    snapshot_index: int
    seconds: float                 # wall: diff + run + delta + swap
    engine_seconds: float          # the run's Timings.total share
    pages_total: int
    pages_changed: int
    pages_new: int
    pages_deleted: int
    pages_unchanged: int
    tuples_total: int
    timings: Dict[str, object] = field(default_factory=dict)
    #: Differential-mode telemetry (decision counts, fallback ratio,
    #: extractor calls vs memo hits); None for the other modes.
    delta: Optional[Dict[str, object]] = None
    #: Wall-clock timestamp — display only, never used for durations.
    applied_at: float = 0.0
    #: Monotonic timestamp of the same instant — the ingest loop
    #: derives ``lag_seconds`` from this, so a wall-clock step (NTP
    #: slew, DST, manual reset) can never produce a negative lag.
    applied_mono: float = 0.0
    lag_seconds: Optional[float] = None   # enqueue -> applied (ingest)

    def to_dict(self) -> Dict[str, object]:
        return {
            "generation": self.gen_id,
            "snapshot_index": self.snapshot_index,
            "seconds": self.seconds,
            "engine_seconds": self.engine_seconds,
            "pages_total": self.pages_total,
            "pages_changed": self.pages_changed,
            "pages_new": self.pages_new,
            "pages_deleted": self.pages_deleted,
            "pages_unchanged": self.pages_unchanged,
            "tuples_total": self.tuples_total,
            "timings": self.timings,
            "applied_at": self.applied_at,
            "lag_seconds": self.lag_seconds,
            **({"delta": self.delta} if self.delta is not None else {}),
        }


@dataclass(frozen=True)
class SnapshotDiff:
    """Fingerprint diff of an arriving snapshot vs the applied state.

    ``resurrected`` is the subset of ``new`` whose did was previously
    deleted from this view (tracked via the view's tombstone map). A
    returning page has no retained state or stored rows — treating it
    as anything but a fresh retract-then-add (in particular, treating
    a same-fingerprint return as "unchanged") would resurrect stale
    tuples or drop the page silently, so the category is explicit and
    the delta layer's classifier records it per page.
    """

    changed: Tuple[str, ...]
    new: Tuple[str, ...]
    deleted: Tuple[str, ...]
    unchanged: Tuple[str, ...]
    resurrected: Tuple[str, ...] = ()


class MaterializedView:
    """One registered task, maintained incrementally and served."""

    def __init__(self, config: ViewConfig, workdir: str,
                 task: Optional[IETask] = None,
                 lazy_index: bool = False) -> None:
        self.config = config
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        #: ``task`` injection bypasses the library lookup — the check
        #: oracle sweeps views over tasks it may have built itself.
        self.task: IETask = task if task is not None else make_task(
            config.task, work_scale=config.work_scale)
        self.plan = compile_program(self.task.program, self.task.registry)
        #: ``lazy_index`` (the sharded tier) defers the relation-index
        #: rebuild from the apply path to the first reader; the
        #: published rows are byte-identical either way.
        self.store = TupleStore(
            config.name, self.plan.program.head_relations(),
            lazy_index=lazy_index)
        self._system = None
        self._delta: Optional[DeltaMaintainer] = None
        if config.system == "delex":
            self._system = make_system(
                "delex", self.task, os.path.join(workdir, "delex"),
                jobs=config.jobs, backend=config.backend,
                fastpath=config.fastpath, collect_page_rows=True,
                adapt=config.adapt)
            # Adaptive metrics are labelled per view, matching the
            # "view:{name}" convention of publish_timings.
            if hasattr(self._system, "metrics_label"):
                self._system.metrics_label = f"view:{config.name}"
        elif config.system == "delta":
            self._delta = DeltaMaintainer(self.plan)
        #: did -> content fingerprint at deletion time; membership is
        #: what turns a returning did into ``SnapshotDiff.resurrected``.
        self._tombstones: Dict[str, str] = {}
        self._prev_snapshot: Optional[Snapshot] = None
        self.history: Deque[ApplyRecord] = deque(maxlen=APPLY_HISTORY)
        self.quarantine: List[Dict[str, object]] = []
        self.last_error: Optional[str] = None
        #: Test seam: called with the snapshot right before the store
        #: swap; a raising hook models an apply-time fault and must
        #: leave the previous generation serving (exercised by the
        #: quarantine tests).
        self._apply_hook: Optional[Callable[[Snapshot], None]] = None

    # -- status -----------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return not self.quarantine

    @property
    def generation(self) -> Optional[Generation]:
        return self.store.current()

    def adapt_summary(self) -> Optional[Dict[str, object]]:
        """The adaptive controller's counters, when one is maintaining
        this view (``system="delex"`` with ``adapt != "off"``)."""
        summary = getattr(self._system, "summary", None)
        return summary() if callable(summary) else None

    def describe(self) -> Dict[str, object]:
        generation = self.generation
        doc = {
            "config": self.config.to_dict(),
            "relations": list(self.store.schema),
            "healthy": self.healthy,
            "generation": (generation.describe()
                           if generation is not None else None),
            "quarantined": list(self.quarantine),
            "last_error": self.last_error,
            "applies": len(self.history),
        }
        adapt = self.adapt_summary()
        if adapt is not None:
            doc["adapt"] = adapt
        return doc

    # -- queries (any thread) ---------------------------------------------

    def query(self, relation: str, **kwargs) -> QueryResult:
        return self.store.query(relation, **kwargs)

    # -- maintenance (ingest thread only) ---------------------------------

    def diff_snapshot(self, snapshot: Snapshot) -> SnapshotDiff:
        """Fingerprint-partition the snapshot against the applied state."""
        prev = self._prev_snapshot
        prev_pages: Dict[str, Page] = (
            {p.did: p for p in prev.pages} if prev is not None else {})
        changed: List[str] = []
        new: List[str] = []
        unchanged: List[str] = []
        for page in snapshot.canonical_pages():
            old = prev_pages.pop(page.did, None)
            if old is None:
                new.append(page.did)
            elif (old.fingerprint == page.fingerprint
                  and old.text == page.text):
                unchanged.append(page.did)
            else:
                changed.append(page.did)
        deleted = sorted(prev_pages)
        resurrected = tuple(did for did in new if did in self._tombstones)
        return SnapshotDiff(changed=tuple(changed), new=tuple(new),
                            deleted=tuple(deleted),
                            unchanged=tuple(unchanged),
                            resurrected=resurrected)

    def apply_snapshot(self, snapshot: Snapshot,
                       check: bool = False) -> ApplyRecord:
        """Maintain the view for one arriving snapshot.

        Runs the configured maintenance mode, applies the result as a
        store delta, and publishes the next generation atomically. On
        any exception the store is untouched (the swap is the last
        step) and the caller — the ingest loop — decides between retry
        and quarantine. Snapshot indexes must be strictly increasing
        per view; gaps are fine (a quarantined snapshot is skipped,
        the next one diffs against the last *applied* snapshot).
        """
        prev = self._prev_snapshot
        if prev is not None and snapshot.index <= prev.index:
            raise ValueError(
                f"view {self.config.name!r}: snapshot index "
                f"{snapshot.index} does not advance past applied "
                f"index {prev.index}")
        start = time.perf_counter()
        diff = self.diff_snapshot(snapshot)
        replaced = set(diff.changed) | set(diff.new)
        delta_result: Optional[DeltaApplyResult] = None
        with invariants.checking(check or invariants.ENABLED):
            if self._delta is not None:
                timings, delta_result = self._apply_delta_mode(
                    snapshot, diff, check)
                upserts = delta_result.upserts
            elif self._system is not None:
                timings, upserts = self._apply_delex(snapshot, replaced,
                                                     diff, check)
            else:
                timings, upserts = self._apply_noreuse(snapshot, replaced)
        if self._apply_hook is not None:
            self._apply_hook(snapshot)
        generation = self.store.apply_delta(
            snapshot.index, upserts, deletes=diff.deleted,
            relations=(delta_result.relations
                       if delta_result is not None else None))
        prev_pages = ({p.did: p for p in self._prev_snapshot.pages}
                      if self._prev_snapshot is not None else {})
        for did in diff.deleted:
            page = prev_pages.get(did)
            self._tombstones[did] = page.fingerprint if page else ""
        for did in diff.resurrected:
            self._tombstones.pop(did, None)
        self._prev_snapshot = snapshot
        self.last_error = None
        record = ApplyRecord(
            gen_id=generation.gen_id,
            snapshot_index=snapshot.index,
            seconds=time.perf_counter() - start,
            engine_seconds=timings.total,
            pages_total=len(snapshot),
            pages_changed=len(diff.changed),
            pages_new=len(diff.new),
            pages_deleted=len(diff.deleted),
            pages_unchanged=len(diff.unchanged),
            tuples_total=generation.tuples_estimate(),
            timings=timings.to_dict(),
            delta=(delta_result.to_dict()
                   if delta_result is not None else None),
            applied_at=time.time(),
            applied_mono=time.monotonic(),
        )
        self.history.append(record)
        if _oreg.ENABLED:
            self._publish_apply(record, timings)
            if delta_result is not None:
                self._publish_delta(record, delta_result)
        return record

    def _publish_apply(self, record: ApplyRecord, timings: Timings) -> None:
        """Fold one apply's telemetry into the process metrics registry."""
        name = self.config.name
        _oreg.REGISTRY.inc(
            "repro_view_applies_total",
            help="snapshots applied per view", view=name)
        _oreg.REGISTRY.observe(
            "repro_view_apply_seconds", record.seconds,
            help="wall seconds per snapshot apply (diff + run + delta + "
                 "swap)", view=name)
        _oreg.REGISTRY.inc(
            "repro_view_pages_replaced_total",
            float(record.pages_changed + record.pages_new),
            help="pages whose rows were recomputed by an apply",
            view=name)
        _oreg.REGISTRY.set(
            "repro_view_tuples", float(record.tuples_total),
            help="tuples in the view's current generation", view=name)
        _oreg.REGISTRY.set(
            "repro_view_generation", float(record.gen_id),
            help="current generation id per view", view=name)
        _oreg.publish_timings(f"view:{name}", timings)
        # The view's persistent system carries the cross-snapshot match
        # cache across applies; export its occupancy/traffic per view.
        match_cache = getattr(self._system, "match_cache", None)
        if match_cache is not None:
            _oreg.publish_matchcache(f"view:{name}", match_cache)

    def _apply_delex(self, snapshot: Snapshot, replaced: set,
                     diff: SnapshotDiff, check: bool
                     ) -> Tuple[Timings, PageRows]:
        """Incremental maintenance through the delex engine."""
        assert self._system is not None
        result = self._system.process(snapshot, None)
        page_rows = self._system.last_page_rows or {}
        if check:
            self._check_against_engine(snapshot, page_rows, diff)
        upserts = {did: page_rows[did] for did in sorted(replaced)
                   if did in page_rows}
        return result.timings, upserts

    def _apply_noreuse(self, snapshot: Snapshot, replaced: set
                       ) -> Tuple[Timings, PageRows]:
        """Differential maintenance: extract only changed/new pages."""
        timings = Timings()
        timer = Timer(timings)
        pages = [p for p in snapshot.canonical_pages()
                 if p.did in replaced]
        with timer.measure_total():
            upserts = extract_page_rows(self.plan, pages, timer)
        return timings, upserts

    def _apply_delta_mode(self, snapshot: Snapshot, diff: SnapshotDiff,
                          check: bool
                          ) -> Tuple[Timings, DeltaApplyResult]:
        """Differential maintenance through the relational plan."""
        assert self._delta is not None
        timings = Timings()
        timer = Timer(timings)
        with timer.measure_total():
            result = self._delta.apply(snapshot, diff, check=check)
        if check:
            self._check_delta_against_batch(snapshot, result)
        return timings, result

    def _check_delta_against_batch(self, snapshot: Snapshot,
                                   result: DeltaApplyResult) -> None:
        """The delta-mode ``--check on`` guard: before the swap, the
        delta-maintained generation must equal what a from-scratch
        batch extraction of the whole snapshot would publish —
        relation indexes byte-for-byte (content *and* sort order),
        replaced pages' rows as sets. Failure keeps the previous
        generation serving; the ingest loop quarantines the snapshot.
        """
        timer = Timer(Timings())
        oracle_rows = extract_page_rows(
            self.plan, list(snapshot.canonical_pages()), timer)
        for rel in self.store.schema:
            want: set = set()
            for rels in oracle_rows.values():
                want.update(rels.get(rel, ()))
            want_sorted = tuple(sorted(want, key=_sort_key))
            if result.relations.get(rel, ()) != want_sorted:
                got = result.relations.get(rel, ())
                raise ViewConsistencyError(
                    f"view {self.config.name!r} snapshot "
                    f"{snapshot.index}: delta-maintained relation "
                    f"{rel!r} diverges from the batch oracle "
                    f"({len(got)} vs {len(want_sorted)} tuple(s), or "
                    "sort order drift)")
        for did, rels in result.upserts.items():
            fresh = oracle_rows.get(did)
            if fresh is None:
                raise ViewConsistencyError(
                    f"view {self.config.name!r} snapshot "
                    f"{snapshot.index}: delta upserted page {did!r} "
                    "that is not in the snapshot")
            for rel in self.store.schema:
                if set(rels.get(rel, ())) != set(fresh.get(rel, ())):
                    raise ViewConsistencyError(
                        f"view {self.config.name!r} snapshot "
                        f"{snapshot.index}: delta rows for page "
                        f"{did!r} relation {rel!r} diverge from "
                        "re-extraction")

    def _publish_delta(self, record: ApplyRecord,
                       result: DeltaApplyResult) -> None:
        """The ``repro_delta_*`` metric families (observability.md)."""
        name = self.config.name
        for decision, count in sorted(result.decision_counts().items()):
            _oreg.REGISTRY.inc(
                "repro_delta_pages_total", float(count),
                help="pages per classifier decision per view",
                view=name, decision=decision)
        counters = result.counters
        _oreg.REGISTRY.inc(
            "repro_delta_tuples_total", float(counters.rows_added),
            help="tuple-level delta rows per view by kind",
            view=name, kind="added")
        _oreg.REGISTRY.inc(
            "repro_delta_tuples_total", float(counters.rows_retracted),
            help="tuple-level delta rows per view by kind",
            view=name, kind="retracted")
        _oreg.REGISTRY.inc(
            "repro_delta_extractor_calls_total",
            float(counters.extractor_calls),
            help="extractor invocations the delta apply could not avoid",
            view=name)
        _oreg.REGISTRY.inc(
            "repro_delta_memo_hits_total", float(counters.memo_hits),
            help="IE region memo hits (extractions reused, not re-run)",
            view=name)
        _oreg.REGISTRY.set(
            "repro_delta_fallback_ratio", result.fallback_ratio,
            help="share of changed pages that fell back to "
                 "re-extraction in the last apply", view=name)
        _oreg.REGISTRY.observe(
            "repro_delta_apply_seconds", record.seconds,
            help="wall seconds per differential apply", view=name)

    def _check_against_engine(self, snapshot: Snapshot,
                              page_rows: PageRows,
                              diff: SnapshotDiff) -> None:
        """The ``--check on`` guard: store and engine must agree.

        Two properties, both verified *before* the swap so a failure
        leaves the previous generation serving:

        * coverage — the engine attributed rows to exactly the
          snapshot's pages, and carrying unchanged pages over covers
          what the delta skips;
        * drift — every unchanged page's stored rows are identical to
          what the engine just (re)produced for that page. Combined
          with upserts coming verbatim from the same run, this implies
          the published generation equals the engine's full result.
        """
        snapshot_dids = {p.did for p in snapshot.pages}
        if set(page_rows) != snapshot_dids:
            missing = sorted(snapshot_dids - set(page_rows))[:3]
            extra = sorted(set(page_rows) - snapshot_dids)[:3]
            raise ViewConsistencyError(
                f"view {self.config.name!r} snapshot {snapshot.index}: "
                f"engine page coverage mismatch (missing={missing}, "
                f"extra={extra})")
        generation = self.store.current()
        stored = generation.page_rows if generation is not None else {}
        for did in diff.unchanged:
            kept = stored.get(did)
            fresh = page_rows.get(did, {})
            if kept is None:
                raise ViewConsistencyError(
                    f"view {self.config.name!r} snapshot "
                    f"{snapshot.index}: unchanged page {did!r} missing "
                    "from the current generation")
            for rel in self.store.schema:
                if tuple(fresh.get(rel, ())) != tuple(kept.get(rel, ())):
                    raise ViewConsistencyError(
                        f"view {self.config.name!r} snapshot "
                        f"{snapshot.index}: unchanged page {did!r} "
                        f"relation {rel!r} drifted between the store "
                        "and the engine")


class ViewRegistry:
    """All views of one serving deployment, under one root directory."""

    def __init__(self, workdir: str) -> None:
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self._lock = threading.Lock()
        self._views: Dict[str, MaterializedView] = {}

    def register(self, config: ViewConfig,
                 lazy_index: bool = False) -> MaterializedView:
        with self._lock:
            if config.name in self._views:
                raise ValueError(f"view {config.name!r} already "
                                 "registered")
            view = MaterializedView(
                config, os.path.join(self.workdir, config.name),
                lazy_index=lazy_index)
            self._views[config.name] = view
            return view

    def get(self, name: str) -> MaterializedView:
        with self._lock:
            if name not in self._views:
                raise KeyError(f"no view {name!r}; registered: "
                               f"{sorted(self._views)}")
            return self._views[name]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._views)

    def views(self) -> List[MaterializedView]:
        with self._lock:
            return [self._views[name] for name in sorted(self._views)]

    @property
    def healthy(self) -> bool:
        return all(view.healthy for view in self.views())

    def describe(self) -> Dict[str, object]:
        return {view.config.name: view.describe()
                for view in self.views()}
