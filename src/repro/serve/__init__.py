"""repro.serve — incremental extraction serving.

The batch pipeline answers "what does the program extract from this
snapshot?"; this package answers the production question the paper's
setting implies: *keep the extracted relations of one or more xlog
programs continuously fresh while snapshots keep arriving, and serve
them to concurrent readers the whole time.*

Four layers, composed bottom-up:

* :mod:`.store` — a generation-versioned tuple store. Each applied
  snapshot becomes an immutable :class:`~repro.serve.store.Generation`
  (per-page rows + precomputed relation indexes); readers grab the
  current generation reference once and do every read off that frozen
  object, so a query never observes a half-applied snapshot. Writers
  apply *deltas*: only pages the snapshot changed are replaced.
* :mod:`.views` — named materialized views: one registered xlog task
  each, maintained incrementally by the delex engine (per-view reuse
  files, per-page attribution straight from the recycled run) or by
  per-changed-page from-scratch extraction, with an optional
  store-vs-engine consistency guard.
* :mod:`.ingest` — the single-writer apply loop: a bounded queue with
  backpressure fed programmatically or by a spool-directory watcher;
  per-snapshot retry-once-then-quarantine keeps one poisoned snapshot
  from wedging the service.
* :mod:`.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``/query``, ``/ingest``, ``/views``, ``/healthz``, ``/metrics``)
  plus the ``python -m repro serve`` wiring.

Scaling past one apply loop lives in :mod:`repro.shard`: the same
store/view/ingest machinery partitioned across N in-process shard
workers behind a scatter-gather router with consistent generation
vectors (``repro serve --shards N``).

Everything is stdlib-only, like the rest of the repo.
"""

from .ingest import (
    IngestLoop,
    IngestQueue,
    SpoolWatcher,
    drop_snapshot,
    lag_series,
)
from .server import ExtractionServer, ServeApp, build_server, serve_in_thread
from .store import Generation, QueryResult, TupleStore, tuple_to_json
from .views import (
    MaterializedView,
    ViewConfig,
    ViewConsistencyError,
    ViewRegistry,
)

__all__ = [
    "Generation",
    "TupleStore",
    "QueryResult",
    "tuple_to_json",
    "ViewConfig",
    "MaterializedView",
    "ViewRegistry",
    "ViewConsistencyError",
    "IngestQueue",
    "IngestLoop",
    "SpoolWatcher",
    "drop_snapshot",
    "lag_series",
    "ServeApp",
    "ExtractionServer",
    "build_server",
    "serve_in_thread",
]
