"""Generation-versioned tuple store for materialized extracted views.

The serving problem has a classic consistency hazard: a snapshot apply
replaces some pages' tuples while query threads are mid-read, and a
naive shared dict would let one response mix generation *n* rows for
page A with generation *n+1* rows for page B. The store solves it the
database way — multi-version concurrency with a single atomic swap:

* every applied snapshot builds a fresh, immutable
  :class:`Generation`: the per-page row map (``did -> relation ->
  rows``) plus a precomputed sorted relation index for pagination;
* unchanged pages' row lists are *shared by reference* with the
  previous generation (applying a snapshot is O(changed pages +
  total relation size for the index), never O(corpus text));
* publication is one reference assignment under a lock
  (:meth:`TupleStore.apply_delta`); readers take the current reference
  once (:meth:`TupleStore.current`) and do the entire query off that
  frozen object. A reader therefore always sees exactly one
  generation, even while the writer publishes the next one.

The writer side is single-writer by contract — the ingest loop
(:mod:`repro.serve.ingest`) is the only caller of ``apply_delta`` —
which keeps the generation sequence linear without any writer-side
coordination.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


def _sort_key(tup: tuple) -> str:
    """Total, deterministic order for canonical tuples.

    Canonical tuples are nested (var, value) pairs whose values mix
    strings, numbers, and span triples; ``repr`` gives a total order
    that is stable across processes (no hash randomization) — which is
    all pagination needs.
    """
    return repr(tup)


def tuple_to_json(tup: tuple) -> Dict[str, object]:
    """One canonical tuple as a JSON-friendly field map.

    Span values ``(start, end, text)`` become ``{"start", "end",
    "text"}`` objects; scalars pass through. The inverse is not needed
    anywhere — responses are for consumption, the store itself always
    holds canonical tuples.
    """
    out: Dict[str, object] = {}
    for var, value in tup:
        if (isinstance(value, tuple) and len(value) == 3
                and isinstance(value[0], int) and isinstance(value[1], int)
                and isinstance(value[2], str)):
            out[var] = {"start": value[0], "end": value[1],
                        "text": value[2]}
        else:
            out[var] = value
    return out


def _tuple_text(tup: tuple) -> str:
    """All text content of a tuple, for substring filtering."""
    parts: List[str] = []
    for _var, value in tup:
        if isinstance(value, tuple) and len(value) == 3:
            parts.append(str(value[2]))
        else:
            parts.append(str(value))
    return " ".join(parts)


def _field_value(tup: tuple, var: str) -> Optional[str]:
    """The textual value of one field (span text for spans)."""
    for name, value in tup:
        if name != var:
            continue
        if isinstance(value, tuple) and len(value) == 3:
            return str(value[2])
        return str(value)
    return None


def filter_rows(rows: Sequence[tuple],
                contains: Optional[str] = None,
                field_filters: Optional[Mapping[str, str]] = None
                ) -> Sequence[tuple]:
    """Apply the ``/query`` filter semantics to a row sequence.

    Shared between :meth:`TupleStore.query` and the scatter-gather
    router (:mod:`repro.shard.router`) so a sharded deployment answers
    filtered queries byte-identically to the single store.
    """
    if contains:
        needle = contains.lower()
        rows = [t for t in rows if needle in _tuple_text(t).lower()]
    if field_filters:
        for var, want in field_filters.items():
            rows = [t for t in rows if _field_value(t, var) == want]
    return rows


def build_relation_index(page_rows: Mapping[str, Mapping[str, Sequence[tuple]]],
                         relation: str) -> Tuple[tuple, ...]:
    """The canonical relation index: cross-page dedupe + total sort.

    This is the single definition of pagination order for one
    relation; the eager store builds it at apply time, the lazy store
    (sharded serving) on first read.
    """
    seen = set()
    merged: List[tuple] = []
    for did in page_rows:
        for tup in page_rows[did].get(relation, ()):
            if tup not in seen:
                seen.add(tup)
                merged.append(tup)
    merged.sort(key=_sort_key)
    return tuple(merged)


def merge_relation_indexes(indexes: Sequence[Sequence[tuple]]
                           ) -> Tuple[tuple, ...]:
    """K-way merge of per-shard sorted relation indexes, deduplicated.

    Each input is already sorted by :func:`_sort_key` and internally
    deduplicated (a shard's own index); the same tuple may still
    appear in several shards when different pages emit it. The merge
    is byte-identical to :func:`build_relation_index` over the union
    of the shards' page maps: equal sort keys imply equal tuples for
    canonical values, so set-dedup during a stable heap merge yields
    exactly the global dedupe-then-sort order.
    """
    seen = set()
    merged: List[tuple] = []
    for tup in heapq.merge(*indexes, key=_sort_key):
        if tup not in seen:
            seen.add(tup)
            merged.append(tup)
    return tuple(merged)


class LazyRelationIndex(Mapping):
    """A relation index built per relation on first read.

    The sharded serving tier moves index assembly off the writer path:
    a shard's apply only replaces per-page row maps, and the sorted,
    deduplicated index materializes lazily — on a *reader* thread, at
    most once per (generation, relation), behind a double-checked
    lock. The mapping is immutable from the outside: same keys, same
    values, forever — readers can treat it exactly like the eager
    ``dict`` index.
    """

    def __init__(self, page_rows: Mapping[str, Mapping[str, Sequence[tuple]]],
                 schema: Sequence[str]) -> None:
        self._page_rows = page_rows
        self._schema = tuple(schema)
        self._built: Dict[str, Tuple[tuple, ...]] = {}
        self._lock = threading.Lock()

    @property
    def built(self) -> bool:
        """True once every relation's index has materialized."""
        return len(self._built) == len(self._schema)

    def __getitem__(self, relation: str) -> Tuple[tuple, ...]:
        if relation not in self._schema:
            raise KeyError(relation)
        index = self._built.get(relation)
        if index is None:
            with self._lock:
                index = self._built.get(relation)
                if index is None:
                    index = build_relation_index(self._page_rows, relation)
                    self._built[relation] = index
        return index

    def get(self, relation: str, default=None):
        try:
            return self[relation]
        except KeyError:
            return default

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema)

    def __len__(self) -> int:
        return len(self._schema)


@dataclass(frozen=True)
class Generation:
    """One immutable published state of a view.

    ``gen_id`` increases by one per successful apply (independent of
    snapshot indexes, which may skip after a quarantine).
    ``page_rows`` maps ``did -> relation -> rows`` with rows in the
    producing run's emission order; ``relations`` is the deduplicated,
    deterministically sorted union per relation — the pagination
    index. Both are frozen at build time and never mutated.
    """

    gen_id: int
    snapshot_index: int
    page_rows: Mapping[str, Mapping[str, Tuple[tuple, ...]]]
    relations: Mapping[str, Tuple[tuple, ...]]
    created_at: float
    pages_total: int
    pages_replaced: int
    pages_deleted: int
    pages_kept: int

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    def tuples_estimate(self) -> int:
        """Deduplicated tuple count when cheap, raw row count otherwise.

        A lazy-index generation (sharded serving) must not pay the
        cross-page dedupe on the writer path just to report a metric;
        until a reader materializes the index this returns the raw
        per-page row count (an upper bound). Eager generations — and
        lazy ones once built — report the exact deduplicated total.
        """
        relations = self.relations
        if isinstance(relations, LazyRelationIndex) and not relations.built:
            return sum(len(rows)
                       for rels in self.page_rows.values()
                       for rows in rels.values())
        return self.total_tuples()

    def canonical(self) -> Dict[str, frozenset]:
        """Order-insensitive relation view (the Theorem 1 shape)."""
        return {rel: frozenset(rows)
                for rel, rows in self.relations.items()}

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.gen_id,
            "snapshot_index": self.snapshot_index,
            "created_at": self.created_at,
            "pages": self.pages_total,
            "pages_replaced": self.pages_replaced,
            "pages_deleted": self.pages_deleted,
            "pages_kept": self.pages_kept,
            "tuples": self.total_tuples(),
            "relations": {rel: len(rows)
                          for rel, rows in sorted(self.relations.items())},
        }


@dataclass
class QueryResult:
    """One consistent read: everything comes from a single generation."""

    view: str
    generation: int
    snapshot_index: int
    relation: str
    total: int
    offset: int
    limit: int
    tuples: List[tuple] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "view": self.view,
            "generation": self.generation,
            "snapshot_index": self.snapshot_index,
            "relation": self.relation,
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "count": len(self.tuples),
            "tuples": [tuple_to_json(t) for t in self.tuples],
        }


class EmptyViewError(LookupError):
    """Query against a view with no published generation yet."""


class UnknownRelationError(KeyError):
    """Query names a relation the view's program does not define."""


class TupleStore:
    """Holds the current :class:`Generation` of one view.

    Thread-safety contract: any number of reader threads may call
    :meth:`current`/:meth:`query` concurrently with one writer thread
    calling :meth:`apply_delta`. Readers are wait-free after the one
    reference read; the writer builds the next generation entirely
    off-line and publishes it with a single swap.
    """

    def __init__(self, view: str, relations: Sequence[str],
                 lazy_index: bool = False) -> None:
        self.view = view
        #: The program's head relations — the query schema, fixed at
        #: registration so an empty view still rejects bad relation
        #: names precisely.
        self.schema = tuple(relations)
        #: Lazy mode (the sharded serving tier): ``apply_delta`` skips
        #: the relation-index rebuild entirely and publishes a
        #: :class:`LazyRelationIndex` instead, moving the dedupe+sort
        #: from the writer path to the first reader that needs it.
        #: Results are byte-identical either way.
        self.lazy_index = lazy_index
        self._lock = threading.Lock()
        self._current: Optional[Generation] = None
        self._gen_counter = 0

    # -- reader side ------------------------------------------------------

    def current(self) -> Optional[Generation]:
        """The published generation (None before the first apply)."""
        with self._lock:
            return self._current

    def query(self, relation: str, offset: int = 0, limit: int = 50,
              contains: Optional[str] = None,
              field_filters: Optional[Mapping[str, str]] = None
              ) -> QueryResult:
        """Paginated, filtered read of one relation.

        ``contains`` keeps tuples whose concatenated text contains the
        substring (case-insensitive); ``field_filters`` keeps tuples
        whose named field's text equals the given value exactly.
        Filters run over the generation's precomputed sorted index, so
        two queries with the same parameters against the same
        generation return identical pages.
        """
        generation = self.current()
        if generation is None:
            raise EmptyViewError(
                f"view {self.view!r} has no generation yet")
        if relation not in self.schema:
            raise UnknownRelationError(
                f"view {self.view!r} has no relation {relation!r}; "
                f"schema is {self.schema}")
        rows: Sequence[tuple] = generation.relations.get(relation, ())
        rows = filter_rows(rows, contains, field_filters)
        offset = max(0, offset)
        limit = max(0, limit)
        return QueryResult(
            view=self.view, generation=generation.gen_id,
            snapshot_index=generation.snapshot_index, relation=relation,
            total=len(rows), offset=offset, limit=limit,
            tuples=list(rows[offset:offset + limit]))

    # -- writer side (single writer: the ingest loop) --------------------

    def apply_delta(self, snapshot_index: int,
                    upserts: Mapping[str, Mapping[str, Sequence[tuple]]],
                    deletes: Iterable[str] = (),
                    relations: Optional[Mapping[str, Sequence[tuple]]]
                    = None) -> Generation:
        """Build and atomically publish the next generation.

        ``upserts`` maps changed/new page dids to their new per-
        relation rows (:mod:`repro.reuse.attribution` shape);
        ``deletes`` lists dids that left the corpus. Every other
        page's rows are carried over *by reference* from the current
        generation. The swap is the last statement — on any exception
        before it the store still serves the previous generation
        untouched, which is what makes the ingest loop's quarantine
        path safe.

        ``relations``, when given, is a prebuilt sorted relation index
        adopted verbatim — the differential maintenance mode
        (:mod:`repro.delta`) merges each generation's support
        transitions into the previous index incrementally, replacing
        this method's O(total relation size) dedupe-and-sort rebuild
        with work proportional to the delta. The caller owns the
        equivalence (the ``--check on`` guard cross-checks it).
        """
        previous = self.current()
        page_rows: Dict[str, Mapping[str, Tuple[tuple, ...]]] = (
            dict(previous.page_rows) if previous is not None else {})
        deleted = 0
        for did in deletes:
            if page_rows.pop(did, None) is not None:
                deleted += 1
        replaced = 0
        for did, rels in upserts.items():
            page_rows[did] = {rel: tuple(rows)
                              for rel, rows in rels.items()}
            replaced += 1
        index: Mapping[str, Tuple[tuple, ...]]
        if relations is not None:
            index = {rel: tuple(relations.get(rel, ()))
                     for rel in self.schema}
        elif self.lazy_index:
            if previous is not None and not replaced and not deleted:
                # No-op delta: the page map is content-identical, so
                # the previous generation's index (and any relation a
                # reader already materialized in it) carries forward.
                index = previous.relations
            else:
                index = LazyRelationIndex(page_rows, self.schema)
        else:
            index = {rel: build_relation_index(page_rows, rel)
                     for rel in self.schema}
        generation = Generation(
            gen_id=self._gen_counter + 1,
            snapshot_index=snapshot_index,
            page_rows=page_rows,
            relations=index,
            created_at=time.time(),
            pages_total=len(page_rows),
            pages_replaced=replaced,
            pages_deleted=deleted,
            pages_kept=len(page_rows) - replaced,
        )
        with self._lock:
            self._gen_counter = generation.gen_id
            self._current = generation
        return generation
