"""Generation-versioned tuple store for materialized extracted views.

The serving problem has a classic consistency hazard: a snapshot apply
replaces some pages' tuples while query threads are mid-read, and a
naive shared dict would let one response mix generation *n* rows for
page A with generation *n+1* rows for page B. The store solves it the
database way — multi-version concurrency with a single atomic swap:

* every applied snapshot builds a fresh, immutable
  :class:`Generation`: the per-page row map (``did -> relation ->
  rows``) plus a precomputed sorted relation index for pagination;
* unchanged pages' row lists are *shared by reference* with the
  previous generation (applying a snapshot is O(changed pages +
  total relation size for the index), never O(corpus text));
* publication is one reference assignment under a lock
  (:meth:`TupleStore.apply_delta`); readers take the current reference
  once (:meth:`TupleStore.current`) and do the entire query off that
  frozen object. A reader therefore always sees exactly one
  generation, even while the writer publishes the next one.

The writer side is single-writer by contract — the ingest loop
(:mod:`repro.serve.ingest`) is the only caller of ``apply_delta`` —
which keeps the generation sequence linear without any writer-side
coordination.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def _sort_key(tup: tuple) -> str:
    """Total, deterministic order for canonical tuples.

    Canonical tuples are nested (var, value) pairs whose values mix
    strings, numbers, and span triples; ``repr`` gives a total order
    that is stable across processes (no hash randomization) — which is
    all pagination needs.
    """
    return repr(tup)


def tuple_to_json(tup: tuple) -> Dict[str, object]:
    """One canonical tuple as a JSON-friendly field map.

    Span values ``(start, end, text)`` become ``{"start", "end",
    "text"}`` objects; scalars pass through. The inverse is not needed
    anywhere — responses are for consumption, the store itself always
    holds canonical tuples.
    """
    out: Dict[str, object] = {}
    for var, value in tup:
        if (isinstance(value, tuple) and len(value) == 3
                and isinstance(value[0], int) and isinstance(value[1], int)
                and isinstance(value[2], str)):
            out[var] = {"start": value[0], "end": value[1],
                        "text": value[2]}
        else:
            out[var] = value
    return out


def _tuple_text(tup: tuple) -> str:
    """All text content of a tuple, for substring filtering."""
    parts: List[str] = []
    for _var, value in tup:
        if isinstance(value, tuple) and len(value) == 3:
            parts.append(str(value[2]))
        else:
            parts.append(str(value))
    return " ".join(parts)


def _field_value(tup: tuple, var: str) -> Optional[str]:
    """The textual value of one field (span text for spans)."""
    for name, value in tup:
        if name != var:
            continue
        if isinstance(value, tuple) and len(value) == 3:
            return str(value[2])
        return str(value)
    return None


@dataclass(frozen=True)
class Generation:
    """One immutable published state of a view.

    ``gen_id`` increases by one per successful apply (independent of
    snapshot indexes, which may skip after a quarantine).
    ``page_rows`` maps ``did -> relation -> rows`` with rows in the
    producing run's emission order; ``relations`` is the deduplicated,
    deterministically sorted union per relation — the pagination
    index. Both are frozen at build time and never mutated.
    """

    gen_id: int
    snapshot_index: int
    page_rows: Mapping[str, Mapping[str, Tuple[tuple, ...]]]
    relations: Mapping[str, Tuple[tuple, ...]]
    created_at: float
    pages_total: int
    pages_replaced: int
    pages_deleted: int
    pages_kept: int

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    def canonical(self) -> Dict[str, frozenset]:
        """Order-insensitive relation view (the Theorem 1 shape)."""
        return {rel: frozenset(rows)
                for rel, rows in self.relations.items()}

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.gen_id,
            "snapshot_index": self.snapshot_index,
            "created_at": self.created_at,
            "pages": self.pages_total,
            "pages_replaced": self.pages_replaced,
            "pages_deleted": self.pages_deleted,
            "pages_kept": self.pages_kept,
            "tuples": self.total_tuples(),
            "relations": {rel: len(rows)
                          for rel, rows in sorted(self.relations.items())},
        }


@dataclass
class QueryResult:
    """One consistent read: everything comes from a single generation."""

    view: str
    generation: int
    snapshot_index: int
    relation: str
    total: int
    offset: int
    limit: int
    tuples: List[tuple] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "view": self.view,
            "generation": self.generation,
            "snapshot_index": self.snapshot_index,
            "relation": self.relation,
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "count": len(self.tuples),
            "tuples": [tuple_to_json(t) for t in self.tuples],
        }


class EmptyViewError(LookupError):
    """Query against a view with no published generation yet."""


class UnknownRelationError(KeyError):
    """Query names a relation the view's program does not define."""


class TupleStore:
    """Holds the current :class:`Generation` of one view.

    Thread-safety contract: any number of reader threads may call
    :meth:`current`/:meth:`query` concurrently with one writer thread
    calling :meth:`apply_delta`. Readers are wait-free after the one
    reference read; the writer builds the next generation entirely
    off-line and publishes it with a single swap.
    """

    def __init__(self, view: str, relations: Sequence[str]) -> None:
        self.view = view
        #: The program's head relations — the query schema, fixed at
        #: registration so an empty view still rejects bad relation
        #: names precisely.
        self.schema = tuple(relations)
        self._lock = threading.Lock()
        self._current: Optional[Generation] = None
        self._gen_counter = 0

    # -- reader side ------------------------------------------------------

    def current(self) -> Optional[Generation]:
        """The published generation (None before the first apply)."""
        with self._lock:
            return self._current

    def query(self, relation: str, offset: int = 0, limit: int = 50,
              contains: Optional[str] = None,
              field_filters: Optional[Mapping[str, str]] = None
              ) -> QueryResult:
        """Paginated, filtered read of one relation.

        ``contains`` keeps tuples whose concatenated text contains the
        substring (case-insensitive); ``field_filters`` keeps tuples
        whose named field's text equals the given value exactly.
        Filters run over the generation's precomputed sorted index, so
        two queries with the same parameters against the same
        generation return identical pages.
        """
        generation = self.current()
        if generation is None:
            raise EmptyViewError(
                f"view {self.view!r} has no generation yet")
        if relation not in self.schema:
            raise UnknownRelationError(
                f"view {self.view!r} has no relation {relation!r}; "
                f"schema is {self.schema}")
        rows: Sequence[tuple] = generation.relations.get(relation, ())
        if contains:
            needle = contains.lower()
            rows = [t for t in rows if needle in _tuple_text(t).lower()]
        if field_filters:
            for var, want in field_filters.items():
                rows = [t for t in rows if _field_value(t, var) == want]
        offset = max(0, offset)
        limit = max(0, limit)
        return QueryResult(
            view=self.view, generation=generation.gen_id,
            snapshot_index=generation.snapshot_index, relation=relation,
            total=len(rows), offset=offset, limit=limit,
            tuples=list(rows[offset:offset + limit]))

    # -- writer side (single writer: the ingest loop) --------------------

    def apply_delta(self, snapshot_index: int,
                    upserts: Mapping[str, Mapping[str, Sequence[tuple]]],
                    deletes: Iterable[str] = (),
                    relations: Optional[Mapping[str, Sequence[tuple]]]
                    = None) -> Generation:
        """Build and atomically publish the next generation.

        ``upserts`` maps changed/new page dids to their new per-
        relation rows (:mod:`repro.reuse.attribution` shape);
        ``deletes`` lists dids that left the corpus. Every other
        page's rows are carried over *by reference* from the current
        generation. The swap is the last statement — on any exception
        before it the store still serves the previous generation
        untouched, which is what makes the ingest loop's quarantine
        path safe.

        ``relations``, when given, is a prebuilt sorted relation index
        adopted verbatim — the differential maintenance mode
        (:mod:`repro.delta`) merges each generation's support
        transitions into the previous index incrementally, replacing
        this method's O(total relation size) dedupe-and-sort rebuild
        with work proportional to the delta. The caller owns the
        equivalence (the ``--check on`` guard cross-checks it).
        """
        previous = self.current()
        page_rows: Dict[str, Mapping[str, Tuple[tuple, ...]]] = (
            dict(previous.page_rows) if previous is not None else {})
        deleted = 0
        for did in deletes:
            if page_rows.pop(did, None) is not None:
                deleted += 1
        replaced = 0
        for did, rels in upserts.items():
            page_rows[did] = {rel: tuple(rows)
                              for rel, rows in rels.items()}
            replaced += 1
        if relations is not None:
            index: Dict[str, Tuple[tuple, ...]] = {
                rel: tuple(relations.get(rel, ())) for rel in self.schema}
        else:
            index = {}
            for rel in self.schema:
                seen = set()
                merged: List[tuple] = []
                for did in page_rows:
                    for tup in page_rows[did].get(rel, ()):
                        if tup not in seen:
                            seen.add(tup)
                            merged.append(tup)
                merged.sort(key=_sort_key)
                index[rel] = tuple(merged)
        generation = Generation(
            gen_id=self._gen_counter + 1,
            snapshot_index=snapshot_index,
            page_rows=page_rows,
            relations=index,
            created_at=time.time(),
            pages_total=len(page_rows),
            pages_replaced=replaced,
            pages_deleted=deleted,
            pages_kept=len(page_rows) - replaced,
        )
        with self._lock:
            self._gen_counter = generation.gen_id
            self._current = generation
        return generation
