"""HTTP front end: query/ingest/health/metrics over stdlib threads.

A :class:`ServeApp` bundles the registry, the bounded ingest queue,
the apply loop, and (optionally) a spool watcher; request handling is
plain functions on the app returning ``(status, payload)`` so the
whole API surface is unit-testable without sockets. The HTTP layer is
a ``ThreadingHTTPServer`` — one thread per in-flight request — which
is exactly the concurrency shape the generation-swap store is built
for: any number of reader threads, one writer thread.

Endpoints (all JSON):

* ``GET /query?view=&relation=&offset=&limit=&contains=&f.<var>=`` —
  paginated, filtered read; every response carries the one generation
  id it was served from.
* ``POST /ingest`` — body ``{"index": n, "pages": [{"url", "text"}]}``;
  202 on enqueue, 429 on backpressure.
* ``GET /views`` — registered views, their configs and generations.
* ``GET /healthz`` — 200 ok / 503 degraded (quarantined snapshots or
  a dead ingest loop).
* ``GET /metrics`` — uptime, query counters, ingest lag, and per-view
  per-generation apply timings with the full
  ``Timings``/``RuntimeMetrics``/``FastPathStats`` ``to_dict`` nests.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..corpus.snapshot import Snapshot
from ..text.document import Page
from .ingest import IngestLoop, IngestQueue, SpoolWatcher
from .store import EmptyViewError, UnknownRelationError
from .views import ViewRegistry

#: Hard cap on one ``/query`` page, whatever ``limit`` asks for.
MAX_LIMIT = 1000

Payload = Tuple[int, Dict[str, object]]


class ServeApp:
    """Everything one serving deployment holds, HTTP-free."""

    def __init__(self, registry: ViewRegistry, ingest_queue: IngestQueue,
                 loop: IngestLoop,
                 watcher: Optional[SpoolWatcher] = None) -> None:
        self.registry = registry
        self.queue = ingest_queue
        self.loop = loop
        self.watcher = watcher
        self.started_at = time.time()
        self._query_lock = threading.Lock()
        self.queries_served = 0
        self.ingest_requests = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.loop.start()
        if self.watcher is not None:
            self.watcher.start()

    def shutdown(self) -> None:
        if self.watcher is not None:
            self.watcher.stop()
        self.loop.stop()

    # -- request handlers (thread-safe) -----------------------------------

    def handle_root(self) -> Payload:
        return 200, {
            "service": "repro.serve — incremental extraction serving",
            "views": self.registry.names(),
            "endpoints": ["/query", "/ingest", "/views", "/healthz",
                          "/metrics"],
        }

    def handle_query(self, params: Dict[str, str]) -> Payload:
        with self._query_lock:
            self.queries_served += 1
        view_name = params.get("view")
        if view_name is None:
            names = self.registry.names()
            if len(names) != 1:
                return 400, {"error": "query needs ?view= when "
                                      f"{len(names)} views are "
                                      "registered",
                             "views": names}
            view_name = names[0]
        try:
            view = self.registry.get(view_name)
        except KeyError:
            return 404, {"error": f"no view {view_name!r}",
                         "views": self.registry.names()}
        relation = params.get("relation") or (
            view.store.schema[0] if view.store.schema else "")
        try:
            offset = int(params.get("offset", "0"))
            limit = min(MAX_LIMIT, int(params.get("limit", "50")))
        except ValueError:
            return 400, {"error": "offset/limit must be integers"}
        field_filters = {key[2:]: value for key, value in params.items()
                         if key.startswith("f.") and len(key) > 2}
        try:
            result = view.query(relation, offset=offset, limit=limit,
                                contains=params.get("contains"),
                                field_filters=field_filters or None)
        except UnknownRelationError:
            return 404, {"error": f"view {view_name!r} has no relation "
                                  f"{relation!r}",
                         "relations": list(view.store.schema)}
        except EmptyViewError:
            return 503, {"error": f"view {view_name!r} has no "
                                  "generation yet; ingest a snapshot "
                                  "first"}
        return 200, result.to_dict()

    def handle_ingest(self, body: bytes) -> Payload:
        self.ingest_requests += 1
        try:
            doc = json.loads(body.decode("utf-8"))
            index = int(doc["index"])
            pages = [Page.from_url(str(p["url"]), str(p["text"]))
                     for p in doc["pages"]]
            snapshot = Snapshot(index, pages)
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": "bad snapshot document: expected "
                                  '{"index": n, "pages": [{"url", '
                                  '"text"}, ...]} — ' + str(exc)}
        if not self.queue.push(snapshot, block=False):
            return 429, {"error": "ingest queue full — backpressure",
                         "queue": self.queue.describe()}
        return 202, {"queued": True, "index": index,
                     "pages": len(snapshot),
                     "queue": self.queue.describe()}

    def handle_views(self) -> Payload:
        return 200, {"views": self.registry.describe()}

    def handle_healthz(self) -> Payload:
        views = {
            view.config.name: {
                "healthy": view.healthy,
                "quarantined": len(view.quarantine),
                "generation": (view.generation.gen_id
                               if view.generation is not None else None),
            }
            for view in self.registry.views()
        }
        ok = self.registry.healthy and self.loop.running
        status = "ok" if ok else "degraded"
        reasons = []
        if not self.loop.running:
            reasons.append("ingest loop not running")
        for name, info in views.items():
            if not info["healthy"]:
                reasons.append(f"view {name!r} has "
                               f"{info['quarantined']} quarantined "
                               "snapshot(s)")
        return (200 if ok else 503), {"status": status,
                                      "reasons": reasons,
                                      "views": views}

    def handle_metrics(self) -> Payload:
        views = {}
        for view in self.registry.views():
            generation = view.generation
            last = view.history[-1] if view.history else None
            views[view.config.name] = {
                "config": view.config.to_dict(),
                "healthy": view.healthy,
                "generation": (generation.describe()
                               if generation is not None else None),
                "quarantined": list(view.quarantine),
                "last_apply": last.to_dict() if last is not None else None,
                "applies": [record.to_dict() for record in view.history],
            }
        return 200, {
            "uptime_seconds": time.time() - self.started_at,
            "queries_served": self.queries_served,
            "ingest_requests": self.ingest_requests,
            "ingest": self.loop.describe(),
            "spool": (self.watcher.describe()
                      if self.watcher is not None else None),
            "views": views,
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`ServeApp`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib contract
        parsed = urlparse(self.path)
        params = {key: values[-1] for key, values
                  in parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"
        if route == "/":
            status, payload = self.app.handle_root()
        elif route == "/query":
            status, payload = self.app.handle_query(params)
        elif route == "/views":
            status, payload = self.app.handle_views()
        elif route == "/healthz":
            status, payload = self.app.handle_healthz()
        elif route == "/metrics":
            status, payload = self.app.handle_metrics()
        else:
            status, payload = 404, {"error": f"no route {parsed.path!r}"}
        self._send(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib contract
        parsed = urlparse(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if parsed.path.rstrip("/") == "/ingest":
            status, payload = self.app.handle_ingest(body)
        else:
            status, payload = 404, {"error": f"no route {parsed.path!r}"}
        self._send(status, payload)


class ExtractionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app reference."""

    daemon_threads = True
    verbose = False

    def __init__(self, address, app: ServeApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


def build_server(app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0) -> ExtractionServer:
    """Bind (port 0 = ephemeral) without starting the serve loop."""
    return ExtractionServer((host, port), app)


def serve_in_thread(app: ServeApp, host: str = "127.0.0.1",
                    port: int = 0
                    ) -> Tuple[ExtractionServer, threading.Thread]:
    """Start app + HTTP server on a daemon thread; returns both.

    The test-suite/embedding entry point: the caller talks to
    ``server.server_address`` and later calls ``server.shutdown()``
    then ``app.shutdown()``.
    """
    app.start()
    server = build_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread
