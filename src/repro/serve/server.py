"""HTTP front end: query/ingest/health/metrics over stdlib threads.

A :class:`ServeApp` bundles the registry, the bounded ingest queue,
the apply loop, and (optionally) a spool watcher; request handling is
plain functions on the app returning ``(status, payload)`` so the
whole API surface is unit-testable without sockets. The HTTP layer is
a ``ThreadingHTTPServer`` — one thread per in-flight request — which
is exactly the concurrency shape the generation-swap store is built
for: any number of reader threads, one writer thread.

Endpoints (all JSON):

* ``GET /query?view=&relation=&offset=&limit=&contains=&f.<var>=`` —
  paginated, filtered read; every response carries the one generation
  id it was served from.
* ``POST /ingest`` — body ``{"index": n, "pages": [{"url", "text"}]}``;
  202 on enqueue, 429 on backpressure.
* ``GET /views`` — registered views, their configs and generations.
* ``GET /healthz`` — 200 ok / 503 degraded (quarantined snapshots or
  a dead ingest loop).
* ``GET /metrics`` — uptime, query counters, ingest lag, and per-view
  per-generation apply timings with the full
  ``Timings``/``RuntimeMetrics``/``FastPathStats`` ``to_dict`` nests.
  With ``?format=prometheus`` the same endpoint serves the process
  metrics registry in the text exposition format
  (``text/plain; version=0.0.4``) for scrape-based monitoring; JSON
  stays the default so existing consumers are unaffected.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..corpus.snapshot import Snapshot
from ..obs import registry as _oreg
from ..obs.util import safe_rate
from ..text.document import Page
from .ingest import IngestLoop, IngestQueue, SpoolWatcher
from .store import EmptyViewError, UnknownRelationError
from .views import ViewRegistry

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on one ``/query`` page, whatever ``limit`` asks for.
MAX_LIMIT = 1000

Payload = Tuple[int, Dict[str, object]]


class ServeApp:
    """Everything one serving deployment holds, HTTP-free.

    Two shapes, same API surface: classic single-shard (``registry`` +
    ``ingest_queue`` + ``loop``) or sharded (pass a
    :class:`repro.shard.ShardedDeployment` as ``sharded`` — it
    duck-types both the queue and the loop, so ``queue``/``loop`` may
    simply be the deployment itself). In sharded mode ``/query`` is
    answered by the scatter-gather router under a consistent
    generation vector, and ``/healthz``/``/metrics`` gain per-shard
    status.
    """

    def __init__(self, registry: ViewRegistry, ingest_queue,
                 loop, watcher: Optional[SpoolWatcher] = None,
                 sharded=None) -> None:
        self.registry = registry
        self.queue = ingest_queue
        self.loop = loop
        self.watcher = watcher
        #: The sharded deployment, when this app fronts one.
        self.sharded = sharded
        #: Wall-clock start timestamp — display only.
        self.started_at = time.time()
        #: Monotonic start timestamp — uptime is derived from this so
        #: a wall-clock step can never make uptime negative.
        self.started_mono = time.monotonic()
        self._query_lock = threading.Lock()
        self.queries_served = 0
        self.ingest_requests = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        # A serving process always publishes into the metrics registry:
        # /metrics?format=prometheus is part of the serve API surface.
        _oreg.enable()
        self.loop.start()
        if self.watcher is not None:
            self.watcher.start()

    def shutdown(self) -> bool:
        """Stop watcher + loop; ``True`` only if both exited cleanly."""
        ok = True
        if self.watcher is not None:
            ok = self.watcher.stop() and ok
        ok = self.loop.stop() and ok
        return ok

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_mono

    @property
    def queries_per_second(self) -> float:
        """Lifetime query rate; 0.0 at zero uptime (no div-by-zero)."""
        return safe_rate(self.queries_served, self.uptime_seconds)

    # -- request handlers (thread-safe) -----------------------------------

    def handle_root(self) -> Payload:
        return 200, {
            "service": "repro.serve — incremental extraction serving",
            "views": self.registry.names(),
            "endpoints": ["/query", "/ingest", "/views", "/healthz",
                          "/metrics"],
        }

    def handle_query(self, params: Dict[str, str]) -> Payload:
        with self._query_lock:
            self.queries_served += 1
        view_name = params.get("view")
        if view_name is None:
            names = self.registry.names()
            if len(names) != 1:
                return 400, {"error": "query needs ?view= when "
                                      f"{len(names)} views are "
                                      "registered",
                             "views": names}
            view_name = names[0]
        try:
            view = self.registry.get(view_name)
        except KeyError:
            return 404, {"error": f"no view {view_name!r}",
                         "views": self.registry.names()}
        relation = params.get("relation") or (
            view.store.schema[0] if view.store.schema else "")
        try:
            offset = int(params.get("offset", "0"))
            limit = min(MAX_LIMIT, int(params.get("limit", "50")))
        except ValueError:
            return 400, {"error": "offset/limit must be integers"}
        field_filters = {key[2:]: value for key, value in params.items()
                         if key.startswith("f.") and len(key) > 2}
        try:
            if self.sharded is not None:
                # Scatter-gather read under the consistent generation
                # vector; 503 before the first vector (same contract
                # as an empty single-shard view).
                result = self.sharded.router.query(
                    view_name, relation, offset=offset, limit=limit,
                    contains=params.get("contains"),
                    field_filters=field_filters or None)
            else:
                result = view.query(relation, offset=offset, limit=limit,
                                    contains=params.get("contains"),
                                    field_filters=field_filters or None)
        except UnknownRelationError:
            return 404, {"error": f"view {view_name!r} has no relation "
                                  f"{relation!r}",
                         "relations": list(view.store.schema)}
        except EmptyViewError:
            return 503, {"error": f"view {view_name!r} has no "
                                  "generation yet; ingest a snapshot "
                                  "first"}
        return 200, result.to_dict()

    def handle_ingest(self, body: bytes) -> Payload:
        self.ingest_requests += 1
        try:
            doc = json.loads(body.decode("utf-8"))
            index = int(doc["index"])
            pages = [Page.from_url(str(p["url"]), str(p["text"]))
                     for p in doc["pages"]]
            snapshot = Snapshot(index, pages)
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": "bad snapshot document: expected "
                                  '{"index": n, "pages": [{"url", '
                                  '"text"}, ...]} — ' + str(exc)}
        if not self.queue.push(snapshot, block=False):
            return 429, {"error": "ingest queue full — backpressure",
                         "queue": self._queue_status()}
        return 202, {"queued": True, "index": index,
                     "pages": len(snapshot),
                     "queue": self._queue_status()}

    def _queue_status(self) -> Dict[str, object]:
        """The front door's queue stats, whatever shape fronts it."""
        if self.sharded is not None:
            return self.sharded.describe_queue()
        return self.queue.describe()

    def handle_views(self) -> Payload:
        doc: Dict[str, object] = {"views": self.registry.describe()}
        if self.sharded is not None:
            # In sharded mode the registry block is shard 0's slice;
            # the authoritative cross-shard state is the vector.
            doc["vectors"] = {
                name: (vector.describe()
                       if (vector := self.sharded.router.vector(name))
                       is not None else None)
                for name in self.sharded.router.names()}
        return 200, doc

    def handle_healthz(self) -> Payload:
        if self.sharded is not None:
            return self._handle_healthz_sharded()
        views = {
            view.config.name: {
                "healthy": view.healthy,
                "quarantined": len(view.quarantine),
                "generation": (view.generation.gen_id
                               if view.generation is not None else None),
            }
            for view in self.registry.views()
        }
        ok = self.registry.healthy and self.loop.running
        status = "ok" if ok else "degraded"
        reasons = []
        if not self.loop.running:
            reasons.append("ingest loop not running")
        for name, info in views.items():
            if not info["healthy"]:
                reasons.append(f"view {name!r} has "
                               f"{info['quarantined']} quarantined "
                               "snapshot(s)")
        return (200 if ok else 503), {"status": status,
                                      "reasons": reasons,
                                      "views": views}

    def _handle_healthz_sharded(self) -> Payload:
        """Sharded health: per-shard loops + the router's barrier view.

        Degraded (503) when a shard loop is dead, a shard lags the
        barrier, or any view quarantined a sub-snapshot — but queries
        keep serving the last consistent vector throughout, so
        "degraded" never means "torn".
        """
        doc = self.sharded.healthz()
        reasons = []
        for shard in doc["shards"]:
            if not shard["loop_running"]:
                reasons.append(f"shard {shard['shard']} ingest loop "
                               "not running")
        for name, info in doc["views"].items():
            if info["lagging_shards"]:
                reasons.append(
                    f"view {name!r} lagging on shard(s) "
                    f"{info['lagging_shards']} — serving last "
                    "consistent vector")
            if info["quarantined"]:
                reasons.append(f"view {name!r} has "
                               f"{info['quarantined']} quarantined "
                               "sub-snapshot(s)")
        ok = bool(doc["ok"])
        doc["status"] = "ok" if ok else "degraded"
        doc["reasons"] = reasons
        return (200 if ok else 503), doc

    def handle_metrics(self) -> Payload:
        views = {}
        for view in self.registry.views():
            generation = view.generation
            last = view.history[-1] if view.history else None
            views[view.config.name] = {
                "config": view.config.to_dict(),
                "healthy": view.healthy,
                "generation": (generation.describe()
                               if generation is not None else None),
                "quarantined": list(view.quarantine),
                "last_apply": last.to_dict() if last is not None else None,
                "applies": [record.to_dict() for record in view.history],
            }
            adapt = view.adapt_summary()
            if adapt is not None:
                views[view.config.name]["adapt"] = adapt
        doc: Dict[str, object] = {
            "uptime_seconds": self.uptime_seconds,
            "started_at": self.started_at,
            "queries_served": self.queries_served,
            "queries_per_second": self.queries_per_second,
            "ingest_requests": self.ingest_requests,
            "ingest": self.loop.describe(),
            "spool": (self.watcher.describe()
                      if self.watcher is not None else None),
            "views": views,
        }
        if self.sharded is not None:
            # Per-shard loops/queues, the router's barrier state, and
            # per-view publish (vector) history; the "views" block
            # above describes shard 0's slice of each view.
            doc["shard"] = {
                "router": self.sharded.router.describe(),
                "front": self.sharded.describe_queue(),
                "publishes": {
                    name: self.sharded.router.publishes(name)
                    for name in self.sharded.router.names()},
            }
        return 200, doc

    def sync_registry(self) -> None:
        """Refresh point-in-time serve gauges in the metrics registry.

        Called at exposition time so scrape-shaped values (uptime,
        queue depth, per-view health) are current even between
        applies.
        """
        reg = _oreg.REGISTRY
        reg.set("repro_serve_uptime_seconds", self.uptime_seconds,
                help="monotonic seconds since the app started")
        reg.set("repro_serve_queries_per_second", self.queries_per_second,
                help="lifetime query rate")
        reg.set("repro_ingest_queue_depth", float(self.queue.depth),
                help="snapshots waiting in the ingest queue")
        reg.set("repro_ingest_loop_running",
                1.0 if self.loop.running else 0.0,
                help="1 when the single-writer apply loop is alive")
        reg.set("repro_serve_queries_served", float(self.queries_served),
                help="queries answered since start")
        reg.set("repro_serve_ingest_requests", float(self.ingest_requests),
                help="POST /ingest requests since start")
        if self.sharded is not None:
            self.sharded.sync_registry()
            failed = sum(w.loop.applies_failed
                         for w in self.sharded.workers)
        else:
            failed = self.loop.applies_failed
        reg.set("repro_ingest_applies_failed", float(failed),
                help="per-view apply attempts that raised")
        for view in self.registry.views():
            reg.set("repro_view_healthy", 1.0 if view.healthy else 0.0,
                    help="1 when the view has no quarantined snapshots",
                    view=view.config.name)

    def handle_metrics_prom(self) -> Tuple[int, str]:
        """The Prometheus text exposition of the process registry."""
        self.sync_registry()
        return 200, _oreg.REGISTRY.render_prometheus()


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`ServeApp`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = PROM_CONTENT_TYPE) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib contract
        parsed = urlparse(self.path)
        params = {key: values[-1] for key, values
                  in parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"
        if route == "/":
            status, payload = self.app.handle_root()
        elif route == "/query":
            status, payload = self.app.handle_query(params)
        elif route == "/views":
            status, payload = self.app.handle_views()
        elif route == "/healthz":
            status, payload = self.app.handle_healthz()
        elif route == "/metrics":
            if params.get("format") == "prometheus":
                status, text = self.app.handle_metrics_prom()
                self._send_text(status, text)
                return
            status, payload = self.app.handle_metrics()
        else:
            status, payload = 404, {"error": f"no route {parsed.path!r}"}
        self._send(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib contract
        parsed = urlparse(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if parsed.path.rstrip("/") == "/ingest":
            status, payload = self.app.handle_ingest(body)
        else:
            status, payload = 404, {"error": f"no route {parsed.path!r}"}
        self._send(status, payload)


class ExtractionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app reference."""

    daemon_threads = True
    verbose = False

    def __init__(self, address, app: ServeApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


def build_server(app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0) -> ExtractionServer:
    """Bind (port 0 = ephemeral) without starting the serve loop."""
    return ExtractionServer((host, port), app)


def serve_in_thread(app: ServeApp, host: str = "127.0.0.1",
                    port: int = 0
                    ) -> Tuple[ExtractionServer, threading.Thread]:
    """Start app + HTTP server on a daemon thread; returns both.

    The test-suite/embedding entry point: the caller talks to
    ``server.server_address`` and later calls ``server.shutdown()``
    then ``app.shutdown()``.
    """
    app.start()
    server = build_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread
