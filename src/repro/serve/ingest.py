"""The snapshot ingest loop: bounded queue, single writer, quarantine.

Arriving snapshots enter a bounded :class:`IngestQueue` — from the
HTTP ``/ingest`` endpoint, from a :class:`SpoolWatcher` scanning a
drop directory, or programmatically — and a single
:class:`IngestLoop` thread drains it in order, applying each snapshot
to every registered view. One writer thread is the whole concurrency
story on the write side: generation sequences stay linear per view
and the store needs no writer coordination.

Failure containment is per *(view, snapshot)*: an apply that raises is
retried once (transient faults — a torn reuse file, an OS hiccup —
heal on retry because the delta apply is all-or-nothing), and a second
failure quarantines the snapshot on that view: the view keeps serving
its previous generation, ``/healthz`` degrades, and later snapshots
keep flowing (they diff against the last *applied* snapshot, so a
poisoned snapshot cannot wedge the stream). Other views are untouched
— a fault in one program's maintenance never stalls another's.

Backpressure: ``push`` on a full queue either blocks (spool watcher)
or returns ``False`` immediately (HTTP returns 429), so a slow apply
loop surfaces as explicit producer-side pressure instead of unbounded
memory growth.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from ..corpus.snapshot import Snapshot, read_snapshot, write_snapshot
from ..corpus.store import CorpusStore, _SNAPSHOT_RE
from ..obs import registry as _oreg
from .views import ViewRegistry

#: How many recent per-snapshot lag records the loop keeps for
#: ``/metrics``.
LAG_HISTORY = 64

#: ``on_applied`` callback: ``(snapshot, view_generations,
#: enqueued_mono, skipped)`` where ``view_generations`` maps each
#: view's name to the generation it published for this snapshot (None
#: when that view quarantined it) and ``skipped`` marks the stale
#: idempotent-skip path (empty outcome map). The sharded serving tier
#: hangs its generation-vector barrier off this hook.
AppliedCallback = Callable[
    [Snapshot, Mapping[str, Optional[object]], Optional[float], bool],
    None]


def lag_series(records: Sequence[Mapping[str, object]]
               ) -> List[float]:
    """Ingest lag values for a run of per-snapshot records.

    The first record of a serving session is the bootstrap snapshot —
    applied inline before any producer enqueued it, so it has no
    enqueue timestamp and its recorded lag is ``None``. For reporting
    that must read as "zero lag", not as an undefined series start:
    verdict logic comparing or summing lags used to trip on the
    ``None``. Non-bootstrap records with ``None`` lag (wall-clock-only
    producers) are skipped rather than invented.
    """
    lags: List[float] = []
    for position, record in enumerate(records):
        lag = record.get("lag_seconds")
        if lag is None:
            if position == 0:
                lags.append(0.0)
            continue
        lags.append(float(lag))
    return lags


@dataclass(frozen=True)
class _QueueItem:
    snapshot: Snapshot
    #: Wall-clock enqueue timestamp — display/reporting only.
    enqueued_at: float
    #: Monotonic enqueue timestamp — the only clock durations (queue
    #: lag, apply seconds) are ever derived from. ``time.time()`` can
    #: step backwards under NTP slew or a manual clock reset, which
    #: used to yield negative lag values here.
    enqueued_mono: float


class IngestQueue:
    """Bounded handoff between snapshot producers and the apply loop."""

    def __init__(self, maxsize: int = 8) -> None:
        self._queue: "queue.Queue[_QueueItem]" = queue.Queue(
            maxsize=max(1, maxsize))
        self.capacity = max(1, maxsize)
        self.pushed = 0
        self.rejected = 0
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def push(self, snapshot: Snapshot, block: bool = False,
             timeout: Optional[float] = None) -> bool:
        """Enqueue a snapshot; ``False`` means backpressure hit.

        ``block=False`` (the HTTP path) fails fast on a full queue;
        ``block=True`` (the spool watcher) waits up to ``timeout``.
        """
        item = _QueueItem(snapshot=snapshot, enqueued_at=time.time(),
                          enqueued_mono=time.monotonic())
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                self.rejected += 1
            return False
        with self._lock:
            self.pushed += 1
        return True

    def pop(self, timeout: float = 0.2) -> Optional[_QueueItem]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def describe(self) -> Dict[str, object]:
        return {
            "depth": self.depth,
            "capacity": self.capacity,
            "pushed": self.pushed,
            "rejected": self.rejected,
        }


class IngestLoop:
    """Single-writer apply loop over all registered views."""

    def __init__(self, registry: ViewRegistry, ingest_queue: IngestQueue,
                 check: bool = False,
                 snapshot_store: Optional[CorpusStore] = None,
                 on_applied: Optional[AppliedCallback] = None,
                 name: str = "repro-serve-ingest") -> None:
        self.registry = registry
        self.queue = ingest_queue
        self.check = check
        #: Optional shared snapshot store: every snapshot that was
        #: applied to at least one view is persisted, so a restarted
        #: server can re-bootstrap from the same corpus.
        self.snapshot_store = snapshot_store
        #: Post-apply hook (see :data:`AppliedCallback`). Exceptions
        #: are contained (counted in ``callback_errors``) so a broken
        #: observer can never kill the apply thread.
        self.on_applied = on_applied
        self.name = name
        self.snapshots_applied = 0
        self.applies_failed = 0
        self.snapshots_quarantined = 0
        self.stop_failures = 0
        self.callback_errors = 0
        self.last_applied_index: Optional[int] = None
        self.last_apply_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.recent: Deque[Dict[str, object]] = deque(maxlen=LAG_HISTORY)

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name=self.name,
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> bool:
        """Stop the apply loop; ``True`` when the thread actually exited.

        The old signature returned ``None`` and silently dropped the
        thread handle even when ``join`` timed out — a wedged apply
        (e.g. a blocked apply hook) looked like a clean shutdown. Now a
        failed join keeps the handle, counts a ``stop_failures``, warns
        through the metrics registry, and returns ``False`` so callers
        can escalate.
        """
        self._stop.set()
        if self._thread is None:
            return True
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            self.stop_failures += 1
            if _oreg.ENABLED:
                _oreg.REGISTRY.inc(
                    "repro_serve_stop_failures_total",
                    help="stop() calls whose worker thread failed to "
                         "exit within the timeout", component="ingest")
            return False
        self._thread = None
        return True

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the queue is empty and the last item applied."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.depth == 0 and not self._busy:
                return True
            time.sleep(0.02)
        return False

    # -- the loop ---------------------------------------------------------

    _busy = False

    def _run(self) -> None:
        while not self._stop.is_set():
            item = self.queue.pop(timeout=0.2)
            if item is None:
                continue
            self._busy = True
            try:
                self.apply_one(item.snapshot,
                               enqueued_at=item.enqueued_at,
                               enqueued_mono=item.enqueued_mono)
            finally:
                self._busy = False

    def apply_one(self, snapshot: Snapshot,
                  enqueued_at: Optional[float] = None,
                  enqueued_mono: Optional[float] = None) -> bool:
        """Apply one snapshot to every view (also callable inline).

        Returns True when every view applied it cleanly; False when at
        least one view quarantined it. Per-view failures never
        propagate — serving continues on the previous generation.

        ``enqueued_at`` (wall) is for display; ``enqueued_mono``
        (monotonic) is what lag is computed from. Callers that only
        pass a wall timestamp get no lag rather than a wrong one.
        """
        if (self.last_applied_index is not None
                and snapshot.index <= self.last_applied_index):
            # Idempotency guard: a re-pushed or stale snapshot is
            # dropped instead of quarantining every view on the
            # monotonicity check.
            self.recent.append({
                "snapshot_index": snapshot.index,
                "ok": True,
                "skipped": "stale",
                "apply_seconds": 0.0,
                "lag_seconds": None,
            })
            self._notify_applied(snapshot, {}, enqueued_mono, True)
            return True
        # Durations from the monotonic clock only; time.time() is kept
        # strictly for the displayed last_apply_at timestamp. (An NTP
        # step between start and end used to make apply_seconds — and
        # lag — negative.)
        start_mono = time.monotonic()
        all_ok = True
        lags: List[float] = []
        outcomes: Dict[str, Optional[object]] = {}
        for view in self.registry.views():
            ok = self._apply_with_retry(view, snapshot, enqueued_mono)
            all_ok = all_ok and ok
            generation = view.generation
            outcomes[view.config.name] = (
                generation if ok and generation is not None
                and generation.snapshot_index == snapshot.index else None)
            if ok and view.history:
                lag = view.history[-1].lag_seconds
                if lag is not None:
                    lags.append(lag)
        if all_ok:
            self.snapshots_applied += 1
            self.last_applied_index = snapshot.index
        else:
            self.snapshots_quarantined += 1
        self.last_apply_at = time.time()
        apply_seconds = time.monotonic() - start_mono
        lag_seconds = max(lags) if lags else None
        self.recent.append({
            "snapshot_index": snapshot.index,
            "ok": all_ok,
            "apply_seconds": apply_seconds,
            "lag_seconds": lag_seconds,
        })
        if _oreg.ENABLED:
            kind = "applied" if all_ok else "quarantined"
            _oreg.REGISTRY.inc(
                "repro_ingest_snapshots_total",
                help="snapshots through the ingest loop by outcome",
                outcome=kind)
            _oreg.REGISTRY.observe(
                "repro_ingest_apply_seconds", apply_seconds,
                help="wall seconds to apply one snapshot to all views")
            if lag_seconds is not None:
                _oreg.REGISTRY.observe(
                    "repro_ingest_lag_seconds", lag_seconds,
                    help="enqueue-to-applied lag (monotonic clock)")
            _oreg.REGISTRY.set(
                "repro_ingest_queue_depth", float(self.queue.depth),
                help="snapshots waiting in the ingest queue")
        if all_ok and self.snapshot_store is not None:
            try:
                self.snapshot_store.append(snapshot)
            except (ValueError, OSError):
                pass  # persistence is best-effort, serving is the job
        self._notify_applied(snapshot, outcomes, enqueued_mono, False)
        return all_ok

    def _notify_applied(self, snapshot: Snapshot,
                        outcomes: Mapping[str, Optional[object]],
                        enqueued_mono: Optional[float],
                        skipped: bool) -> None:
        if self.on_applied is None:
            return
        try:
            self.on_applied(snapshot, outcomes, enqueued_mono, skipped)
        except Exception:  # noqa: BLE001 - observer isolation
            self.callback_errors += 1

    def _apply_with_retry(self, view, snapshot: Snapshot,
                          enqueued_mono: Optional[float]) -> bool:
        for attempt in (1, 2):
            try:
                record = view.apply_snapshot(snapshot, check=self.check)
                if enqueued_mono is not None:
                    # Monotonic difference: non-negative by
                    # construction, immune to wall-clock steps.
                    record.lag_seconds = max(
                        0.0, record.applied_mono - enqueued_mono)
                return True
            except Exception as exc:  # noqa: BLE001 - quarantine boundary
                view.last_error = f"{type(exc).__name__}: {exc}"
                self.applies_failed += 1
                if attempt == 2:
                    view.quarantine.append({
                        "snapshot_index": snapshot.index,
                        "error": view.last_error,
                        "at": time.time(),
                    })
        return False

    def describe(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "check": self.check,
            "queue": self.queue.describe(),
            "snapshots_applied": self.snapshots_applied,
            "snapshots_quarantined": self.snapshots_quarantined,
            "applies_failed": self.applies_failed,
            "stop_failures": self.stop_failures,
            "callback_errors": self.callback_errors,
            "last_applied_index": self.last_applied_index,
            "last_apply_at": self.last_apply_at,
            "recent": list(self.recent),
        }


def drop_snapshot(spool_dir: str, snapshot: Snapshot) -> str:
    """Atomically drop a snapshot into a spool directory.

    The spool write protocol: serialize to ``snapshot_NNNN.dat.tmp``
    in the *same* directory, then ``os.replace`` onto the final name.
    The rename is atomic on POSIX, so a watcher can never observe a
    half-written ``snapshot_NNNN.dat`` — it either sees the whole file
    or no file. ``*.tmp``/``*.part`` names never match the snapshot
    pattern, so in-flight files from producers that follow the
    protocol are invisible to :meth:`SpoolWatcher.scan_once`.

    Returns the final path. Producers that cannot use this helper must
    follow the same write-then-rename discipline; the watcher also
    validates each file's header page count on read, so even a torn
    direct write is skipped (and retried next sweep) instead of being
    ingested short.
    """
    os.makedirs(spool_dir, exist_ok=True)
    final = os.path.join(spool_dir, f"snapshot_{snapshot.index:04d}.dat")
    tmp = final + ".tmp"
    write_snapshot(snapshot, tmp)
    os.replace(tmp, final)
    return final


class SpoolWatcher:
    """Feeds the queue from ``snapshot_NNNN.dat`` files in a directory.

    The deployment-friendly producer: a crawler (or ``repro corpus``)
    drops snapshot files into the spool; the watcher picks them up in
    index order, pushes them with *blocking* backpressure, and moves
    each consumed file to ``<spool>/done/`` so a restart never
    re-ingests. Files newer than the last pushed index are the only
    candidates, so out-of-order drops wait until their predecessors
    arrive.

    The watcher only needs ``push(snapshot, block=, timeout=)`` from
    its queue, so it feeds a plain :class:`IngestQueue` or the sharded
    front door (:class:`repro.shard.ShardedDeployment`) unchanged —
    snapshot-shard routing happens behind that push.

    Producers should write through :func:`drop_snapshot` (tmp file +
    ``os.replace``); ``*.tmp``/``*.part`` names are ignored by the
    scan. As defense in depth against producers that write the final
    name directly, every candidate file's header page count is
    validated by :func:`~repro.corpus.snapshot.read_snapshot`, so a
    torn file parses as an error (skipped, retried next sweep) rather
    than as a silently truncated snapshot.
    """

    def __init__(self, spool_dir: str, ingest_queue: IngestQueue,
                 poll_seconds: float = 0.5) -> None:
        self.spool_dir = spool_dir
        self.queue = ingest_queue
        self.poll_seconds = poll_seconds
        self.done_dir = os.path.join(spool_dir, "done")
        os.makedirs(self.spool_dir, exist_ok=True)
        os.makedirs(self.done_dir, exist_ok=True)
        self.files_ingested = 0
        #: Candidate files that failed to parse (torn/truncated) and
        #: were left for the next sweep.
        self.files_deferred = 0
        self.stop_failures = 0
        self.last_index: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-spool",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> bool:
        """Stop the watcher; ``True`` when the thread actually exited.

        Mirrors :meth:`IngestLoop.stop`: a join that times out no
        longer masquerades as a clean shutdown.
        """
        self._stop.set()
        if self._thread is None:
            return True
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            self.stop_failures += 1
            if _oreg.ENABLED:
                _oreg.REGISTRY.inc(
                    "repro_serve_stop_failures_total",
                    help="stop() calls whose worker thread failed to "
                         "exit within the timeout", component="spool")
            return False
        self._thread = None
        return True

    def scan_once(self) -> int:
        """One sweep: push every ready spool file, oldest index first.

        In-flight ``*.tmp``/``*.part`` files don't match the snapshot
        pattern and are never candidates; a candidate that fails to
        parse (torn write by a protocol-violating producer) is
        deferred to the next sweep, not consumed.
        """
        entries = []
        for name in os.listdir(self.spool_dir):
            m = _SNAPSHOT_RE.match(name)
            if m:
                entries.append((int(m.group(1)), name))
        pushed = 0
        for index, name in sorted(entries):
            if self.last_index is not None and index <= self.last_index:
                continue
            path = os.path.join(self.spool_dir, name)
            try:
                snapshot = read_snapshot(path)
            except (OSError, ValueError, KeyError):
                self.files_deferred += 1
                continue  # partially written; retry next sweep
            while not self.queue.push(snapshot, block=True, timeout=0.5):
                if self._stop.is_set():
                    return pushed
            os.replace(path, os.path.join(self.done_dir, name))
            self.last_index = index
            self.files_ingested += 1
            pushed += 1
        return pushed

    def _run(self) -> None:
        while not self._stop.is_set():
            self.scan_once()
            self._stop.wait(self.poll_seconds)

    def describe(self) -> Dict[str, object]:
        return {
            "spool_dir": self.spool_dir,
            "running": self.running,
            "files_ingested": self.files_ingested,
            "files_deferred": self.files_deferred,
            "stop_failures": self.stop_failures,
            "last_index": self.last_index,
        }
