"""WS: a winnowing-fingerprint matcher (pluggable extra matcher).

The paper notes more matchers can be plugged in as they become
available; WS demonstrates the interface with a classic third design
point between UD and ST:

* UD (diff) — fast, aligned overlaps only;
* ST (suffix automaton) — complete, including moves, but builds a
  structure over the q region per call;
* WS (winnowing, Schleimer et al. 2003) — fingerprint both regions
  with the k-gram/window winnowing scheme, join fingerprints, and
  extend each anchor to a maximal equal segment. Finds moved blocks
  like ST at near-diff cost, but can miss overlaps shorter than the
  fingerprint window.

WS is not part of the default optimizer plan space (which stays the
paper's {DN, UD, ST, RU}); it is available to explicit
:class:`~repro.reuse.engine.PlanAssignment`s and to the matcher
trade-off benchmark.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import Matcher

WS_NAME = "WS"


def winnow_fingerprints(text: str, k: int, window: int
                        ) -> Dict[int, List[int]]:
    """Winnowing: the minimal k-gram hash of every ``window``-sized
    hash window, mapped to its k-gram start positions."""
    n = len(text)
    if n < k:
        return {}
    encoded = text.encode("utf-8", "ignore")
    if len(encoded) < k:
        return {}
    hashes = [zlib.crc32(encoded[i:i + k])
              for i in range(len(encoded) - k + 1)]
    out: Dict[int, List[int]] = {}
    last_pick = -1
    for w_start in range(0, max(1, len(hashes) - window + 1)):
        w_end = min(len(hashes), w_start + window)
        best = w_start
        for i in range(w_start, w_end):
            if hashes[i] <= hashes[best]:
                best = i
        if best != last_pick:
            out.setdefault(hashes[best], []).append(best)
            last_pick = best
    return out


class WinnowingMatcher(Matcher):
    """Fingerprint-anchored maximal-segment matcher."""

    name = WS_NAME

    def __init__(self, k: int = 12, window: int = 8,
                 max_anchors_per_hash: int = 4) -> None:
        if k < 2 or window < 1:
            raise ValueError("need k >= 2 and window >= 1")
        self.k = k
        self.window = window
        self.max_anchors = max_anchors_per_hash

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        p_body = p_text[p_region.start:p_region.end]
        q_body = q_text[q_region.start:q_region.end]
        if not p_body or not q_body:
            return []
        q_prints = winnow_fingerprints(q_body, self.k, self.window)
        if not q_prints:
            return []
        p_prints = winnow_fingerprints(p_body, self.k, self.window)
        segments: List[MatchSegment] = []
        claimed: Dict[int, List[Tuple[int, int]]] = {}
        for h, p_positions in p_prints.items():
            q_positions = q_prints.get(h)
            if not q_positions:
                continue
            for p_pos in p_positions[:self.max_anchors]:
                for q_pos in q_positions[:self.max_anchors]:
                    shift = p_pos - q_pos
                    if self._already_claimed(claimed, shift, p_pos):
                        continue
                    seg = self._extend(p_body, q_body, p_pos, q_pos)
                    if seg is None:
                        continue
                    claimed.setdefault(shift, []).append(
                        (seg[0], seg[0] + seg[2]))
                    segments.append(MatchSegment(
                        p_region.start + seg[0],
                        q_region.start + seg[1], seg[2]))
        return segments

    @staticmethod
    def _already_claimed(claimed: Dict[int, List[Tuple[int, int]]],
                         shift: int, p_pos: int) -> bool:
        for start, end in claimed.get(shift, ()):
            if start <= p_pos < end:
                return True
        return False

    def _extend(self, p_body: str, q_body: str, p_pos: int,
                q_pos: int) -> "Tuple[int, int, int] | None":
        """Maximal equal run around an anchor (relative coords)."""
        if p_body[p_pos] != q_body[q_pos]:
            return None
        start_p, start_q = p_pos, q_pos
        while (start_p > 0 and start_q > 0
               and p_body[start_p - 1] == q_body[start_q - 1]):
            start_p -= 1
            start_q -= 1
        end_p, end_q = p_pos, q_pos
        limit_p, limit_q = len(p_body), len(q_body)
        while (end_p < limit_p and end_q < limit_q
               and p_body[end_p] == q_body[end_q]):
            end_p += 1
            end_q += 1
        length = end_p - start_p
        if length < self.k:
            return None
        return (start_p, start_q, length)
