"""WS: a winnowing-fingerprint matcher (pluggable extra matcher).

The paper notes more matchers can be plugged in as they become
available; WS demonstrates the interface with a classic third design
point between UD and ST:

* UD (diff) — fast, aligned overlaps only;
* ST (suffix automaton) — complete, including moves, but builds a
  structure over the q region per call;
* WS (winnowing, Schleimer et al. 2003) — fingerprint both regions
  with the k-gram/window winnowing scheme, join fingerprints, and
  extend each anchor to a maximal equal segment. Finds moved blocks
  like ST at near-diff cost, but can miss overlaps shorter than the
  fingerprint window.

WS is not part of the default optimizer plan space (which stays the
paper's {DN, UD, ST, RU}); it is available to explicit
:class:`~repro.reuse.engine.PlanAssignment`s and to the matcher
trade-off benchmark.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from ..text import tokens as _tokens
from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import Matcher

WS_NAME = "WS"

_COST_MODEL = None


def _cost_model():
    # Lazy: optimizer -> cost -> engine -> matchers would cycle.
    global _COST_MODEL
    if _COST_MODEL is None:
        from ..optimizer.kernels import DEFAULT_KERNEL_MODEL
        _COST_MODEL = DEFAULT_KERNEL_MODEL
    return _COST_MODEL


def winnow_fingerprints(text: str, k: int, window: int
                        ) -> Dict[int, List[int]]:
    """Winnowing: the minimal k-gram hash of every ``window``-sized
    hash window, mapped to its k-gram start positions."""
    n = len(text)
    if n < k:
        return {}
    encoded = text.encode("utf-8", "ignore")
    if len(encoded) < k:
        return {}
    hashes = [zlib.crc32(encoded[i:i + k])
              for i in range(len(encoded) - k + 1)]
    out: Dict[int, List[int]] = {}
    last_pick = -1
    for w_start in range(0, max(1, len(hashes) - window + 1)):
        w_end = min(len(hashes), w_start + window)
        best = w_start
        for i in range(w_start, w_end):
            if hashes[i] <= hashes[best]:
                best = i
        if best != last_pick:
            out.setdefault(hashes[best], []).append(best)
            last_pick = best
    return out


def winnow_fingerprints_np(text: str, k: int, window: int,
                           np) -> Dict[int, List[int]]:
    """Vectorized twin of :func:`winnow_fingerprints`.

    Identical output by construction: the CRC-32 k-gram hashes are
    bit-exact (:func:`repro.text.tokens.crc32_kgrams`), the
    rightmost-minimum window pick is reproduced by taking argmin over
    each *reversed* window (argmin returns the first minimum, i.e. the
    original window's last), and winnowing picks are non-decreasing in
    position, so dropping consecutive duplicates equals the reference
    loop's ``best != last_pick`` dedupe. Dict insertion order — which
    downstream anchor enumeration depends on — follows ascending pick
    position, same as the reference.
    """
    n = len(text)
    if n < k:
        return {}
    encoded = text.encode("utf-8", "ignore")
    if len(encoded) < k:
        return {}
    hashes = _tokens.crc32_kgrams(encoded, k, np)
    nh = int(hashes.shape[0])
    if nh <= window:
        best = np.array([nh - 1 - int(hashes[::-1].argmin())])
    else:
        w = np.lib.stride_tricks.sliding_window_view(hashes, window)
        best = (window - 1 - np.argmin(w[:, ::-1], axis=1)
                + np.arange(nh - window + 1))
    keep = np.empty(best.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = best[1:] != best[:-1]
    out: Dict[int, List[int]] = {}
    for b in best[keep].tolist():
        out.setdefault(int(hashes[b]), []).append(b)
    return out


class WinnowingMatcher(Matcher):
    """Fingerprint-anchored maximal-segment matcher.

    ``kernel`` gates the vectorized winnowing path
    (:func:`winnow_fingerprints_np`): the O(n * window) fingerprint
    scan dominates WS's cost and vectorizes wholesale; anchor
    extension stays pure Python (it is linear in matched text). Both
    fingerprint paths are parity-pinned to identical dicts.
    """

    name = WS_NAME
    CONFIG_ATTRS = ("k", "window", "max_anchors")
    STATE_ATTRS = ("kernel",)

    def __init__(self, k: int = 12, window: int = 8,
                 max_anchors_per_hash: int = 4,
                 kernel: str = "auto") -> None:
        if k < 2 or window < 1:
            raise ValueError("need k >= 2 and window >= 1")
        if kernel not in ("auto", "force", "off"):
            raise ValueError(f"unknown kernel mode: {kernel!r}")
        self.k = k
        self.window = window
        self.max_anchors = max_anchors_per_hash
        self.kernel = kernel

    def _fingerprints(self, body: str, np) -> Dict[int, List[int]]:
        if np is not None:
            return winnow_fingerprints_np(body, self.k, self.window, np)
        return winnow_fingerprints(body, self.k, self.window)

    def _want_kernel(self, n_chars: int) -> bool:
        if self.kernel == "off" or not _tokens.numpy_enabled():
            return False
        if self.kernel == "force":
            return True
        return _cost_model().use_ws_kernel(n_chars)

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        p_body = p_text[p_region.start:p_region.end]
        q_body = q_text[q_region.start:q_region.end]
        if not p_body or not q_body:
            return []
        np = (_tokens.get_numpy()
              if self._want_kernel(len(p_body) + len(q_body)) else None)
        q_prints = self._fingerprints(q_body, np)
        if not q_prints:
            return []
        p_prints = self._fingerprints(p_body, np)
        segments: List[MatchSegment] = []
        claimed: Dict[int, List[Tuple[int, int]]] = {}
        for h, p_positions in p_prints.items():
            q_positions = q_prints.get(h)
            if not q_positions:
                continue
            for p_pos in p_positions[:self.max_anchors]:
                for q_pos in q_positions[:self.max_anchors]:
                    shift = p_pos - q_pos
                    if self._already_claimed(claimed, shift, p_pos):
                        continue
                    seg = self._extend(p_body, q_body, p_pos, q_pos)
                    if seg is None:
                        continue
                    claimed.setdefault(shift, []).append(
                        (seg[0], seg[0] + seg[2]))
                    segments.append(MatchSegment(
                        p_region.start + seg[0],
                        q_region.start + seg[1], seg[2]))
        return segments

    @staticmethod
    def _already_claimed(claimed: Dict[int, List[Tuple[int, int]]],
                         shift: int, p_pos: int) -> bool:
        for start, end in claimed.get(shift, ()):
            if start <= p_pos < end:
                return True
        return False

    def _extend(self, p_body: str, q_body: str, p_pos: int,
                q_pos: int) -> "Tuple[int, int, int] | None":
        """Maximal equal run around an anchor (relative coords)."""
        if p_body[p_pos] != q_body[q_pos]:
            return None
        start_p, start_q = p_pos, q_pos
        while (start_p > 0 and start_q > 0
               and p_body[start_p - 1] == q_body[start_q - 1]):
            start_p -= 1
            start_q -= 1
        end_p, end_q = p_pos, q_pos
        limit_p, limit_q = len(p_body), len(q_body)
        while (end_p < limit_p and end_q < limit_q
               and p_body[end_p] == q_body[end_q]):
            end_p += 1
            end_q += 1
        length = end_p - start_p
        if length < self.k:
            return None
        return (start_p, start_q, length)
