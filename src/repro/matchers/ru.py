"""The RU matcher: recycle matching work across IE units.

While an execution tree runs on a page pair, every segment found by an
ST or UD matcher is recorded in the page pair's
:class:`~repro.matchers.base.MatchCache`. When a later IE unit must
match a region R' of p against a region S' of q, RU simply intersects
the recorded segments with R' (p side) and S' (q side) — no text is
scanned at all. Since IE units higher in the tree match successively
smaller regions carved out of regions lower units already matched, RU
usually recovers everything an expensive matcher would find, at
negligible cost (Section 5.4).

RU with an empty cache behaves exactly like DN.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import RU_NAME, MatchCache, Matcher


class RUMatcher(Matcher):
    """Intersects previously recorded match segments with new regions."""

    name = RU_NAME
    # ``cache`` is mutable shared state — the very reason RU is absent
    # from ``repro.fastpath.memo.MEMOIZABLE`` and its config_key is
    # never used to key cached results. Classified so the attribute
    # sweep in tests/test_matchcore.py stays exhaustive.
    STATE_ATTRS = ("cache",)

    def __init__(self, cache: MatchCache) -> None:
        self.cache = cache

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        out: List[MatchSegment] = []
        for seg in self.cache.segments:
            trimmed = seg.trim_to_p(p_region)
            if trimmed is None:
                continue
            trimmed = trimmed.trim_to_q(q_region)
            if trimmed is None:
                continue
            out.append(trimmed)
        return out

    def match_many(self, p_text: str, p_region: Interval, q_text: str,
                   candidates: Dict[int, Interval]) -> List[MatchSegment]:
        """Trim the p side once per region, then fan out over the
        candidates' q sides — the hot path when an upper IE unit
        matches many small regions against many recorded regions."""
        p_trimmed = [
            seg for seg in
            (s.trim_to_p(p_region) for s in self.cache.segments)
            if seg is not None
        ]
        if not p_trimmed:
            return []
        out: List[MatchSegment] = []
        for itid, q_region in candidates.items():
            q_start, q_end = q_region.start, q_region.end
            for seg in p_trimmed:
                # Cheap reject before constructing trimmed segments.
                if seg.q_start >= q_end or seg.q_start + seg.length <= q_start:
                    continue
                trimmed = seg.trim_to_q(q_region)
                if trimmed is not None:
                    out.append(replace(trimmed, q_itid=itid))
        return out
