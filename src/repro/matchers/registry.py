"""Matcher construction helpers."""

from __future__ import annotations

from typing import Optional

from .base import DN_NAME, MATCHER_NAMES, RU_NAME, ST_NAME, UD_NAME, MatchCache, Matcher
from .dn import DNMatcher
from .ru import RUMatcher
from .st import STMatcher
from .ud import UDMatcher
from .ws import WS_NAME, WinnowingMatcher


def make_matcher(name: str, cache: Optional[MatchCache] = None,
                 min_length: int = 12, max_d: int = 0,
                 automatons: Optional[object] = None,
                 tokens: Optional[object] = None,
                 kernel: str = "auto") -> Matcher:
    """Instantiate a matcher by name.

    RU requires the page pair's :class:`MatchCache`; the others ignore
    it. ``min_length`` tunes ST's emission threshold, ``max_d`` caps
    UD's explored edit distance (0 = unlimited). ``automatons`` is an
    optional per-page-pair suffix-automaton cache handed to ST (see
    :class:`repro.fastpath.memo.AutomatonCache`). ``tokens`` is an
    optional per-page-pair :class:`repro.text.tokens.TokenCache` for
    the vectorized kernels, and ``kernel`` their mode
    (``"auto"``/``"force"``/``"off"`` — results are identical either
    way, see each matcher's kernel notes).
    """
    if name == DN_NAME:
        return DNMatcher()
    if name == UD_NAME:
        return UDMatcher(max_d=max_d, kernel=kernel)
    if name == ST_NAME:
        return STMatcher(min_length=min_length, automatons=automatons,
                         tokens=tokens, kernel=kernel)
    if name == RU_NAME:
        if cache is None:
            raise ValueError("RU matcher needs a MatchCache")
        return RUMatcher(cache)
    if name == WS_NAME:
        return WinnowingMatcher(kernel=kernel)
    raise ValueError(f"unknown matcher {name!r}; choose from "
                     f"{MATCHER_NAMES + (WS_NAME,)}")
