"""The ST matcher: suffix-structure matching that finds moved text.

The paper's ST matcher is suffix-tree based and finds *all* matching
regions in time linear in the two region lengths. We implement the
equivalent with a suffix automaton of the q-region: streaming the
p-region through the automaton yields, for every position of p, the
longest substring ending there that occurs anywhere in q (plus one of
its q end positions). Local maxima of that profile become candidate
match segments — including text blocks that moved, which the
diff-based UD matcher cannot see. It is the most complete matcher and
also the most expensive one, exactly the trade-off the optimizer
weighs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..text import tokens as _tokens
from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import ST_NAME, Matcher

_COST_MODEL = None


def _cost_model():
    # Imported lazily: optimizer -> cost -> engine -> matchers would
    # cycle at module load.
    global _COST_MODEL
    if _COST_MODEL is None:
        from ..optimizer.kernels import DEFAULT_KERNEL_MODEL
        _COST_MODEL = DEFAULT_KERNEL_MODEL
    return _COST_MODEL


class SuffixAutomaton:
    """Suffix automaton with first-occurrence end positions."""

    __slots__ = ("next", "link", "length", "first_end", "last")

    def __init__(self, text: str) -> None:
        self.next: List[Dict[str, int]] = [{}]
        self.link: List[int] = [-1]
        self.length: List[int] = [0]
        self.first_end: List[int] = [-1]
        self.last = 0
        for i, ch in enumerate(text):
            self._extend(ch, i)

    def _new_state(self, length: int, first_end: int) -> int:
        self.next.append({})
        self.link.append(-1)
        self.length.append(length)
        self.first_end.append(first_end)
        return len(self.next) - 1

    def _extend(self, ch: str, pos: int) -> None:
        cur = self._new_state(self.length[self.last] + 1, pos)
        p = self.last
        while p != -1 and ch not in self.next[p]:
            self.next[p][ch] = cur
            p = self.link[p]
        if p == -1:
            self.link[cur] = 0
        else:
            q = self.next[p][ch]
            if self.length[p] + 1 == self.length[q]:
                self.link[cur] = q
            else:
                clone = self._new_state(self.length[p] + 1,
                                        self.first_end[q])
                self.next[clone] = dict(self.next[q])
                self.link[clone] = self.link[q]
                while p != -1 and self.next[p].get(ch) == q:
                    self.next[p][ch] = clone
                    p = self.link[p]
                self.link[q] = clone
                self.link[cur] = clone
        self.last = cur


def probe_peaks(sam: SuffixAutomaton, p_body: str,
                min_length: int) -> Iterator[Tuple[int, int, int]]:
    """Reusable probe path: stream ``p_body`` through a (possibly
    prebuilt) automaton and yield the match-profile peaks.

    Yields ``(p_end_rel, length, state)`` for every local maximum of
    the longest-match profile with ``length >= min_length``. Both
    :meth:`STMatcher.match` and statistics probes (e.g. the optimizer
    sampling match coverage) share this loop, so a cached automaton
    can be probed repeatedly without rebuilding or materializing
    segments.
    """
    state = 0
    length = 0
    nxt = sam.next
    link = sam.link
    lengths = sam.length
    prev_len = 0
    for i, ch in enumerate(p_body):
        if ch in nxt[state]:
            state = nxt[state][ch]
            length += 1
        else:
            # The peak that just ended at i - 1.
            if prev_len >= min_length:
                yield (i - 1, prev_len, state)
            while state != -1 and ch not in nxt[state]:
                state = link[state]
            if state == -1:
                state = 0
                length = 0
            else:
                length = lengths[state] + 1
                state = nxt[state][ch]
        prev_len = length
    if prev_len >= min_length:
        yield (len(p_body) - 1, prev_len, state)


def st_kernel(pa, qa, min_length: int, np, q_index=None,
              pair_cap_factor: int = 8
              ) -> Optional[List[Tuple[int, int, int]]]:
    """Vectorized twin of build-automaton-then-:func:`probe_peaks`.

    ``pa`` / ``qa`` are the two regions' code points as uint64 arrays.
    Returns ``(p_end_rel, length, q_end_rel)`` per profile peak — the
    exact tuples the automaton path produces (``q_end_rel`` equals the
    automaton's first-occurrence end), in the same order — or ``None``
    when the anchor-pair bound is exceeded and the caller should fall
    back to the automaton.

    The algorithm anchors on k-grams (k = ``min_length``): every
    (p, q) position pair sharing a k-gram starts or continues a match
    diagonal. A peak of the longest-match profile has length >= k, so
    it contains at least one anchor, and along a diagonal run of
    anchors the match length at the chain's first anchor is exactly k
    (one character earlier would contradict chain-headness), growing
    by 1 per step — so per-position profile values come straight from
    chain offsets, no character walks. Anchor candidates are found via
    a rolling hash and then *verified by exact character comparison*,
    so hash collisions are filtered out and the result is exact. For
    each p position the automaton reports the minimal q end of the
    longest match; sorting candidates by (position, -length, q end)
    and keeping the first reproduces that choice.

    ``q_index``, when given, is ``(sorted_hashes, sort_order,
    run_end)`` for ``qa`` (see
    :meth:`repro.text.tokens.TokenCache.st_index`) — the batched
    per-q-region structure shared across candidate sets.
    """
    k = min_length
    n = int(pa.shape[0])
    m = int(qa.shape[0])
    if n < k or m < k:
        return []
    hp = _tokens.kgram_hashes(pa, k, np)
    if q_index is not None:
        hq_sorted, order, run_end = q_index
    else:
        hq = _tokens.kgram_hashes(qa, k, np)
        order = np.argsort(hq, kind="stable")
        hq_sorted = hq[order]
        run_end = np.searchsorted(hq_sorted, hq_sorted, side="right")
    # One binary search: the precomputed equal-run ends stand in for
    # the usual side="right" pass.
    mq = int(hq_sorted.shape[0])
    lo = np.searchsorted(hq_sorted, hp, side="left")
    safe = np.minimum(lo, mq - 1)
    counts = np.where(hq_sorted[safe] == hp, run_end[safe] - lo, 0)
    total = int(counts.sum())
    if total == 0:
        return []
    if total > pair_cap_factor * (n + m) + 4096:
        # Highly repetitive regions blow up the anchor-pair set; the
        # automaton's O(n + m) path is the better tool there.
        return None
    offs = np.concatenate(([0], np.cumsum(counts)[:-1]))
    idx = np.arange(total) - np.repeat(offs, counts) + np.repeat(lo, counts)
    p_pos = np.repeat(np.arange(n - k + 1), counts)
    e_pos = order[idx]
    i_end = p_pos + k - 1
    e_end = e_pos + k - 1
    d = i_end - e_end
    # Anchor pairs have unique (d, i_end), so a packed single key sorts
    # identically to lexsort((i_end, d)) at a fraction of the cost;
    # regions too large to pack take the general lexsort.
    small = (n + m) < (1 << 20)
    if small:
        srt = np.argsort((d + m) * n + i_end)
    else:
        srt = np.lexsort((i_end, d))
    i_s = i_end[srt]
    e_s = e_end[srt]
    d_s = d[srt]

    def chains(i_s, d_s, total):
        newchain = np.empty(total, dtype=bool)
        newchain[0] = True
        newchain[1:] = (d_s[1:] != d_s[:-1]) | (i_s[1:] != i_s[:-1] + 1)
        head = np.maximum.accumulate(
            np.where(newchain, np.arange(total), 0))
        return newchain, head

    newchain, head = chains(i_s, d_s, total)
    # Verify anchors chain-wise: a diagonal chain asserts one
    # contiguous p-range equals one contiguous q-range, so comparing
    # each chain's covered characters once replaces the k-wide
    # per-pair compare (whose gather cost dominated the kernel).
    # Every covered position lies in some pair's window, so
    # all-positions-equal <=> all pairs verify.
    cs = np.nonzero(newchain)[0]
    span = np.empty(cs.size, dtype=np.int64)
    span[:-1] = cs[1:] - cs[:-1]
    span[-1] = total - cs[-1]
    span += k - 1  # pairs per chain -> covered chars per chain
    starts = i_s[cs] - (k - 1)
    offc = np.concatenate(([0], np.cumsum(span)[:-1]))
    covered = int(span.sum())
    pos = (np.arange(covered) - np.repeat(offc, span)
           + np.repeat(starts, span))
    eqc = pa[pos] == qa[pos - np.repeat(d_s[cs], span)]
    if not eqc.all():
        # Rare path (hash collision): score true-runs per position,
        # keep only pairs whose whole window verifies, rebuild chains.
        idxc = np.arange(covered)
        base = np.repeat(offc, span)
        lastbad = np.maximum.accumulate(np.where(eqc, -1, idxc))
        run = idxc - np.maximum(lastbad, base - 1)
        cid = np.cumsum(newchain) - 1
        cpos = offc[cid] + (i_s - i_s[head]) + (k - 1)
        okp = run[cpos] >= k
        i_s = i_s[okp]
        e_s = e_s[okp]
        d_s = d_s[okp]
        total = int(i_s.size)
        if total == 0:
            return []
        newchain, head = chains(i_s, d_s, total)
    D = k + (i_s - i_s[head])
    # Packed twin of lexsort((e_s, -D, i_s)): unique (i_s, e_s) per
    # pair keeps the ordering deterministic.
    if small:
        cap = np.int64((1 << 20) - 1)
        ord2 = np.argsort(
            (i_s << np.int64(40)) | ((cap - D) << np.int64(20)) | e_s)
    else:
        ord2 = np.lexsort((e_s, -D, i_s))
    i2 = i_s[ord2]
    first = np.empty(total, dtype=bool)
    first[0] = True
    first[1:] = i2[1:] != i2[:-1]
    sel = ord2[first]
    fi = i2[first]
    fe = e_s[sel]
    fD = D[sel]
    ms = np.zeros(n, dtype=np.int64)
    ms[fi] = fD
    nxt = np.empty(n, dtype=np.int64)
    nxt[:-1] = ms[1:]
    nxt[-1] = -1
    # Positions with ms < k read as 0 here; that proxy preserves the
    # peak condition ms[i+1] != ms[i] + 1 exactly for peaks >= k.
    peak_is = np.nonzero((ms >= k) & (nxt != ms + 1))[0]
    if peak_is.size == 0:
        return []
    pos = np.searchsorted(fi, peak_is)
    return [(int(i), int(v), int(e))
            for i, v, e in zip(peak_is, ms[peak_is], fe[pos])]


class STMatcher(Matcher):
    """All-maximal-common-substring matcher via a suffix automaton.

    ``min_length`` suppresses matches too short to enable any reuse
    (a match shorter than ``2β + 1`` has an empty copy zone for every
    unit); the engine picks it per unit from the unit's β.

    ``automatons``, when given, is a per-page-pair cache with a
    ``get(q_text, q_region) -> SuffixAutomaton`` method (see
    :class:`repro.fastpath.memo.AutomatonCache`): building the
    automaton dominates ST's cost, and within one page pair the same
    q-region recurs across input rows and units, so a cached automaton
    is reused instead of rebuilt. The automaton is read-only after
    construction, so reuse is behaviour-preserving by construction.

    ``kernel`` selects the vectorized :func:`st_kernel` path:
    ``"auto"`` (default) uses the optimizer's
    :class:`~repro.optimizer.kernels.KernelCostModel` per region size,
    ``"force"`` always uses it (tests), ``"off"`` never does. The
    kernel is parity-pinned to the automaton path, only speed differs.
    ``tokens``, a :class:`repro.text.tokens.TokenCache`, interns each
    page's code-point array and the per-q-region k-gram index once so
    candidate sets and sibling units share them.
    """

    name = ST_NAME
    CONFIG_ATTRS = ("min_length",)
    STATE_ATTRS = ("automatons", "tokens", "kernel")

    def __init__(self, min_length: int = 12,
                 automatons: Optional[object] = None,
                 tokens: Optional["_tokens.TokenCache"] = None,
                 kernel: str = "auto") -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        if kernel not in ("auto", "force", "off"):
            raise ValueError(f"unknown kernel mode: {kernel!r}")
        self.min_length = min_length
        self.automatons = automatons
        self.tokens = tokens
        self.kernel = kernel

    def _want_kernel(self, p_len: int, q_len: int) -> bool:
        if self.kernel == "off" or not _tokens.numpy_enabled():
            return False
        if self.kernel == "force":
            return True
        return _cost_model().use_st_kernel(p_len, q_len)

    def _kernel_peaks(self, p_text: str, p_region: Interval,
                      q_text: str, q_region: Interval
                      ) -> Optional[List[Tuple[int, int, int]]]:
        np = _tokens.get_numpy()
        if np is None:
            return None
        k = self.min_length
        if self.tokens is not None:
            chars = self.tokens.chars(p_text)
            if chars is None:
                return None
            pa = chars[p_region.start:p_region.end]
            index = self.tokens.st_index(q_text, q_region.start,
                                         q_region.end, k)
            if index is None:  # q region shorter than k: no match >= k
                return []
            qa, hq_sorted, order, run_end = index
            return st_kernel(pa, qa, k, np,
                             q_index=(hq_sorted, order, run_end))
        pa = _tokens.chars_u64(p_text[p_region.start:p_region.end], np)
        qa = _tokens.chars_u64(q_text[q_region.start:q_region.end], np)
        return st_kernel(pa, qa, k, np)

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        p_len = p_region.end - p_region.start
        q_len = q_region.end - q_region.start
        if p_len <= 0 or q_len <= 0:
            return []
        if self._want_kernel(p_len, q_len):
            # A cached automaton beats re-anchoring from scratch; only
            # kernel-match when no automaton for this content exists.
            sam = (self.automatons.peek(q_text, q_region)
                   if self.automatons is not None else None)
            if sam is None:
                peaks = self._kernel_peaks(p_text, p_region,
                                           q_text, q_region)
                if peaks is not None:
                    return [
                        MatchSegment(p_region.start + i - length + 1,
                                     q_region.start + e - length + 1,
                                     length)
                        for i, length, e in peaks
                    ]
                # pair-cap fallback: build the automaton below
        q_body = q_text[q_region.start:q_region.end]
        p_body = p_text[p_region.start:p_region.end]
        if self.automatons is not None:
            sam = self.automatons.get(q_text, q_region)
        else:
            sam = SuffixAutomaton(q_body)
        first_end = sam.first_end
        segments: List[MatchSegment] = []
        for p_end_rel, length, state in probe_peaks(sam, p_body,
                                                    self.min_length):
            p_start = p_region.start + p_end_rel - length + 1
            q_start = q_region.start + first_end[state] - length + 1
            segments.append(MatchSegment(p_start, q_start, length))
        return segments
