"""The ST matcher: suffix-structure matching that finds moved text.

The paper's ST matcher is suffix-tree based and finds *all* matching
regions in time linear in the two region lengths. We implement the
equivalent with a suffix automaton of the q-region: streaming the
p-region through the automaton yields, for every position of p, the
longest substring ending there that occurs anywhere in q (plus one of
its q end positions). Local maxima of that profile become candidate
match segments — including text blocks that moved, which the
diff-based UD matcher cannot see. It is the most complete matcher and
also the most expensive one, exactly the trade-off the optimizer
weighs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import ST_NAME, Matcher


class SuffixAutomaton:
    """Suffix automaton with first-occurrence end positions."""

    __slots__ = ("next", "link", "length", "first_end", "last")

    def __init__(self, text: str) -> None:
        self.next: List[Dict[str, int]] = [{}]
        self.link: List[int] = [-1]
        self.length: List[int] = [0]
        self.first_end: List[int] = [-1]
        self.last = 0
        for i, ch in enumerate(text):
            self._extend(ch, i)

    def _new_state(self, length: int, first_end: int) -> int:
        self.next.append({})
        self.link.append(-1)
        self.length.append(length)
        self.first_end.append(first_end)
        return len(self.next) - 1

    def _extend(self, ch: str, pos: int) -> None:
        cur = self._new_state(self.length[self.last] + 1, pos)
        p = self.last
        while p != -1 and ch not in self.next[p]:
            self.next[p][ch] = cur
            p = self.link[p]
        if p == -1:
            self.link[cur] = 0
        else:
            q = self.next[p][ch]
            if self.length[p] + 1 == self.length[q]:
                self.link[cur] = q
            else:
                clone = self._new_state(self.length[p] + 1,
                                        self.first_end[q])
                self.next[clone] = dict(self.next[q])
                self.link[clone] = self.link[q]
                while p != -1 and self.next[p].get(ch) == q:
                    self.next[p][ch] = clone
                    p = self.link[p]
                self.link[q] = clone
                self.link[cur] = clone
        self.last = cur


def probe_peaks(sam: SuffixAutomaton, p_body: str,
                min_length: int) -> Iterator[Tuple[int, int, int]]:
    """Reusable probe path: stream ``p_body`` through a (possibly
    prebuilt) automaton and yield the match-profile peaks.

    Yields ``(p_end_rel, length, state)`` for every local maximum of
    the longest-match profile with ``length >= min_length``. Both
    :meth:`STMatcher.match` and statistics probes (e.g. the optimizer
    sampling match coverage) share this loop, so a cached automaton
    can be probed repeatedly without rebuilding or materializing
    segments.
    """
    state = 0
    length = 0
    nxt = sam.next
    link = sam.link
    lengths = sam.length
    prev_len = 0
    for i, ch in enumerate(p_body):
        if ch in nxt[state]:
            state = nxt[state][ch]
            length += 1
        else:
            # The peak that just ended at i - 1.
            if prev_len >= min_length:
                yield (i - 1, prev_len, state)
            while state != -1 and ch not in nxt[state]:
                state = link[state]
            if state == -1:
                state = 0
                length = 0
            else:
                length = lengths[state] + 1
                state = nxt[state][ch]
        prev_len = length
    if prev_len >= min_length:
        yield (len(p_body) - 1, prev_len, state)


class STMatcher(Matcher):
    """All-maximal-common-substring matcher via a suffix automaton.

    ``min_length`` suppresses matches too short to enable any reuse
    (a match shorter than ``2β + 1`` has an empty copy zone for every
    unit); the engine picks it per unit from the unit's β.

    ``automatons``, when given, is a per-page-pair cache with a
    ``get(q_text, q_region) -> SuffixAutomaton`` method (see
    :class:`repro.fastpath.memo.AutomatonCache`): building the
    automaton dominates ST's cost, and within one page pair the same
    q-region recurs across input rows and units, so a cached automaton
    is reused instead of rebuilt. The automaton is read-only after
    construction, so reuse is behaviour-preserving by construction.
    """

    name = ST_NAME

    def __init__(self, min_length: int = 12,
                 automatons: Optional[object] = None) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self.min_length = min_length
        self.automatons = automatons

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        q_body = q_text[q_region.start:q_region.end]
        p_body = p_text[p_region.start:p_region.end]
        if not q_body or not p_body:
            return []
        if self.automatons is not None:
            sam = self.automatons.get(q_text, q_region)
        else:
            sam = SuffixAutomaton(q_body)
        first_end = sam.first_end
        segments: List[MatchSegment] = []
        for p_end_rel, length, state in probe_peaks(sam, p_body,
                                                    self.min_length):
            p_start = p_region.start + p_end_rel - length + 1
            q_start = q_region.start + first_end[state] - length + 1
            segments.append(MatchSegment(p_start, q_start, length))
        return segments
