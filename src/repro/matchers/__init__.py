"""Matcher portfolio: DN, UD (Myers diff), ST (suffix automaton), RU."""

from .base import (
    DN_NAME,
    MATCHER_NAMES,
    RU_NAME,
    ST_NAME,
    UD_NAME,
    MatchCache,
    Matcher,
)
from .dn import DNMatcher
from .registry import make_matcher
from .ru import RUMatcher
from .st import STMatcher, SuffixAutomaton, probe_peaks
from .ud import UDMatcher, myers_lcs_pairs
from .ws import WS_NAME, WinnowingMatcher, winnow_fingerprints

__all__ = [
    "Matcher",
    "MatchCache",
    "DNMatcher",
    "UDMatcher",
    "STMatcher",
    "RUMatcher",
    "SuffixAutomaton",
    "probe_peaks",
    "myers_lcs_pairs",
    "WinnowingMatcher",
    "winnow_fingerprints",
    "WS_NAME",
    "make_matcher",
    "MATCHER_NAMES",
    "DN_NAME",
    "UD_NAME",
    "ST_NAME",
    "RU_NAME",
]
