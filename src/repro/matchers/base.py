"""Matcher interface and the shared match cache.

A matcher finds equal-text segments between a region of the current
page ``p`` and one recorded input region of the previous page ``q``.
All coordinates are absolute page offsets.

The :class:`MatchCache` implements the bookkeeping behind the RU
matcher (Section 5.4): every segment found by an ST or UD matcher while
processing a page pair is recorded, so later IE units can recycle the
matching work instead of re-matching.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, List, Tuple

from ..obs import trace as _otrace
from ..text.regions import MatchSegment
from ..text.span import Interval

DN_NAME = "DN"
UD_NAME = "UD"
ST_NAME = "ST"
RU_NAME = "RU"

MATCHER_NAMES = (DN_NAME, UD_NAME, ST_NAME, RU_NAME)


class Matcher(ABC):
    """Finds overlapping regions between two page regions."""

    name: str = "?"

    #: Constructor attributes that change what :meth:`match` returns.
    #: Every such attribute MUST be listed here: the memo and the
    #: cross-snapshot match cache key results by :meth:`config_key`, so
    #: an unlisted attribute would let two differently-configured
    #: matchers share cached results. ``tests/test_matchcore.py`` fails
    #: if an instance grows an attribute in neither tuple.
    CONFIG_ATTRS: Tuple[str, ...] = ()

    #: Attributes that only affect *how* results are computed (caches,
    #: kernel toggles, interning state) — excluded from the key because
    #: both paths are parity-pinned to identical output.
    STATE_ATTRS: Tuple[str, ...] = ()

    def config_key(self) -> tuple:
        """A hashable key identifying this matcher's result behaviour.

        Two matcher instances with equal keys must return identical
        segments for identical inputs — that is the contract the memo
        and cross-snapshot cache rely on.
        """
        return (self.name,) + tuple(
            getattr(self, attr) for attr in self.CONFIG_ATTRS)

    @abstractmethod
    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        """Equal-text segments between ``p_region`` and ``q_region``.

        Every returned segment must lie inside both regions and witness
        actual text equality. ``q_itid`` tagging is the caller's job.
        """

    def match_many(self, p_text: str, p_region: Interval, q_text: str,
                   candidates: Dict[int, Interval]) -> List[MatchSegment]:
        """Match one p region against many recorded q regions.

        Returns segments tagged with each candidate's itid. The default
        loops over :meth:`match`; matchers with shareable per-region
        work (RU) override this.
        """
        out: List[MatchSegment] = []
        for itid, q_region in candidates.items():
            for seg in self.match(p_text, p_region, q_text, q_region):
                out.append(replace(seg, q_itid=itid))
        if _otrace.ENABLED:  # one module-attribute check when tracing off
            _otrace.annotate(f"segments_{self.name}", len(out))
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MatchCache:
    """Per-page-pair record of all segments found by ST/UD matchers.

    The paper's RU matcher keeps triples (R, S, O); since our segments
    already carry both sides' coordinates, a flat segment list is the
    same information.
    """

    def __init__(self) -> None:
        self._segments: List[MatchSegment] = []

    def record(self, segments: List[MatchSegment]) -> None:
        self._segments.extend(segments)

    @property
    def segments(self) -> List[MatchSegment]:
        return self._segments

    def clear(self) -> None:
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._segments)
