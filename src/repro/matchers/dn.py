"""The DN ("do nothing") matcher.

DN declares the two regions share nothing, at zero cost. Assigning DN
to an IE unit amounts to running that unit from scratch — which the
optimizer will happily do when matching would cost more than the
extraction it saves.
"""

from __future__ import annotations

from typing import List

from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import DN_NAME, Matcher


class DNMatcher(Matcher):
    """Always reports no overlap."""

    name = DN_NAME

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        return []
