"""The UD matcher: a Unix-diff-style matcher (Myers' O(ND) algorithm).

UD diffs the two regions line by line with Myers' greedy O(ND)
algorithm [Myers 1986], converts runs of equal lines to character
segments, and greedily extends each segment character-wise. Like the
Unix ``diff`` it emulates, it is fast (linear in practice) but finds
only *aligned* overlaps — it misses moved blocks, which the ST matcher
catches.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..text import tokens as _tokens
from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import UD_NAME, Matcher

_COST_MODEL = None


def _cost_model():
    # Lazy: optimizer -> cost -> engine -> matchers would cycle.
    global _COST_MODEL
    if _COST_MODEL is None:
        from ..optimizer.kernels import DEFAULT_KERNEL_MODEL
        _COST_MODEL = DEFAULT_KERNEL_MODEL
    return _COST_MODEL


def _intern_lines(p_lines: List[str], q_lines: List[str]
                  ) -> Tuple[List[int], List[int]]:
    """Map both line lists through one str -> int table.

    Int equality then coincides with string equality (the mapping is
    injective), so Myers over the interned lists returns the same index
    pairs while every ``a[x] == b[y]`` probe — the diff's hot
    comparison — costs an int compare instead of a string compare.
    """
    table: dict = {}
    setdefault = table.setdefault
    a = [setdefault(line, len(table)) for line in p_lines]
    b = [setdefault(line, len(table)) for line in q_lines]
    return a, b


def _split_lines(text: str, region: Interval) -> Tuple[List[str], List[int]]:
    """Lines of a region plus each line's absolute start offset."""
    body = text[region.start:region.end]
    lines = body.split("\n")
    offsets: List[int] = []
    pos = region.start
    for line in lines:
        offsets.append(pos)
        pos += len(line) + 1
    return lines, offsets


def myers_lcs_pairs(a: Sequence, b: Sequence,
                    max_d: int = 0, np=None) -> List[Tuple[int, int]]:
    """Matched index pairs of an LCS of ``a`` and ``b`` (Myers O(ND)).

    The common prefix and suffix are stripped before the O(ND) search
    — the classic diff shrink: real diffs of evolving pages touch a
    few lines in the middle, so the quadratic part runs on a fraction
    of the input. The prefix/suffix lines are always part of *an* LCS,
    so the result length is still optimal (tie-breaks among equal-size
    LCSs may differ from an untrimmed run, which is why the trim is
    unconditional rather than flag-gated: every caller sees the same
    alignment).

    ``max_d`` caps the edit distance explored; 0 means unlimited. When
    the cap is hit the common prefix/suffix alone is returned —
    trading completeness for time exactly like a real diff tool under
    pressure.

    ``np``, when given (with int-interned sequences — see
    :func:`_intern_lines`), routes the mid-section search through
    :func:`_myers_core_np`, the vectorized band sweep. The result is
    identical either way; only large-edit-distance speed differs.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    pre = 0
    while pre < n and pre < m and a[pre] == b[pre]:
        pre += 1
    suf = 0
    while (suf < n - pre and suf < m - pre
           and a[n - 1 - suf] == b[m - 1 - suf]):
        suf += 1
    pairs: List[Tuple[int, int]] = [(i, i) for i in range(pre)]
    mid_a, mid_b = a[pre:n - suf], b[pre:m - suf]
    if mid_a and mid_b:
        core = (_myers_core_np(mid_a, mid_b, max_d, np)
                if np is not None else _myers_core(mid_a, mid_b, max_d))
        pairs.extend((x + pre, y + pre) for x, y in core)
    pairs.extend((n - suf + t, m - suf + t) for t in range(suf))
    return pairs


def _myers_core(a: Sequence, b: Sequence,
                max_d: int) -> List[Tuple[int, int]]:
    """The O(ND) search proper, on sequences with no common prefix or
    suffix (``myers_lcs_pairs`` guarantees that)."""
    n, m = len(a), len(b)
    limit = max_d if max_d > 0 else n + m
    # v[k] = furthest x reached on diagonal k; trace snapshots v at the
    # start of each d round so the path can be reconstructed.
    v = {1: 0}
    trace: List[dict] = []
    found_d = -1
    for d in range(limit + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1] < v[k + 1]):
                x = v[k + 1]
            else:
                x = v[k - 1] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found_d = d
                break
        if found_d >= 0:
            break
    if found_d < 0:
        return _prefix_suffix_pairs(a, b)
    # Backtrack through the trace collecting snake (equal-run) moves.
    pairs: List[Tuple[int, int]] = []
    x, y = n, m
    for d in range(found_d, -1, -1):
        v_prev = trace[d]
        k = x - y
        if k == -d or (k != d and v_prev[k - 1] < v_prev[k + 1]):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v_prev[prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            pairs.append((x, y))
        if d > 0:
            x, y = prev_x, prev_y
    pairs.reverse()
    return pairs


#: Edit-distance round at which :func:`_myers_core_np` leaves the
#: serial loop for the vectorized sweep. Below it a round's O(d) cells
#: cost less than a handful of numpy dispatches; above it the array
#: ops win linearly.
_MYERS_SWITCH_D = 64


def _myers_core_np(a: Sequence, b: Sequence, max_d: int,
                   np) -> List[Tuple[int, int]]:
    """Vectorized twin of :func:`_myers_core` for int sequences.

    Myers' band recurrence has no intra-round dependency: round ``d``
    writes only diagonals of parity ``d`` and reads only the opposite
    parity, written in round ``d - 1``. So once ``d`` passes
    :data:`_MYERS_SWITCH_D` the whole round — furthest-x selection,
    snake detection, and the finish test — runs as array ops over the
    ``d + 1`` diagonals, with only genuinely-extending snakes scanned
    to their first mismatch. Small-``d`` rounds (the common low-churn
    case) stay on the serial loop, which is faster there. Both the
    forward search and the backtrack reproduce the serial tie-breaks
    exactly, so the returned pairs are identical to
    :func:`_myers_core`'s on every input.
    """
    n, m = len(a), len(b)
    limit = max_d if max_d > 0 else n + m
    v = {1: 0}
    # xs[d] = v[k] after round d: a dict for serial rounds, an array
    # over k = -d..d (step 2) for vectorized ones.
    xs: List[object] = []
    found_d = -1
    for d in range(min(_MYERS_SWITCH_D, limit) + 1):
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1] < v[k + 1]):
                x = v[k + 1]
            else:
                x = v[k - 1] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found_d = d
                break
        xs.append(dict(v))
        if found_d >= 0:
            break
    if found_d < 0 and _MYERS_SWITCH_D < limit:
        aa = np.asarray(a, dtype=np.int64)
        bb = np.asarray(b, dtype=np.int64)
        off = limit + 1
        V = np.full(2 * limit + 3, -(1 << 60), dtype=np.int64)
        for j, xv in v.items():
            V[off + j] = xv
        for d in range(_MYERS_SWITCH_D + 1, limit + 1):
            vm = V[off - d - 1:off + d:2]      # v[k-1] for k = -d..d
            vp = V[off - d + 1:off + d + 2:2]  # v[k+1]
            take = vm < vp
            take[-1] = False  # k == d: always v[k-1] + 1
            take[0] = True    # k == -d: always v[k+1]
            x = np.where(take, vp, vm + 1)
            y = x - np.arange(-d, d + 1, 2)
            can = (x < n) & (y < m)
            if can.any():
                idx = np.nonzero(can)[0]
                idx = idx[aa[x[idx]] == bb[y[idx]]]
                for i in idx.tolist():
                    xi = int(x[i])
                    yi = xi - (2 * i - d)  # y on diagonal k = -d + 2i
                    span = min(n - xi, m - yi)
                    neq = aa[xi:xi + span] != bb[yi:yi + span]
                    x[i] = xi + (int(neq.argmax()) if neq.any() else span)
            V[off - d:off + d + 1:2] = x
            xs.append(x)
            if bool(((x >= n) & (x - np.arange(-d, d + 1, 2) >= m)).any()):
                found_d = d
                break
    if found_d < 0:
        return _prefix_suffix_pairs(a, b)
    pairs: List[Tuple[int, int]] = []
    x, y = n, m
    for d in range(found_d, 0, -1):
        k = x - y
        prev = xs[d - 1]
        if isinstance(prev, dict):
            val = prev.__getitem__
        else:
            def val(j, _prev=prev, _d=d):
                return int(_prev[(j + _d - 1) >> 1])
        if k == -d:
            prev_k = k + 1
        elif k == d:
            prev_k = k - 1
        else:
            prev_k = k + 1 if val(k - 1) < val(k + 1) else k - 1
        prev_x = val(prev_k)
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            pairs.append((x, y))
        x, y = prev_x, prev_y
    while x > 0 and y > 0:  # round 0's leading snake from (0, 0)
        x -= 1
        y -= 1
        pairs.append((x, y))
    pairs.reverse()
    return pairs


def _prefix_suffix_pairs(a: Sequence,
                         b: Sequence) -> List[Tuple[int, int]]:
    """Common-prefix plus common-suffix pairs (the capped-``max_d``
    fallback), guaranteed monotone and non-overlapping.

    The suffix walk is explicitly capped at ``min(len) - prefix`` so
    it can never reclaim an index the prefix walk already claimed (in
    either sequence) — without the cap, inputs like ``aa`` vs ``a``
    would pair the same element twice and emit crossing pairs. Every
    suffix index is therefore >= the prefix length in both
    coordinates, which makes the concatenation strictly increasing in
    both coordinates with no sort needed.
    """
    pairs: List[Tuple[int, int]] = []
    i = 0
    while i < len(a) and i < len(b) and a[i] == b[i]:
        pairs.append((i, i))
        i += 1
    j = 0
    max_j = min(len(a), len(b)) - i  # hard bound: stay clear of the prefix
    while j < max_j and a[len(a) - 1 - j] == b[len(b) - 1 - j]:
        j += 1
    pairs.extend((len(a) - j + t, len(b) - j + t) for t in range(j))
    return pairs


def _pair_runs(pairs: List[Tuple[int, int]]
               ) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Maximal runs of diagonally consecutive pairs, as
    (first pair, last pair) — pure-Python path."""
    runs: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    run_start = None
    prev = None
    for pi, qi in pairs + [(-2, -2)]:
        if prev is not None and (pi, qi) == (prev[0] + 1, prev[1] + 1):
            prev = (pi, qi)
            continue
        if run_start is not None:
            runs.append((run_start, prev))
        run_start = (pi, qi) if pi >= 0 else None
        prev = (pi, qi) if pi >= 0 else None
    return runs


def _pair_runs_np(pairs: List[Tuple[int, int]], np
                  ) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Vectorized twin of :func:`_pair_runs` (pairs are monotone in
    both coordinates, which both paths rely on)."""
    arr = np.asarray(pairs, dtype=np.int64)
    pi = arr[:, 0]
    qi = arr[:, 1]
    breaks = np.empty(arr.shape[0], dtype=bool)
    breaks[0] = True
    breaks[1:] = (pi[1:] != pi[:-1] + 1) | (qi[1:] != qi[:-1] + 1)
    starts = np.nonzero(breaks)[0]
    ends = np.concatenate((starts[1:] - 1, [arr.shape[0] - 1]))
    return [((int(pi[s]), int(qi[s])), (int(pi[e]), int(qi[e])))
            for s, e in zip(starts, ends)]


class UDMatcher(Matcher):
    """Line-level Myers diff converted to character match segments.

    ``kernel`` gates the interned-line path: above the cost model's
    line threshold (and when numpy is importable), both regions' lines
    are mapped through one str -> int table so the Myers search
    compares ints, the band sweep itself vectorizes over diagonals
    once the edit distance passes :data:`_MYERS_SWITCH_D`
    (:func:`_myers_core_np` — the win on heavily diverged or
    block-moved regions), and run detection over the matched pairs is
    vectorized. Output is identical on every path; only speed differs.
    """

    name = UD_NAME
    CONFIG_ATTRS = ("max_d",)
    STATE_ATTRS = ("kernel",)

    def __init__(self, max_d: int = 0, kernel: str = "auto") -> None:
        if kernel not in ("auto", "force", "off"):
            raise ValueError(f"unknown kernel mode: {kernel!r}")
        self.max_d = max_d
        self.kernel = kernel

    def _want_kernel(self, p_lines: int, q_lines: int) -> bool:
        if self.kernel == "off":
            return False
        if self.kernel == "force":
            return True
        return _cost_model().use_ud_kernel(p_lines, q_lines)

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        p_lines, p_offsets = _split_lines(p_text, p_region)
        q_lines, q_offsets = _split_lines(q_text, q_region)
        use_kernel = self._want_kernel(len(p_lines), len(q_lines))
        np = _tokens.get_numpy() if use_kernel else None
        if np is not None:
            seq_p, seq_q = _intern_lines(p_lines, q_lines)
        else:
            seq_p, seq_q = p_lines, q_lines
        pairs = myers_lcs_pairs(seq_p, seq_q, self.max_d, np=np)
        if pairs and np is not None and len(pairs) >= 256:
            runs = _pair_runs_np(pairs, np)
        else:
            runs = _pair_runs(pairs)
        segments = [
            self._run_to_segment(start, end, p_lines, p_offsets,
                                 q_lines, q_offsets)
            for start, end in runs
        ]
        return [self._extend(s, p_text, p_region, q_text, q_region)
                for s in segments if s.length > 0]

    @staticmethod
    def _run_to_segment(start: Tuple[int, int], end: Tuple[int, int],
                        p_lines: List[str], p_offsets: List[int],
                        q_lines: List[str],
                        q_offsets: List[int]) -> MatchSegment:
        p_start = p_offsets[start[0]]
        q_start = q_offsets[start[1]]
        p_end = p_offsets[end[0]] + len(p_lines[end[0]])
        return MatchSegment(p_start, q_start, p_end - p_start)

    @staticmethod
    def _extend(seg: MatchSegment, p_text: str, p_region: Interval,
                q_text: str, q_region: Interval) -> MatchSegment:
        """Grow a segment character-wise while text stays equal."""
        ps, qs, length = seg.p_start, seg.q_start, seg.length
        while (ps > p_region.start and qs > q_region.start
               and p_text[ps - 1] == q_text[qs - 1]):
            ps -= 1
            qs -= 1
            length += 1
        while (ps + length < p_region.end and qs + length < q_region.end
               and p_text[ps + length] == q_text[qs + length]):
            length += 1
        return MatchSegment(ps, qs, length)
