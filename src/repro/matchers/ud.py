"""The UD matcher: a Unix-diff-style matcher (Myers' O(ND) algorithm).

UD diffs the two regions line by line with Myers' greedy O(ND)
algorithm [Myers 1986], converts runs of equal lines to character
segments, and greedily extends each segment character-wise. Like the
Unix ``diff`` it emulates, it is fast (linear in practice) but finds
only *aligned* overlaps — it misses moved blocks, which the ST matcher
catches.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..text.regions import MatchSegment
from ..text.span import Interval
from .base import UD_NAME, Matcher


def _split_lines(text: str, region: Interval) -> Tuple[List[str], List[int]]:
    """Lines of a region plus each line's absolute start offset."""
    body = text[region.start:region.end]
    lines = body.split("\n")
    offsets: List[int] = []
    pos = region.start
    for line in lines:
        offsets.append(pos)
        pos += len(line) + 1
    return lines, offsets


def myers_lcs_pairs(a: Sequence[str], b: Sequence[str],
                    max_d: int = 0) -> List[Tuple[int, int]]:
    """Matched index pairs of an LCS of ``a`` and ``b`` (Myers O(ND)).

    The common prefix and suffix are stripped before the O(ND) search
    — the classic diff shrink: real diffs of evolving pages touch a
    few lines in the middle, so the quadratic part runs on a fraction
    of the input. The prefix/suffix lines are always part of *an* LCS,
    so the result length is still optimal (tie-breaks among equal-size
    LCSs may differ from an untrimmed run, which is why the trim is
    unconditional rather than flag-gated: every caller sees the same
    alignment).

    ``max_d`` caps the edit distance explored; 0 means unlimited. When
    the cap is hit the common prefix/suffix alone is returned —
    trading completeness for time exactly like a real diff tool under
    pressure.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    pre = 0
    while pre < n and pre < m and a[pre] == b[pre]:
        pre += 1
    suf = 0
    while (suf < n - pre and suf < m - pre
           and a[n - 1 - suf] == b[m - 1 - suf]):
        suf += 1
    pairs: List[Tuple[int, int]] = [(i, i) for i in range(pre)]
    mid_a, mid_b = a[pre:n - suf], b[pre:m - suf]
    if mid_a and mid_b:
        pairs.extend((x + pre, y + pre)
                     for x, y in _myers_core(mid_a, mid_b, max_d))
    pairs.extend((n - suf + t, m - suf + t) for t in range(suf))
    return pairs


def _myers_core(a: Sequence[str], b: Sequence[str],
                max_d: int) -> List[Tuple[int, int]]:
    """The O(ND) search proper, on sequences with no common prefix or
    suffix (``myers_lcs_pairs`` guarantees that)."""
    n, m = len(a), len(b)
    limit = max_d if max_d > 0 else n + m
    # v[k] = furthest x reached on diagonal k; trace snapshots v at the
    # start of each d round so the path can be reconstructed.
    v = {1: 0}
    trace: List[dict] = []
    found_d = -1
    for d in range(limit + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1] < v[k + 1]):
                x = v[k + 1]
            else:
                x = v[k - 1] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found_d = d
                break
        if found_d >= 0:
            break
    if found_d < 0:
        return _prefix_suffix_pairs(a, b)
    # Backtrack through the trace collecting snake (equal-run) moves.
    pairs: List[Tuple[int, int]] = []
    x, y = n, m
    for d in range(found_d, -1, -1):
        v_prev = trace[d]
        k = x - y
        if k == -d or (k != d and v_prev[k - 1] < v_prev[k + 1]):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v_prev[prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            pairs.append((x, y))
        if d > 0:
            x, y = prev_x, prev_y
    pairs.reverse()
    return pairs


def _prefix_suffix_pairs(a: Sequence[str],
                         b: Sequence[str]) -> List[Tuple[int, int]]:
    """Common-prefix plus common-suffix pairs (the capped-``max_d``
    fallback), guaranteed monotone and non-overlapping.

    The suffix walk is explicitly capped at ``min(len) - prefix`` so
    it can never reclaim an index the prefix walk already claimed (in
    either sequence) — without the cap, inputs like ``aa`` vs ``a``
    would pair the same element twice and emit crossing pairs. Every
    suffix index is therefore >= the prefix length in both
    coordinates, which makes the concatenation strictly increasing in
    both coordinates with no sort needed.
    """
    pairs: List[Tuple[int, int]] = []
    i = 0
    while i < len(a) and i < len(b) and a[i] == b[i]:
        pairs.append((i, i))
        i += 1
    j = 0
    max_j = min(len(a), len(b)) - i  # hard bound: stay clear of the prefix
    while j < max_j and a[len(a) - 1 - j] == b[len(b) - 1 - j]:
        j += 1
    pairs.extend((len(a) - j + t, len(b) - j + t) for t in range(j))
    return pairs


class UDMatcher(Matcher):
    """Line-level Myers diff converted to character match segments."""

    name = UD_NAME

    def __init__(self, max_d: int = 0) -> None:
        self.max_d = max_d

    def match(self, p_text: str, p_region: Interval,
              q_text: str, q_region: Interval) -> List[MatchSegment]:
        p_lines, p_offsets = _split_lines(p_text, p_region)
        q_lines, q_offsets = _split_lines(q_text, q_region)
        pairs = myers_lcs_pairs(p_lines, q_lines, self.max_d)
        segments: List[MatchSegment] = []
        run_start = None
        prev = None
        for pi, qi in pairs + [(-2, -2)]:
            if prev is not None and (pi, qi) == (prev[0] + 1, prev[1] + 1):
                prev = (pi, qi)
                continue
            if run_start is not None:
                segments.append(self._run_to_segment(
                    run_start, prev, p_lines, p_offsets, q_lines, q_offsets))
            run_start = (pi, qi) if pi >= 0 else None
            prev = (pi, qi) if pi >= 0 else None
        return [self._extend(s, p_text, p_region, q_text, q_region)
                for s in segments if s.length > 0]

    @staticmethod
    def _run_to_segment(start: Tuple[int, int], end: Tuple[int, int],
                        p_lines: List[str], p_offsets: List[int],
                        q_lines: List[str],
                        q_offsets: List[int]) -> MatchSegment:
        p_start = p_offsets[start[0]]
        q_start = q_offsets[start[1]]
        p_end = p_offsets[end[0]] + len(p_lines[end[0]])
        return MatchSegment(p_start, q_start, p_end - p_start)

    @staticmethod
    def _extend(seg: MatchSegment, p_text: str, p_region: Interval,
                q_text: str, q_region: Interval) -> MatchSegment:
        """Grow a segment character-wise while text stays equal."""
        ps, qs, length = seg.p_start, seg.q_start, seg.length
        while (ps > p_region.start and qs > q_region.start
               and p_text[ps - 1] == q_text[qs - 1]):
            ps -= 1
            qs -= 1
            length += 1
        while (ps + length < p_region.end and qs + length < q_region.end
               and p_text[ps + length] == q_text[qs + length]):
            length += 1
        return MatchSegment(ps, qs, length)
