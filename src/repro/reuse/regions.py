"""Copy-region / extraction-region derivation with (α, β) safety.

Given the match segments between an IE unit's input region R (on the
current page p) and the unit's recorded input regions on the previous
page q, this module decides:

* which previously recorded output tuples can be **copied** (shifted
  into p) — guaranteed by the unit's context β: a mention whose
  β-extended extent lies inside a single matched segment must be
  reproduced by the extractor on the identical text;
* which **extraction regions** of R must be re-extracted so that every
  mention *not* guaranteed-copyable is found — each uncovered gap is
  extended by α + β on both sides so any such mention's full context
  window fits inside one extraction region.

Boundary alignment: a context window clipped by the start/end of the
input region is acceptable when the matched segment is flush with the
same boundary on *both* pages — the extractor saw the same truncation
on q. This is what makes a byte-identical region fully copyable even
for mentions at its very edges (and what makes CRF-style units with
β = region length reusable exactly when their whole region reappears).

Correctness argument (Theorem 1 hinges on this module):

1. Selected segments are p-disjoint, and copy zones are separated by
   at least one character, so any extent not inside a *single* zone
   intersects the complement of the zones.
2. Every copied mention's window maps into identical text, so the
   extractor would have produced it — and only recorded (post-σ/π)
   outputs are copied, so nothing spurious appears.
3. Every non-copy-guaranteed mention intersects a complement gap; its
   window (≤ α + 2β wide around the gap) lies inside the gap's
   extraction region, so re-extraction finds it. Extractions whose
   window crosses an extraction-region edge that is not an R edge are
   discarded: if genuine, they are guaranteed found as copies or in a
   neighboring region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..check import invariants as _inv
from ..text.regions import MatchSegment, select_p_disjoint
from ..text.span import Interval, Span, complement_intervals, merge_intervals
from .files import InputTuple, OutputTuple

#: Test-only fault-injection hook (see :mod:`repro.check.faults`).
#: ``None`` in production; when set, it may mutate a finished
#: derivation to simulate a silent reuse bug for harness self-tests.
#: Runs *after* the invariant checks by design: an injected fault
#: models a bug the cheap invariants cannot see, which only the
#: differential oracle exposes.
_fault_hook: Optional[Callable[["ReuseDerivation", Interval], None]] = None


@dataclass
class CopyZoneInfo:
    """One copy zone and the shift that maps q mentions into p."""

    zone: Interval  # p coordinates; guaranteed-copyable extents
    shift: int      # add to q offsets to get p offsets
    q_itid: int     # recorded input tuple the outputs join to


@dataclass
class ReuseDerivation:
    """The reuse decision for one IE-unit input region."""

    copied: List[Dict[str, Any]] = field(default_factory=list)
    extraction_regions: List[Interval] = field(default_factory=list)
    copy_zones: List[CopyZoneInfo] = field(default_factory=list)

    @property
    def copied_count(self) -> int:
        return len(self.copied)

    def covered_chars(self) -> int:
        return sum(len(z.zone) for z in self.copy_zones)


def derive_reuse(p_region: Interval, p_did: str,
                 segments: List[MatchSegment],
                 q_inputs: Dict[int, InputTuple],
                 q_outputs: Dict[int, List[OutputTuple]],
                 alpha: int, beta: int) -> ReuseDerivation:
    """Derive copy zones, copied mentions, and extraction regions."""
    # 1. Sanitize: clip every segment to R and to its q input region.
    clean: List[MatchSegment] = []
    for seg in segments:
        q_input = q_inputs.get(seg.q_itid)
        if q_input is None or seg.length == 0:
            continue
        trimmed = seg.trim_to_p(p_region)
        if trimmed is None:
            continue
        trimmed = trimmed.trim_to_q(q_input.interval)
        if trimmed is not None and trimmed.length > 0:
            clean.append(trimmed)
    disjoint = select_p_disjoint(clean)

    # 2. Copy zones with boundary-alignment allowances.
    zones: List[CopyZoneInfo] = []
    for seg in disjoint:
        q_input = q_inputs[seg.q_itid]
        left_aligned = (seg.q_start == q_input.s
                        and seg.p_start == p_region.start)
        seg_q_end = seg.q_start + seg.length
        seg_p_end = seg.p_start + seg.length
        right_aligned = (seg_q_end == q_input.e
                         and seg_p_end == p_region.end)
        zone_start = seg.p_start if left_aligned else seg.p_start + beta
        zone_end = seg_p_end if right_aligned else seg_p_end - beta
        if zone_end > zone_start:
            zones.append(CopyZoneInfo(Interval(zone_start, zone_end),
                                      seg.shift, seg.q_itid))

    # 3. Enforce >= 1 character separation between consecutive zones so
    #    a mention straddling two zones always intersects the
    #    complement (step 1 of the correctness argument).
    zones.sort(key=lambda z: z.zone.start)
    separated: List[CopyZoneInfo] = []
    prev_end = None
    for info in zones:
        start, end = info.zone.start, info.zone.end
        if prev_end is not None and start <= prev_end:
            start = prev_end + 1
        if end > start:
            separated.append(CopyZoneInfo(Interval(start, end),
                                          info.shift, info.q_itid))
            prev_end = end
    zones = separated

    # 4. Copy recorded outputs whose shifted extent fits a zone.
    copied: List[Dict[str, Any]] = []
    for info in zones:
        for out in q_outputs.get(info.q_itid, ()):
            extent = out.extent()
            if extent is None:
                # Span-less output: only reusable when the entire input
                # region reappeared unchanged (zone == R, zero shift of
                # region bounds on both sides).
                q_input = q_inputs[info.q_itid]
                if (info.zone.start == p_region.start
                        and info.zone.end == p_region.end
                        and len(p_region) == len(q_input.interval)):
                    copied.append(_shift_fields(out, info.shift, p_did))
                continue
            es, ee = extent
            if (es + info.shift >= info.zone.start
                    and ee + info.shift <= info.zone.end):
                copied.append(_shift_fields(out, info.shift, p_did))

    # 5. Extraction regions: complement gaps grown by α + β.
    gaps = complement_intervals([z.zone for z in zones], p_region)
    grow = alpha + beta
    extraction_regions = merge_intervals(
        Interval(max(p_region.start, gap.start - grow),
                 min(p_region.end, gap.end + grow))
        for gap in gaps)

    derivation = ReuseDerivation(copied=copied,
                                 extraction_regions=extraction_regions,
                                 copy_zones=zones)
    if _inv.ENABLED:
        _inv.check_derivation(derivation, p_region, alpha, beta,
                              did=p_did)
    if _fault_hook is not None:
        _fault_hook(derivation, p_region)
    return derivation


def _shift_fields(out: OutputTuple, shift: int, p_did: str) -> Dict[str, Any]:
    fields: Dict[str, Any] = {}
    for name, kind, a, b in out.fields:
        if kind == "s":
            fields[name] = Span(p_did, a + shift, b + shift)
        else:
            fields[name] = a
    return fields


def extraction_keep(extent: Optional[Tuple[int, int]], er: Interval,
                    p_region: Interval, beta: int) -> bool:
    """Filter for freshly extracted mentions (absolute p offsets).

    Keep a mention iff its β-context window lies inside the extraction
    region, allowing clipping only where the region edge coincides
    with the input-region edge (where the extractor legitimately sees
    the truncation).
    """
    if extent is None:
        # Span-less extraction: only trustworthy from a full-region run.
        return er.start == p_region.start and er.end == p_region.end
    es, ee = extent
    left_ok = (es - beta >= er.start) or (er.start == p_region.start)
    right_ok = (ee + beta <= er.end) or (er.end == p_region.end)
    return left_ok and right_ok


def dedupe_extensions(extensions: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop duplicate extension dicts (copy/extract overlap)."""
    seen = set()
    out: List[Dict[str, Any]] = []
    for ext in extensions:
        key = tuple(sorted(ext.items()))
        if key not in seen:
            seen.add(key)
            out.append(ext)
    return out
