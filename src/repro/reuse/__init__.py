"""Capture & reuse: reuse files, safety derivation, streaming engine."""

from .engine import (
    PlanAssignment,
    ReuseEngine,
    SnapshotRunResult,
    UnitRunStats,
    materialize_rows,
)
from .files import (
    BLOCK_SIZE,
    BlockWriter,
    InputTuple,
    OutputTuple,
    ReuseFileReader,
    ReuseFileWriter,
    decode_fields,
    encode_fields,
    group_outputs_by_input,
)
from .regions import (
    CopyZoneInfo,
    ReuseDerivation,
    dedupe_extensions,
    derive_reuse,
    extraction_keep,
)
from .analysis import CaptureReport, UnitCaptureStats, analyze_capture, mentions_per_page
from .scope import (
    FingerprintScope,
    PageMatchScope,
    SameUrlScope,
    shingle_sketch,
    sketch_similarity,
)

__all__ = [
    "ReuseEngine",
    "PlanAssignment",
    "SnapshotRunResult",
    "UnitRunStats",
    "materialize_rows",
    "BlockWriter",
    "ReuseFileWriter",
    "ReuseFileReader",
    "InputTuple",
    "OutputTuple",
    "encode_fields",
    "decode_fields",
    "group_outputs_by_input",
    "BLOCK_SIZE",
    "derive_reuse",
    "extraction_keep",
    "dedupe_extensions",
    "ReuseDerivation",
    "CopyZoneInfo",
    "PageMatchScope",
    "SameUrlScope",
    "FingerprintScope",
    "shingle_sketch",
    "sketch_similarity",
    "analyze_capture",
    "CaptureReport",
    "UnitCaptureStats",
    "mentions_per_page",
]
