"""Page-matching scope: which previous page do we recycle from?

The paper matches each page only against the page *at the same URL* in
the previous snapshot (Section 5.1) and names broader scopes as future
work. This module implements both:

* :class:`SameUrlScope` — the paper's scheme. Pages pair by URL, which
  is what lets reuse files be scanned strictly sequentially.
* :class:`FingerprintScope` — extended scope: pages without a same-URL
  previous version (new URLs, site reorganizations) are paired with
  the most *content-similar* previous page, found with a bottom-k
  shingle sketch index. Renamed pages then reuse their old IE results
  instead of being extracted from scratch.

Pairing an arbitrary previous page breaks the sequential-scan
assumption, so the engine switches to an in-memory capture source when
a non-URL scope is configured (see
:class:`~repro.reuse.engine.ReuseEngine`). Correctness is unaffected:
match segments always witness literal text equality, whatever page
they come from.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Set, Tuple

from ..corpus.snapshot import Snapshot
from ..text.document import Page

SHINGLE_SIZE = 16
SKETCH_SIZE = 64


def shingle_sketch(text: str, shingle: int = SHINGLE_SIZE,
                   k: int = SKETCH_SIZE) -> Tuple[int, ...]:
    """Bottom-k sketch of the page's character shingles.

    The k smallest shingle hashes form an order-stable sample of the
    page's content; the overlap of two sketches estimates the Jaccard
    similarity of the underlying shingle sets.
    """
    if len(text) < shingle:
        return (zlib.crc32(text.encode("utf-8")),) if text else ()
    hashes: Set[int] = set()
    encoded = text.encode("utf-8", "ignore")
    for i in range(len(encoded) - shingle + 1):
        hashes.add(zlib.crc32(encoded[i:i + shingle]))
    return tuple(sorted(hashes)[:k])


def sketch_similarity(a: Tuple[int, ...], b: Tuple[int, ...]) -> float:
    """Bottom-k Jaccard estimate from two sketches."""
    if not a or not b:
        return 0.0
    k = min(len(a), len(b))
    union_bottom = sorted(set(a) | set(b))[:k]
    inter = set(a) & set(b)
    hits = sum(1 for h in union_bottom if h in inter)
    return hits / k


class PageMatchScope(ABC):
    """Chooses the previous-snapshot page to recycle from."""

    #: True when pairing is restricted to same-URL pages — the engine
    #: may then stream reuse files sequentially.
    sequential_safe: bool = True

    @abstractmethod
    def begin_snapshot(self, prev_snapshot: Optional[Snapshot]) -> None:
        """Called once before a snapshot is processed."""

    @abstractmethod
    def pair_for(self, page: Page) -> Optional[Page]:
        """The previous page to reuse from, or None."""


class SameUrlScope(PageMatchScope):
    """The paper's scheme: pair pages by URL."""

    sequential_safe = True

    def __init__(self) -> None:
        self._prev: Optional[Snapshot] = None

    def begin_snapshot(self, prev_snapshot: Optional[Snapshot]) -> None:
        self._prev = prev_snapshot

    def pair_for(self, page: Page) -> Optional[Page]:
        if self._prev is None:
            return None
        return self._prev.get(page.url)


class FingerprintScope(PageMatchScope):
    """Same-URL pairing with a content-similarity fallback.

    Pages whose URL has no previous version are paired with the most
    similar unclaimed previous page when the sketch similarity clears
    ``min_similarity``. Each previous page is handed out at most once
    per snapshot (first come, first served), so two new URLs cannot
    both claim the same history.
    """

    sequential_safe = False

    def __init__(self, min_similarity: float = 0.5) -> None:
        if not 0.0 < min_similarity <= 1.0:
            raise ValueError("min_similarity must be in (0, 1]")
        self.min_similarity = min_similarity
        self._prev: Optional[Snapshot] = None
        self._sketches: Dict[str, Tuple[int, ...]] = {}
        self._inverted: Dict[int, List[str]] = {}
        self._claimed: Set[str] = set()
        self.fallback_pairs = 0

    def begin_snapshot(self, prev_snapshot: Optional[Snapshot]) -> None:
        self._prev = prev_snapshot
        self._sketches.clear()
        self._inverted.clear()
        self._claimed.clear()
        self.fallback_pairs = 0
        if prev_snapshot is None:
            return
        # Canonical page order: the inverted index (and therefore any
        # similarity tie-break) must not depend on store insertion order.
        for page in prev_snapshot.canonical_pages():
            sketch = shingle_sketch(page.text)
            self._sketches[page.url] = sketch
            for h in sketch:
                self._inverted.setdefault(h, []).append(page.url)

    def pair_for(self, page: Page) -> Optional[Page]:
        if self._prev is None:
            return None
        same = self._prev.get(page.url)
        if same is not None:
            self._claimed.add(same.url)
            return same
        sketch = shingle_sketch(page.text)
        votes: Dict[str, int] = {}
        for h in sketch:
            for url in self._inverted.get(h, ()):
                if url not in self._claimed:
                    votes[url] = votes.get(url, 0) + 1
        best_url: Optional[str] = None
        best_score = 0.0
        for url in sorted(votes, key=lambda u: -votes[u])[:8]:
            score = sketch_similarity(sketch, self._sketches[url])
            if score > best_score:
                best_url, best_score = url, score
        if best_url is None or best_score < self.min_similarity:
            return None
        self._claimed.add(best_url)
        self.fallback_pairs += 1
        return self._prev.get(best_url)
