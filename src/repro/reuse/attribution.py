"""Per-page tuple attribution — shared by the oracle and the server.

Canonical extracted tuples (:func:`~repro.reuse.engine.materialize_rows`
output) carry no page id of their own, yet two different consumers need
to know *which page produced which tuple*:

* the differential oracle (:mod:`repro.check.oracle`) attributes a
  result divergence to the page(s) whose from-scratch extraction owns
  the offending tuples, turning a bare tuple diff into the first
  divergent *(page, relation, tuple)* report;
* the serving layer (:mod:`repro.serve`) maintains a materialized view
  as a map ``page -> tuples`` so a new snapshot can be applied as a
  *delta* — replace only the entries of pages that changed, keep
  everything else — with the view's served relation being the union.

Both consumers previously would have needed their own copy of the
"run the plan page by page, materialize each page's rows separately"
loop; this module is that loop factored out once. The from-scratch
path (:func:`extract_page_rows`) is definitionally identical to a
NoReuse run split per page: concatenating the per-page rows in
canonical page order reproduces ``NoReuseSystem.process`` output
exactly (pinned by ``tests/test_attribution.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..plan.compile import CompiledPlan
from ..text.document import Page
from ..timing import Timer, Timings

#: Materialized rows of one snapshot keyed by producing page:
#: ``did -> relation -> [canonical tuple, ...]``.
PageRows = Dict[str, Dict[str, List[tuple]]]

#: Reverse index: ``relation -> tuple -> (did, ...)`` in first-seen
#: page order (a tuple may be produced by several pages).
Attribution = Dict[str, Dict[tuple, Tuple[str, ...]]]


def extract_page_rows(plan: CompiledPlan, pages: Sequence[Page],
                      timer: Optional[Timer] = None) -> PageRows:
    """From-scratch per-page extraction (the oracle's ground truth).

    Runs the compiled plan over each page in the order given and
    materializes every page's rows separately. Pass pages in canonical
    order (``snapshot.canonical_pages()``) when the concatenation must
    match a NoReuse run byte-for-byte.
    """
    # Imported lazily: core.noreuse imports reuse.engine, so a module-
    # level import here would cycle through the package __init__.
    from ..core.noreuse import run_page_plain
    from .engine import materialize_rows

    timer = timer if timer is not None else Timer(Timings())
    out: PageRows = {}
    for page in pages:
        page_rows = run_page_plain(plan, page, timer)
        out[page.did] = {rel: materialize_rows(rows, page.text)
                         for rel, rows in page_rows.items()}
    return out


def tuple_attribution(page_rows: PageRows,
                      order: Optional[Iterable[str]] = None) -> Attribution:
    """Invert ``page -> rel -> tuples`` into ``rel -> tuple -> pages``.

    ``order`` fixes the page iteration order (dids); by default pages
    are visited in sorted did order — the canonical processing order —
    so attribution lists are deterministic regardless of how the
    ``page_rows`` mapping was built.
    """
    dids = list(order) if order is not None else sorted(page_rows)
    attr: Attribution = {}
    for did in dids:
        for rel, tuples in page_rows.get(did, {}).items():
            rel_attr = attr.setdefault(rel, {})
            for tup in tuples:
                dids_for = rel_attr.get(tup)
                if dids_for is None:
                    rel_attr[tup] = (did,)
                elif did not in dids_for:
                    rel_attr[tup] = dids_for + (did,)
    return attr


def collapse_page_rows(page_rows: PageRows,
                       order: Optional[Iterable[str]] = None
                       ) -> Dict[str, List[tuple]]:
    """Concatenate per-page rows back into whole-snapshot relations.

    With ``order`` = canonical page order this reproduces exactly what
    a monolithic run over the same pages returns (rows are emitted
    page by page in both cases), duplicates included.
    """
    dids = list(order) if order is not None else sorted(page_rows)
    rels: Dict[str, List[tuple]] = {}
    for did in dids:
        for rel, tuples in page_rows.get(did, {}).items():
            rels.setdefault(rel, []).extend(tuples)
    return rels


def canonicalize(page_rows: PageRows) -> Dict[str, frozenset]:
    """Order-insensitive relation view of per-page rows."""
    out: Dict[str, frozenset] = {}
    for rel, tuples in collapse_page_rows(page_rows).items():
        out[rel] = out.get(rel, frozenset()) | frozenset(tuples)
    return out


def attributed_pages(tuples: Sequence[tuple],
                     rel_attr: Dict[tuple, Tuple[str, ...]]
                     ) -> Tuple[str, ...]:
    """The pages responsible for the given tuples, sorted.

    Tuples no page of the attribution produced (a config *invented*
    them) attribute to ``"?"`` — no ground-truth page owns them.
    """
    pages: List[str] = []
    for tup in tuples:
        for did in rel_attr.get(tup, ("?",)):
            if did not in pages:
                pages.append(did)
    return tuple(sorted(pages))
