"""The Delex execution engine (Sections 4, 5, 7).

Processes a corpus snapshot one page at a time, in the same page order
as the previous snapshot, so each unit's reuse files are scanned
sequentially exactly once. Per IE unit and input region it:

1. records the input tuple to ``I_U^{n+1}``;
2. matches the region against the unit's recorded input regions on the
   previous version of the page, with the unit's assigned matcher
   (ST/UD results are recorded in the page pair's match cache so RU
   units can recycle them);
3. derives copy zones and extraction regions (α/β safety), copies
   recorded output tuples, re-extracts only the extraction regions;
4. records all output tuples (copied or fresh) to ``O_U^{n+1}`` and
   hands them to the parent operator.

Every other operator (joins, non-absorbed σ/π) runs as plain
relational evaluation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME, MatchCache
from ..matchers.registry import make_matcher
from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    dedupe_rows,
    hash_join,
)
from ..plan.units import IEUnit, units_by_top
from ..text.document import Page
from ..text.regions import MatchSegment
from ..text.span import Span
from ..xlog.registry import EvalContext
from ..timing import COPY, EXTRACT, IO, MATCH, Timer, Timings
from .files import (
    InputTuple,
    OutputTuple,
    ReuseFileReader,
    ReuseFileWriter,
    encode_fields,
    group_outputs_by_input,
    load_reuse_file,
)
from .regions import dedupe_extensions, derive_reuse, extraction_keep
from .scope import PageMatchScope, SameUrlScope


@dataclass(frozen=True)
class PlanAssignment:
    """Matcher name per IE-unit uid — one point of the plan space."""

    matchers: Dict[str, str]

    @classmethod
    def uniform(cls, units: List[IEUnit], name: str) -> "PlanAssignment":
        return cls({u.uid: name for u in units})

    @classmethod
    def all_dn(cls, units: List[IEUnit]) -> "PlanAssignment":
        return cls.uniform(units, DN_NAME)

    def of(self, unit: IEUnit) -> str:
        return self.matchers[unit.uid]

    def describe(self) -> str:
        return ",".join(f"{uid}={m}" for uid, m in sorted(self.matchers.items()))


@dataclass
class UnitRunStats:
    """Per-unit accounting for one snapshot run (feeds the optimizer)."""

    input_tuples: int = 0
    input_chars: int = 0
    output_tuples: int = 0
    copied_tuples: int = 0
    matcher_calls: int = 0
    extracted_chars: int = 0
    copy_zone_chars: int = 0
    i_blocks: int = 0
    o_blocks: int = 0

    @property
    def extraction_fraction(self) -> float:
        """The cost model's g: fraction of input chars re-extracted."""
        if self.input_chars == 0:
            return 0.0
        return min(1.0, self.extracted_chars / self.input_chars)


@dataclass
class SnapshotRunResult:
    """Output and accounting of running a plan over one snapshot."""

    results: Dict[str, List[Tuple]]
    timings: Timings
    unit_stats: Dict[str, UnitRunStats] = field(default_factory=dict)
    pages: int = 0
    pages_with_previous: int = 0

    def total_mentions(self) -> int:
        return sum(len(rows) for rows in self.results.values())


def materialize_rows(rows: List[TupleRow], page_text: str) -> List[Tuple]:
    """Convert tuples into hashable, system-independent form."""
    out: List[Tuple] = []
    for row in rows:
        items = []
        for var in sorted(row):
            value = row[var]
            if isinstance(value, Span):
                items.append((var, (value.start, value.end,
                                    page_text[value.start:value.end])))
            else:
                items.append((var, value))
        out.append(tuple(items))
    return out


def _safe_filename(uid: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in uid)


class ReuseEngine:
    """Executes a compiled plan over snapshots with unit-level reuse."""

    def __init__(self, plan: CompiledPlan, units: List[IEUnit],
                 assignment: PlanAssignment,
                 scope: Optional[PageMatchScope] = None) -> None:
        self.plan = plan
        self.units = units
        self.assignment = assignment
        self.scope = scope if scope is not None else SameUrlScope()
        self._unit_of_top = units_by_top(units)
        self._memory_capture: Optional[
            Dict[str, Tuple[Dict[str, List[InputTuple]],
                            Dict[str, List[OutputTuple]]]]] = None
        missing = [u.uid for u in units if u.uid not in assignment.matchers]
        if missing:
            raise ValueError(f"assignment missing units {missing}")
        from ..matchers.registry import make_matcher
        for uid, name in assignment.matchers.items():
            # Fail fast on unknown matcher names instead of mid-run.
            make_matcher(name, MatchCache())

    # -- snapshot-level driver -------------------------------------------

    def run_snapshot(self, snapshot: Snapshot,
                     prev_snapshot: Optional[Snapshot],
                     prev_dir: Optional[str], out_dir: str,
                     timings: Optional[Timings] = None) -> SnapshotRunResult:
        """Run the plan over ``snapshot``, reusing ``prev_dir`` capture.

        ``prev_snapshot``/``prev_dir`` are None for the bootstrap run.
        Capture for the *next* snapshot is written under ``out_dir``.
        """
        timings = timings if timings is not None else Timings()
        timer = Timer(timings)
        os.makedirs(out_dir, exist_ok=True)
        writers = {
            u.uid: (ReuseFileWriter(self._file(out_dir, u.uid, "I")),
                    ReuseFileWriter(self._file(out_dir, u.uid, "O")))
            for u in self.units
        }
        readers: Dict[str, Tuple[ReuseFileReader, ReuseFileReader]] = {}
        self._memory_capture = None
        if prev_dir is not None and prev_snapshot is not None:
            if self.scope.sequential_safe:
                for u in self.units:
                    i_path = self._file(prev_dir, u.uid, "I")
                    o_path = self._file(prev_dir, u.uid, "O")
                    if os.path.exists(i_path) and os.path.exists(o_path):
                        readers[u.uid] = (ReuseFileReader(i_path),
                                          ReuseFileReader(o_path))
            else:
                # Cross-URL pairing breaks the sequential access
                # pattern; trade memory for random access.
                self._memory_capture = {}
                for u in self.units:
                    i_path = self._file(prev_dir, u.uid, "I")
                    o_path = self._file(prev_dir, u.uid, "O")
                    if os.path.exists(i_path) and os.path.exists(o_path):
                        self._memory_capture[u.uid] = (
                            load_reuse_file(i_path, "I"),
                            load_reuse_file(o_path, "O"))
        stats = {u.uid: UnitRunStats() for u in self.units}
        results: Dict[str, List[Tuple]] = {
            rel: [] for rel in self.plan.program.head_relations()}
        ordered = (snapshot.ordered_like(prev_snapshot)
                   if prev_snapshot is not None else snapshot)
        pages_with_prev = 0
        self.scope.begin_snapshot(prev_snapshot)
        try:
            with timer.measure_total():
                for page in ordered:
                    q_page = self.scope.pair_for(page)
                    if q_page is not None:
                        pages_with_prev += 1
                    cache = MatchCache()
                    for uid, (wi, wo) in writers.items():
                        wi.begin_page(page.did)
                        wo.begin_page(page.did)
                    page_rows = self._run_page(page, q_page, readers,
                                               writers, cache, stats, timer)
                    for rel, rows in page_rows.items():
                        results[rel].extend(
                            materialize_rows(rows, page.text))
        finally:
            for wi, wo in writers.values():
                wi.close()
                wo.close()
            for ri, ro in readers.values():
                ri.close()
                ro.close()
        for u in self.units:
            wi, wo = writers[u.uid]
            stats[u.uid].i_blocks = wi.blocks
            stats[u.uid].o_blocks = wo.blocks
        return SnapshotRunResult(results=results, timings=timings,
                                 unit_stats=stats, pages=len(ordered),
                                 pages_with_previous=pages_with_prev)

    @staticmethod
    def _file(directory: str, uid: str, kind: str) -> str:
        return os.path.join(directory, f"{_safe_filename(uid)}.{kind}.reuse")

    # -- per-page evaluation ----------------------------------------------

    def _run_page(self, page: Page, q_page: Optional[Page],
                  readers: Dict[str, Tuple[ReuseFileReader, ReuseFileReader]],
                  writers: Dict[str, Tuple[ReuseFileWriter, ReuseFileWriter]],
                  cache: MatchCache, stats: Dict[str, UnitRunStats],
                  timer: Timer) -> Dict[str, List[TupleRow]]:
        memo: Dict[int, List[TupleRow]] = {}

        def evaluate(node: Node) -> List[TupleRow]:
            key = id(node)
            if key in memo:
                return memo[key]
            unit = self._unit_of_top.get(key)
            if unit is not None:
                child_rows = evaluate(unit.ie_node.child)
                rows = self._run_unit(unit, child_rows, page, q_page,
                                      readers, writers, cache,
                                      stats[unit.uid], timer)
            elif isinstance(node, ScanNode):
                rows = [{node.var: Span(page.did, 0, len(page.text))}]
            elif isinstance(node, SelectNode):
                ctx = EvalContext(page.text, page.did)
                rows = [r for r in evaluate(node.child)
                        if node.passes(r, ctx)]
            elif isinstance(node, ProjectNode):
                rows = dedupe_rows(
                    [node.apply(r) for r in evaluate(node.child)])
            elif isinstance(node, JoinNode):
                rows = hash_join(evaluate(node.left), evaluate(node.right),
                                 node.on)
            elif isinstance(node, UnionNode):
                rows = dedupe_rows([row for child in node.children
                                    for row in evaluate(child)])
            elif isinstance(node, IENode):
                raise AssertionError(
                    f"IENode {node.extractor.name} evaluated outside its "
                    "unit — unit identification is broken")
            else:
                raise TypeError(f"unknown node type {type(node).__name__}")
            memo[key] = rows
            return rows

        return {rel: evaluate(self.plan.roots[rel])
                for rel in self.plan.program.head_relations()}

    # -- per-unit execution with reuse --------------------------------------

    def _run_unit(self, unit: IEUnit, input_rows: List[TupleRow],
                  page: Page, q_page: Optional[Page],
                  readers: Dict[str, Tuple[ReuseFileReader, ReuseFileReader]],
                  writers: Dict[str, Tuple[ReuseFileWriter, ReuseFileWriter]],
                  cache: MatchCache, unit_stats: UnitRunStats,
                  timer: Timer) -> List[TupleRow]:
        matcher_name = self.assignment.of(unit)
        writer_i, writer_o = writers[unit.uid]
        ctx = EvalContext(page.text, page.did)

        prev_inputs: List[InputTuple] = []
        prev_outputs: Dict[int, List[OutputTuple]] = {}
        if q_page is not None and self._memory_capture is not None:
            mem = self._memory_capture.get(unit.uid)
            if mem is not None:
                prev_inputs = mem[0].get(q_page.did, [])
                prev_outputs = group_outputs_by_input(
                    mem[1].get(q_page.did, []))
        elif q_page is not None:
            reader_pair = readers.get(unit.uid)
            if reader_pair is not None:
                try:
                    with timer.measure(IO):
                        prev_inputs = reader_pair[0].read_page_inputs(
                            q_page.did)
                        prev_outputs = group_outputs_by_input(
                            reader_pair[1].read_page_outputs(q_page.did))
                except (ValueError, KeyError):
                    # A truncated or corrupt reuse file (e.g. the
                    # previous run died mid-write) must never break the
                    # current run: drop reuse for this unit and extract
                    # from scratch for the rest of the snapshot.
                    dropped = readers.pop(unit.uid, None)
                    if dropped is not None:
                        dropped[0].close()
                        dropped[1].close()
                    prev_inputs = []
                    prev_outputs = {}

        # A match shorter than 2β + 2 enables no copying, so ST skips
        # such segments — but large-β units (CRFs) still benefit from
        # full-region matches of short regions, hence the cap.
        matcher = make_matcher(
            matcher_name, cache,
            min_length=max(8, min(2 * unit.beta + 2, 32)))

        out_rows: List[TupleRow] = []
        for row in input_rows:
            region = row[unit.in_var]
            if not isinstance(region, Span):
                raise TypeError(f"unit {unit.uid}: input {unit.in_var!r} "
                                "is not a span")
            unit_stats.input_tuples += 1
            unit_stats.input_chars += len(region)
            c = ""
            with timer.measure(IO):
                tid = writer_i.append_input(page.did, region.start,
                                            region.end, c)

            copied: List[Dict[str, object]] = []
            if (q_page is None or matcher_name == DN_NAME
                    or not prev_inputs):
                extraction_regions = [region.interval]
                derivation = None
            else:
                candidates = {pi.tid: pi for pi in prev_inputs if pi.c == c}
                with timer.measure(MATCH):
                    unit_stats.matcher_calls += len(candidates)
                    segments: List[MatchSegment] = matcher.match_many(
                        page.text, region.interval, q_page.text,
                        {tid: pi.interval
                         for tid, pi in candidates.items()})
                    if matcher_name not in (DN_NAME, RU_NAME):
                        # Fresh matching work (ST/UD/plug-ins like WS)
                        # is recorded for RU units to recycle.
                        cache.record(segments)
                with timer.measure(COPY):
                    derivation = derive_reuse(
                        region.interval, page.did, segments, candidates,
                        prev_outputs, unit.alpha, unit.beta)
                copied = derivation.copied
                extraction_regions = derivation.extraction_regions
                unit_stats.copied_tuples += len(copied)
                unit_stats.copy_zone_chars += derivation.covered_chars()

            fresh: List[Dict[str, object]] = []
            for er in extraction_regions:
                text = page.text[er.start:er.end]
                unit_stats.extracted_chars += len(text)
                with timer.measure(EXTRACT):
                    extractions = unit.extractor.extract(text)
                er_span = Span(page.did, er.start, er.end)
                for extraction in extractions:
                    extent = extraction.extent()
                    abs_extent = (None if extent is None else
                                  (extent[0] + er.start,
                                   extent[1] + er.start))
                    if derivation is not None and not extraction_keep(
                            abs_extent, er, region.interval, unit.beta):
                        continue
                    fields = unit.ie_node.extension_fields(extraction,
                                                           er_span)
                    post = unit.apply_absorbed(fields, ctx)
                    if post is not None:
                        fresh.append(post)

            # Copy zones and extraction regions overlap by design (the
            # α+β margins), so only the mixed case can hold duplicates.
            with timer.measure(COPY):
                if not fresh:
                    extensions = copied
                elif not copied:
                    extensions = fresh
                else:
                    extensions = dedupe_extensions(copied + fresh)
            unit_stats.output_tuples += len(extensions)
            with timer.measure(IO):
                for ext in extensions:
                    writer_o.append_output(page.did, tid,
                                           encode_fields(ext))
            for ext in extensions:
                if unit.projects_away_input:
                    out_rows.append(dict(ext))
                else:
                    out_rows.append({**row, **ext})
        return out_rows
