"""The Delex execution engine (Sections 4, 5, 7).

Processes a corpus snapshot one page at a time, in canonical page
order (sorted by page id), so each unit's reuse files are written in a
stable order and scanned sequentially exactly once. Per IE unit and
input region it:

1. records the input tuple to ``I_U^{n+1}``;
2. matches the region against the unit's recorded input regions on the
   previous version of the page, with the unit's assigned matcher
   (ST/UD results are recorded in the page pair's match cache so RU
   units can recycle them);
3. derives copy zones and extraction regions (α/β safety), copies
   recorded output tuples, re-extracts only the extraction regions;
4. records all output tuples (copied or fresh) to ``O_U^{n+1}`` and
   hands them to the parent operator.

Every other operator (joins, non-absorbed σ/π) runs as plain
relational evaluation.

Execution is routed through :mod:`repro.runtime`: the per-page work
lives in the picklable :class:`PageEvaluator`, and
:class:`ReuseEngine` drives it either serially (streaming the reuse
files) or across an executor's workers (pages batched by the
:class:`~repro.runtime.scheduler.PageScheduler`, per-worker capture
buffers merged back byte-identically by
:func:`~repro.runtime.capture.replay_captures`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..check import invariants as _inv
from ..corpus.snapshot import Snapshot
from ..fastpath.config import FastPathConfig
from ..fastpath.fingerprint import pages_identical
from ..fastpath.matchcache import CrossSnapshotMatchCache
from ..fastpath.memo import AutomatonCache, MatchMemo
from ..fastpath.stats import FastPathStats
from ..text import tokens as _tokens_mod
from ..text.tokens import TokenCache
from ..matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME, MatchCache
from ..matchers.registry import make_matcher
from ..matchers.ws import WS_NAME
from ..obs import profile as _oprof
from ..obs import trace as _otrace
from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    dedupe_rows,
    hash_join,
)
from ..plan.units import IEUnit, units_by_top
from ..runtime.capture import (
    BufferedCaptureSink,
    DirectCaptureSink,
    PageCapture,
    replay_captures,
)
from ..runtime.executor import Executor
from ..runtime.metrics import BatchMetric, build_metrics
from ..runtime.scheduler import PageScheduler
from ..runtime.shm import build_arena
from ..runtime.split import (
    PagePart,
    PartPoisoned,
    SplitConfig,
    part_extensions,
    plan_parts,
)
from ..text.document import Page
from ..text.regions import MatchSegment
from ..text.span import Span
from ..xlog.registry import EvalContext
from ..timing import COPY, EXTRACT, IO, MATCH, Timer, Timings
from .files import (
    InputTuple,
    OutputTuple,
    ReuseFileReader,
    ReuseFileWriter,
    decode_fields,
    encode_fields,
    group_outputs_by_input,
    load_reuse_file,
)
from .regions import dedupe_extensions, derive_reuse, extraction_keep
from .scope import PageMatchScope, SameUrlScope

#: Per-unit previous capture handed to the evaluator for one page:
#: ``uid -> (recorded inputs, outputs grouped by input tid)``.
PrevCapture = Dict[str, Tuple[List[InputTuple], Dict[int, List[OutputTuple]]]]


@dataclass(frozen=True)
class PlanAssignment:
    """Matcher name per IE-unit uid — one point of the plan space."""

    matchers: Dict[str, str]

    @classmethod
    def uniform(cls, units: List[IEUnit], name: str) -> "PlanAssignment":
        return cls({u.uid: name for u in units})

    @classmethod
    def all_dn(cls, units: List[IEUnit]) -> "PlanAssignment":
        return cls.uniform(units, DN_NAME)

    def of(self, unit: IEUnit) -> str:
        return self.matchers[unit.uid]

    def describe(self) -> str:
        return ",".join(f"{uid}={m}" for uid, m in sorted(self.matchers.items()))


@dataclass
class UnitRunStats:
    """Per-unit accounting for one snapshot run (feeds the optimizer)."""

    input_tuples: int = 0
    input_chars: int = 0
    output_tuples: int = 0
    copied_tuples: int = 0
    matcher_calls: int = 0
    extracted_chars: int = 0
    copy_zone_chars: int = 0
    i_blocks: int = 0
    o_blocks: int = 0

    @property
    def extraction_fraction(self) -> float:
        """The cost model's g: fraction of input chars re-extracted."""
        if self.input_chars == 0:
            return 0.0
        return min(1.0, self.extracted_chars / self.input_chars)

    def merge(self, other: "UnitRunStats") -> None:
        """Accumulate a worker's counters into this one."""
        self.input_tuples += other.input_tuples
        self.input_chars += other.input_chars
        self.output_tuples += other.output_tuples
        self.copied_tuples += other.copied_tuples
        self.matcher_calls += other.matcher_calls
        self.extracted_chars += other.extracted_chars
        self.copy_zone_chars += other.copy_zone_chars
        self.i_blocks += other.i_blocks
        self.o_blocks += other.o_blocks


@dataclass
class SnapshotRunResult:
    """Output and accounting of running a plan over one snapshot."""

    results: Dict[str, List[Tuple]]
    timings: Timings
    unit_stats: Dict[str, UnitRunStats] = field(default_factory=dict)
    pages: int = 0
    pages_with_previous: int = 0

    def total_mentions(self) -> int:
        return sum(len(rows) for rows in self.results.values())


def materialize_rows(rows: List[TupleRow], page_text: str) -> List[Tuple]:
    """Convert tuples into hashable, system-independent form."""
    out: List[Tuple] = []
    for row in rows:
        items = []
        for var in sorted(row):
            value = row[var]
            if isinstance(value, Span):
                items.append((var, (value.start, value.end,
                                    page_text[value.start:value.end])))
            else:
                items.append((var, value))
        out.append(tuple(items))
    return out


def _safe_filename(uid: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in uid)


class PageEvaluator:
    """Per-page plan evaluation with unit-level reuse.

    Holds exactly the state one page's evaluation needs — the compiled
    plan, its IE units, and the matcher assignment — and nothing tied
    to the driving process (no file handles, no scope, no executor),
    which is what makes it safe to pickle into process-pool workers.
    """

    def __init__(self, plan: CompiledPlan, units: List[IEUnit],
                 assignment: PlanAssignment,
                 fastpath: Optional[FastPathConfig] = None) -> None:
        self.plan = plan
        self.units = units
        self.assignment = assignment
        self.fastpath = FastPathConfig.from_flag(fastpath)
        # Cross-snapshot match cache, attached by the owning engine (or
        # per worker); deliberately not pickled — process workers get a
        # fresh per-worker cache, thread workers share the engine's.
        self.match_cache: Optional[CrossSnapshotMatchCache] = None
        self._unit_of_top = units_by_top(units)
        self._unit_by_uid = {u.uid: u for u in units}
        self._identity_safe = self._compute_identity_safe()

    def _compute_identity_safe(self) -> bool:
        """Can the unchanged-page identity path fire on this plan?

        RU units replay the segments ST/UD units recorded in the page
        pair's :class:`MatchCache`; the identity path skips those
        matcher runs, so the cache an RU unit would see differs from
        the slow path's. With any RU unit assigned, the identity path
        is disabled for the whole plan (the memo and automaton cache
        stay active — they reproduce the matchers' exact output, so
        the cache contents are unchanged).
        """
        return RU_NAME not in self.assignment.matchers.values()

    # ``units_by_top`` keys on ``id(node)``; raw object ids are stale
    # after a pickle round-trip, so rebuild the map on unpickle (node
    # identity between plan and units is preserved within one payload).
    def __getstate__(self) -> Dict[str, object]:
        return {"plan": self.plan, "units": self.units,
                "assignment": self.assignment, "fastpath": self.fastpath}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.match_cache = None
        self._unit_of_top = units_by_top(self.units)  # type: ignore[arg-type]
        self._unit_by_uid = {u.uid: u for u in self.units}
        self._identity_safe = self._compute_identity_safe()

    def uids(self) -> List[str]:
        return [u.uid for u in self.units]

    def unit(self, uid: str) -> IEUnit:
        return self._unit_by_uid[uid]

    def frontier_units(self) -> List[IEUnit]:
        """Units whose input is the raw page scan — the only units a
        sub-page split may precompute (a σ between scan and IE, or a
        producing unit below, would change the input region)."""
        return [u for u in self.units
                if isinstance(u.ie_node.child, ScanNode)]

    # -- per-page evaluation ----------------------------------------------

    def run_page(self, page: Page, q_page: Optional[Page],
                 prev_capture: PrevCapture, sink,
                 stats: Dict[str, UnitRunStats], timer: Timer,
                 cache: Optional[MatchCache] = None,
                 fp_stats: Optional[FastPathStats] = None,
                 precomputed: Optional[
                     Dict[str, List[Dict[str, object]]]] = None
                 ) -> Dict[str, List[TupleRow]]:
        cache = cache if cache is not None else MatchCache()
        fp_stats = fp_stats if fp_stats is not None else FastPathStats()
        node_memo: Dict[int, List[TupleRow]] = {}

        # Per-page-pair fast-path context. The match memo and automaton
        # cache live exactly as long as one (page, q_page) pair — the
        # same lifetime as the MatchCache — so keys never need a page
        # component and stale entries cannot leak across pages.
        fast = self.fastpath
        match_memo: Optional[MatchMemo] = None
        automatons: Optional[AutomatonCache] = None
        tokens: Optional[TokenCache] = None
        kernel = "auto" if fast.want("kernels") else "off"
        page_identical = False
        if q_page is not None:
            fp_stats.pages_paired += 1
            if fast.want("match_memo"):
                shared = (self.match_cache
                          if fast.want("match_cache") else None)
                match_memo = MatchMemo(fp_stats, shared=shared)
            if fast.want("automaton_cache"):
                automatons = AutomatonCache(fp_stats)
            if fast.want("kernels") and _tokens_mod.numpy_enabled():
                tokens = TokenCache()
            if (fast.want("unchanged_page") and self._identity_safe
                    and prev_capture and pages_identical(page, q_page)):
                page_identical = True
                fp_stats.pages_short_circuited += 1
                if _inv.ENABLED:
                    # --check layer: a fingerprint short circuit must
                    # really be a byte-identical pair.
                    _inv.check_identity_pair(page, q_page)

        def evaluate(node: Node) -> List[TupleRow]:
            key = id(node)
            if key in node_memo:
                return node_memo[key]
            unit = self._unit_of_top.get(key)
            if unit is not None and precomputed is not None \
                    and unit.uid in precomputed:
                child_rows = evaluate(unit.ie_node.child)
                rows = self._apply_precomputed(
                    unit, child_rows, page, precomputed[unit.uid],
                    sink, stats[unit.uid], timer)
            elif unit is not None:
                child_rows = evaluate(unit.ie_node.child)
                prev_inputs, prev_outputs = prev_capture.get(
                    unit.uid, ([], {}))
                rows = self._run_unit(unit, child_rows, page, q_page,
                                      prev_inputs, prev_outputs, sink,
                                      cache, stats[unit.uid], timer,
                                      match_memo=match_memo,
                                      automatons=automatons,
                                      tokens=tokens, kernel=kernel,
                                      page_identical=page_identical,
                                      fp_stats=fp_stats)
            elif isinstance(node, ScanNode):
                rows = [{node.var: Span(page.did, 0, len(page.text))}]
            elif isinstance(node, SelectNode):
                ctx = EvalContext(page.text, page.did)
                rows = [r for r in evaluate(node.child)
                        if node.passes(r, ctx)]
            elif isinstance(node, ProjectNode):
                rows = dedupe_rows(
                    [node.apply(r) for r in evaluate(node.child)])
            elif isinstance(node, JoinNode):
                rows = hash_join(evaluate(node.left), evaluate(node.right),
                                 node.on)
            elif isinstance(node, UnionNode):
                rows = dedupe_rows([row for child in node.children
                                    for row in evaluate(child)])
            elif isinstance(node, IENode):
                raise AssertionError(
                    f"IENode {node.extractor.name} evaluated outside its "
                    "unit — unit identification is broken")
            else:
                raise TypeError(f"unknown node type {type(node).__name__}")
            node_memo[key] = rows
            return rows

        return {rel: evaluate(self.plan.roots[rel])
                for rel in self.plan.program.head_relations()}

    # -- per-unit execution with reuse --------------------------------------

    def _run_unit(self, unit: IEUnit, input_rows: List[TupleRow],
                  page: Page, q_page: Optional[Page],
                  prev_inputs: List[InputTuple],
                  prev_outputs: Dict[int, List[OutputTuple]],
                  sink, cache: MatchCache, unit_stats: UnitRunStats,
                  timer: Timer,
                  match_memo: Optional[MatchMemo] = None,
                  automatons: Optional[AutomatonCache] = None,
                  tokens: Optional[TokenCache] = None,
                  kernel: str = "auto",
                  page_identical: bool = False,
                  fp_stats: Optional[FastPathStats] = None
                  ) -> List[TupleRow]:
        matcher_name = self.assignment.of(unit)
        ctx = EvalContext(page.text, page.did)

        # Opt-in observability (off by default: one module-attribute
        # check per unit run). Wall/CPU per unit feeds `repro obs
        # report`; the unit span carries the matcher chosen and the
        # copy/fresh split so a trace explains where the time went.
        _obs = _oprof.ENABLED or _otrace.ENABLED
        if _obs:
            _w0 = time.perf_counter()
            _c0 = time.process_time()
            _copied0 = unit_stats.copied_tuples

        # A match shorter than 2β + 2 enables no copying, so ST skips
        # such segments — but large-β units (CRFs) still benefit from
        # full-region matches of short regions, hence the cap.
        min_length = max(8, min(2 * unit.beta + 2, 32))
        matcher = make_matcher(matcher_name, cache, min_length=min_length,
                               automatons=automatons, tokens=tokens,
                               kernel=kernel)

        out_rows: List[TupleRow] = []
        for row in input_rows:
            region = row[unit.in_var]
            if not isinstance(region, Span):
                raise TypeError(f"unit {unit.uid}: input {unit.in_var!r} "
                                "is not a span")
            unit_stats.input_tuples += 1
            unit_stats.input_chars += len(region)
            c = ""
            with timer.measure(IO):
                tid = sink.append_input(unit.uid, page.did, region.start,
                                        region.end, c)

            copied: List[Dict[str, object]] = []
            if (q_page is None or matcher_name == DN_NAME
                    or not prev_inputs):
                extraction_regions = [region.interval]
                derivation = None
            else:
                identity = None
                if page_identical:
                    identity = self._identity_candidate(
                        matcher, matcher_name, min_length, region,
                        prev_inputs, c)
                if identity is not None:
                    # Unchanged-page short circuit: the slow path on a
                    # byte-identical page pair reduces to copying every
                    # recorded output of the exact-match candidate with
                    # shift 0 (full-region copy zone, no extraction
                    # regions, ``extensions = copied`` untouched).
                    # Mirror the slow path's counters so the optimizer
                    # statistics are identical either way.
                    # Counter mirror only — no timer block for a bare
                    # increment; its ~0s would cost more to attribute
                    # than it measures.
                    n_cand = sum(1 for pi in prev_inputs if pi.c == c)
                    unit_stats.matcher_calls += n_cand
                    if fp_stats is not None:
                        fp_stats.matcher_calls_avoided += n_cand
                    with timer.measure(COPY):
                        copied = [decode_fields(out.fields, page.did)
                                  for out in prev_outputs.get(
                                      identity.tid, [])]
                    extraction_regions = []
                    derivation = None
                    unit_stats.copied_tuples += len(copied)
                    unit_stats.copy_zone_chars += len(region)
                    if fp_stats is not None:
                        fp_stats.tuples_recycled += len(copied)
                else:
                    candidates = {pi.tid: pi for pi in prev_inputs
                                  if pi.c == c}
                    if _oprof.ENABLED:
                        _m0 = time.perf_counter()
                        _mc0 = time.process_time()
                    with timer.measure(MATCH):
                        unit_stats.matcher_calls += len(candidates)
                        cand_regions = {tid: pi.interval
                                        for tid, pi in candidates.items()}
                        if (match_memo is not None
                                and matcher_name not in (DN_NAME, RU_NAME)):
                            segments: List[MatchSegment] = \
                                match_memo.match_many(
                                    matcher, page.text, region.interval,
                                    q_page.text, cand_regions)
                        else:
                            segments = matcher.match_many(
                                page.text, region.interval, q_page.text,
                                cand_regions)
                        if matcher_name not in (DN_NAME, RU_NAME):
                            # Fresh matching work (ST/UD/plug-ins like
                            # WS) is recorded for RU units to recycle.
                            cache.record(segments)
                    if _oprof.ENABLED:
                        _oprof.record_matcher(
                            matcher_name, time.perf_counter() - _m0,
                            time.process_time() - _mc0)
                    with timer.measure(COPY):
                        derivation = derive_reuse(
                            region.interval, page.did, segments,
                            candidates, prev_outputs, unit.alpha,
                            unit.beta)
                    copied = derivation.copied
                    extraction_regions = derivation.extraction_regions
                    unit_stats.copied_tuples += len(copied)
                    unit_stats.copy_zone_chars += derivation.covered_chars()

            fresh: List[Dict[str, object]] = []
            for er in extraction_regions:
                text = page.text[er.start:er.end]
                unit_stats.extracted_chars += len(text)
                with timer.measure(EXTRACT):
                    extractions = unit.extractor.extract(text)
                er_span = Span(page.did, er.start, er.end)
                for extraction in extractions:
                    extent = extraction.extent()
                    abs_extent = (None if extent is None else
                                  (extent[0] + er.start,
                                   extent[1] + er.start))
                    if derivation is not None and not extraction_keep(
                            abs_extent, er, region.interval, unit.beta):
                        continue
                    fields = unit.ie_node.extension_fields(extraction,
                                                           er_span)
                    post = unit.apply_absorbed(fields, ctx)
                    if post is not None:
                        fresh.append(post)

            # Copy zones and extraction regions overlap by design (the
            # α+β margins), so only the mixed case can hold duplicates.
            with timer.measure(COPY):
                if not fresh:
                    extensions = copied
                elif not copied:
                    extensions = fresh
                else:
                    extensions = dedupe_extensions(copied + fresh)
            unit_stats.output_tuples += len(extensions)
            with timer.measure(IO):
                for ext in extensions:
                    sink.append_output(unit.uid, page.did, tid,
                                       encode_fields(ext))
            for ext in extensions:
                if unit.projects_away_input:
                    out_rows.append(dict(ext))
                else:
                    out_rows.append({**row, **ext})
        if _obs:
            _wall = time.perf_counter() - _w0
            if _oprof.ENABLED:
                _oprof.record_unit(unit.uid, _wall,
                                   time.process_time() - _c0)
            if _otrace.ENABLED:
                _otrace.event("unit", cat="unit", start=_w0, dur=_wall,
                              uid=unit.uid, matcher=matcher_name,
                              rows_in=len(input_rows),
                              rows_out=len(out_rows),
                              copied=unit_stats.copied_tuples - _copied0)
        if _inv.ENABLED:
            # --check layer: every span the unit emits stays inside
            # the page it was emitted for.
            _inv.check_rows_in_page(out_rows, page, unit=unit.uid)
        return out_rows

    def _apply_precomputed(self, unit: IEUnit,
                           input_rows: List[TupleRow], page: Page,
                           extensions: List[Dict[str, object]], sink,
                           unit_stats: UnitRunStats, timer: Timer
                           ) -> List[TupleRow]:
        """Emit split-precomputed extensions for a frontier unit.

        Mirrors :meth:`_run_unit`'s from-scratch branch byte-for-byte
        (same sink calls, same counters) with the extraction itself
        replaced by the merged part results — extraction time was
        already spent in the part workers. Only valid for frontier
        units (single scan input row) on pages the parallel driver
        verified run from scratch.
        """
        assert len(input_rows) == 1, \
            f"unit {unit.uid}: precomputed injection needs the single " \
            f"scan row, got {len(input_rows)}"
        row = input_rows[0]
        region = row[unit.in_var]
        if not isinstance(region, Span):
            raise TypeError(f"unit {unit.uid}: input {unit.in_var!r} "
                            "is not a span")
        unit_stats.input_tuples += 1
        unit_stats.input_chars += len(region)
        with timer.measure(IO):
            tid = sink.append_input(unit.uid, page.did, region.start,
                                    region.end, "")
        unit_stats.extracted_chars += len(region)
        unit_stats.output_tuples += len(extensions)
        with timer.measure(IO):
            for ext in extensions:
                sink.append_output(unit.uid, page.did, tid,
                                   encode_fields(ext))
        out_rows: List[TupleRow] = []
        for ext in extensions:
            if unit.projects_away_input:
                out_rows.append(dict(ext))
            else:
                out_rows.append({**row, **ext})
        if _inv.ENABLED:
            _inv.check_rows_in_page(out_rows, page, unit=unit.uid)
        return out_rows

    @staticmethod
    def _identity_candidate(matcher, matcher_name: str, min_length: int,
                            region: Span,
                            prev_inputs: List[InputTuple],
                            c: str) -> Optional[InputTuple]:
        """The previous input tuple whose recorded outputs the identity
        path may recycle wholesale — or None if the slow path must run.

        On a byte-identical page pair the slow path reduces to a pure
        full-region copy (shift 0, ``extensions = copied``) only when
        every condition below holds; each guard closes a case where the
        slow path would produce different bytes:

        * the matcher must emit a *full-region* self-match — UD always
          does; ST only when ``len(region) >= min_length``; WS only
          when ``len(region) >= k``. Below the threshold the slow path
          re-extracts, so fall back (it is cheap there anyway).
        * an exact-interval candidate with the same ``c`` must exist —
          otherwise there is nothing to recycle verbatim.
        * no *earlier* same-``c`` candidate may be at least as long as
          the region: such a candidate can also yield a length-|R|
          segment and would win :func:`select_p_disjoint`'s stable
          tie-break, copying from a different q interval. Later
          candidates cannot win the tie-break (stable sort, equal key)
          and shorter ones cannot reach length |R|.
        """
        length = region.end - region.start
        if length <= 0:
            return None
        if matcher_name == ST_NAME:
            if length < min_length:
                return None
        elif matcher_name == WS_NAME:
            if length < getattr(matcher, "k", 12):
                return None
        elif matcher_name != UD_NAME:
            return None
        for pi in prev_inputs:
            if pi.c != c:
                continue
            if pi.s == region.start and pi.e == region.end:
                return pi
            if pi.e - pi.s >= length:
                return None
        return None


def _engine_work_worker(state, item):
    """Process one work item in a (possibly remote) worker.

    ``state`` is ``(evaluator, arena_handle)`` — the evaluator is
    installed once per worker by the pool initializer and the arena
    handle carries page text by reference (shared memory for the
    process backend, plain references otherwise). Two item kinds:

    * ``("pages", metas, prev_slices)`` — a batch of whole pages.
      ``metas`` is ``(did, url, q_did, q_url)`` per page in canonical
      order (texts come from the arena) and ``prev_slices`` maps
      ``uid -> q_did -> (inputs, outputs)`` for exactly the previous
      pages this batch recycles from. Returns materialized rows per
      page, the buffered page captures, per-unit stats, timing parts,
      and fast-path counters.
    * ``("part", part, uids)`` — one sub-page split part. Runs each
      frontier unit's extractor over the part's (α, β)-widened chunk
      and returns the owned post-absorption extensions per unit; a
      unit whose extractor emits a span-less extraction is reported
      poisoned instead (the parent redoes it whole-page).
    """
    evaluator, arena = state
    kind = item[0]
    if kind == "part":
        return _part_work(evaluator, arena, item[1], item[2])
    _, metas, prev_slices = item
    # Process workers arrive with match_cache dropped by the pickle
    # whitelist: give each worker its own cross-snapshot cache (hits
    # accumulate across the items a worker processes; counters merge
    # through fp_stats). Thread workers share the engine's evaluator,
    # whose cache is already attached and thread-safe.
    if (getattr(evaluator, "match_cache", None) is None
            and evaluator.fastpath.want("match_cache")
            and evaluator.fastpath.want("match_memo")):
        evaluator.match_cache = CrossSnapshotMatchCache()
    timings = Timings()
    timer = Timer(timings)
    uids = evaluator.uids()
    sink = BufferedCaptureSink(uids)
    stats = {uid: UnitRunStats() for uid in uids}
    fp_stats = FastPathStats()
    page_rel_rows: List[Tuple[str, Dict[str, List[Tuple]]]] = []
    for did, url, q_did, q_url in metas:
        page = Page(did, url, arena.text("c:" + did))
        q_page = (Page(q_did, q_url, arena.text("q:" + q_did))
                  if q_did is not None else None)
        sink.begin_page(page.did)
        prev_capture: PrevCapture = {}
        if q_page is not None:
            for uid in uids:
                entry = prev_slices.get(uid, {}).get(q_page.did)
                if entry is not None:
                    prev_capture[uid] = (
                        entry[0], group_outputs_by_input(entry[1]))
        if _oprof.ENABLED:
            _p0 = time.perf_counter()
        with (_otrace.span("page", cat="page", did=page.did,
                           paired=q_page is not None)
              if _otrace.ENABLED else _otrace.NULL):
            page_rows = evaluator.run_page(page, q_page, prev_capture,
                                           sink, stats, timer,
                                           cache=MatchCache(),
                                           fp_stats=fp_stats)
        if _oprof.ENABLED:
            _oprof.record_page(page.did, time.perf_counter() - _p0)
        page_rel_rows.append((page.did, {
            rel: materialize_rows(rows, page.text)
            for rel, rows in page_rows.items()}))
    return ("pages", page_rel_rows, sink.pages, stats, timings.parts,
            fp_stats)


def _part_work(evaluator: PageEvaluator, arena, part: PagePart,
               uids: Sequence[str]):
    """Extract one split part for the given frontier units."""
    text = arena.text("c:" + part.did)
    timings = Timings()
    timer = Timer(timings)
    ctx = EvalContext(text, part.did)
    exts: Dict[str, List[Dict[str, object]]] = {}
    poisoned: List[str] = []
    for uid in uids:
        unit = evaluator.unit(uid)
        try:
            with timer.measure(EXTRACT):
                raw = part_extensions(unit.ie_node, text, part)
        except PartPoisoned:
            poisoned.append(uid)
            continue
        kept = []
        for fields in raw:
            post = unit.apply_absorbed(fields, ctx)
            if post is not None:
                kept.append(post)
        exts[uid] = kept
    return ("part", part.did, part.index, exts, poisoned, timings.parts)


class ReuseEngine:
    """Executes a compiled plan over snapshots with unit-level reuse."""

    def __init__(self, plan: CompiledPlan, units: List[IEUnit],
                 assignment: PlanAssignment,
                 scope: Optional[PageMatchScope] = None,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None,
                 fastpath: Optional[FastPathConfig] = None,
                 match_cache: Optional[CrossSnapshotMatchCache] = None,
                 split: Optional[SplitConfig] = None
                 ) -> None:
        self.plan = plan
        self.units = units
        self.assignment = assignment
        self.scope = scope if scope is not None else SameUrlScope()
        self.executor = executor
        self.scheduler = scheduler if scheduler is not None else PageScheduler()
        self.split = split if split is not None else SplitConfig()
        self.fastpath = FastPathConfig.from_flag(fastpath)
        # The cross-snapshot match cache outlives this engine: callers
        # that rebuild an engine per snapshot (DelexSystem, serve
        # views) pass their own so content-keyed match results carry
        # across the whole series.
        self.match_cache = match_cache
        if (self.match_cache is None and self.fastpath.want("match_cache")
                and self.fastpath.want("match_memo")):
            self.match_cache = CrossSnapshotMatchCache()
        self.evaluator = PageEvaluator(plan, units, assignment,
                                       fastpath=self.fastpath)
        self.evaluator.match_cache = self.match_cache
        missing = [u.uid for u in units if u.uid not in assignment.matchers]
        if missing:
            raise ValueError(f"assignment missing units {missing}")
        for uid, name in assignment.matchers.items():
            # Fail fast on unknown matcher names instead of mid-run.
            make_matcher(name, MatchCache())

    # -- snapshot-level driver -------------------------------------------

    def run_snapshot(self, snapshot: Snapshot,
                     prev_snapshot: Optional[Snapshot],
                     prev_dir: Optional[str], out_dir: str,
                     timings: Optional[Timings] = None,
                     page_rows_out: Optional[
                         Dict[str, Dict[str, List[Tuple]]]] = None
                     ) -> SnapshotRunResult:
        """Run the plan over ``snapshot``, reusing ``prev_dir`` capture.

        ``prev_snapshot``/``prev_dir`` are None for the bootstrap run.
        Capture for the *next* snapshot is written under ``out_dir``.

        ``page_rows_out``, when given, is filled with the run's
        materialized rows split by producing page (``did -> relation
        -> rows``) — the per-page attribution of this (possibly
        recycled) run, at zero extra extraction cost. The serving
        layer applies it as a delta; concatenating it in canonical
        page order reproduces ``results`` exactly.
        """
        timings = timings if timings is not None else Timings()
        timer = Timer(timings)
        os.makedirs(out_dir, exist_ok=True)
        writers = {
            u.uid: (ReuseFileWriter(self._file(out_dir, u.uid, "I")),
                    ReuseFileWriter(self._file(out_dir, u.uid, "O")))
            for u in self.units
        }
        stats = {u.uid: UnitRunStats() for u in self.units}
        results: Dict[str, List[Tuple]] = {
            rel: [] for rel in self.plan.program.head_relations()}
        pages = snapshot.canonical_pages()
        if _inv.ENABLED:
            # --check layer: reuse files are written one page group per
            # page in this exact order, so strict did monotonicity here
            # is the on-disk page-group monotonicity invariant.
            _inv.check_page_order([p.did for p in pages])
        have_prev = prev_dir is not None and prev_snapshot is not None
        parallel = (self.executor is not None and self.executor.jobs > 1
                    and len(pages) > 1)
        fp_stats = FastPathStats()
        self.scope.begin_snapshot(prev_snapshot)
        # Root trace span: one per snapshot run (never sampled away),
        # carrying the page count and the fast-path outcome so a trace
        # alone explains why this snapshot was fast or slow.
        _snap = (_otrace.span("snapshot", cat="snapshot",
                              index=snapshot.index, pages=len(pages),
                              parallel=parallel)
                 if _otrace.ENABLED else _otrace.NULL)
        try:
            with _snap, timer.measure_total():
                if parallel:
                    pages_with_prev = self._run_parallel(
                        pages, have_prev, prev_dir, writers, stats,
                        results, timer, fp_stats, page_rows_out)
                else:
                    pages_with_prev = self._run_serial(
                        pages, have_prev, prev_dir, writers, stats,
                        results, timer, fp_stats, page_rows_out)
                _snap.set("pages_with_prev", pages_with_prev)
                _snap.set("short_circuited",
                          fp_stats.pages_short_circuited)
                _snap.set("memo_hits", fp_stats.memo_hits)
        finally:
            for wi, wo in writers.values():
                wi.close()
                wo.close()
        for u in self.units:
            wi, wo = writers[u.uid]
            stats[u.uid].i_blocks = wi.blocks
            stats[u.uid].o_blocks = wo.blocks
        if timings.fastpath is None:
            timings.fastpath = fp_stats
        else:
            timings.fastpath.merge(fp_stats)
        return SnapshotRunResult(results=results, timings=timings,
                                 unit_stats=stats, pages=len(pages),
                                 pages_with_previous=pages_with_prev)

    @staticmethod
    def _file(directory: str, uid: str, kind: str) -> str:
        return os.path.join(directory, f"{_safe_filename(uid)}.{kind}.reuse")

    def _capture_paths(self, prev_dir: str
                       ) -> Dict[str, Tuple[str, str]]:
        """Units' (I, O) capture paths that exist under ``prev_dir``."""
        out: Dict[str, Tuple[str, str]] = {}
        for u in self.units:
            i_path = self._file(prev_dir, u.uid, "I")
            o_path = self._file(prev_dir, u.uid, "O")
            if os.path.exists(i_path) and os.path.exists(o_path):
                out[u.uid] = (i_path, o_path)
        return out

    # -- serial driver ----------------------------------------------------

    def _run_serial(self, pages: Sequence[Page], have_prev: bool,
                    prev_dir: Optional[str],
                    writers: Dict[str, Tuple[ReuseFileWriter,
                                             ReuseFileWriter]],
                    stats: Dict[str, UnitRunStats],
                    results: Dict[str, List[Tuple]], timer: Timer,
                    fp_stats: FastPathStats,
                    page_rows_out: Optional[
                        Dict[str, Dict[str, List[Tuple]]]] = None) -> int:
        # Imported here, not at module level: ``fastpath.reader_index``
        # subclasses ``reuse.files.ReuseFileReader``, whose package in
        # turn imports this engine module (import cycle otherwise).
        from ..fastpath.reader_index import IndexedReuseFileReader

        readers: Dict[str, Tuple[ReuseFileReader, ReuseFileReader]] = {}
        memory: Optional[Dict[str, Tuple[Dict[str, List[InputTuple]],
                                         Dict[str, List[OutputTuple]]]]] = None
        if have_prev:
            assert prev_dir is not None
            paths = self._capture_paths(prev_dir)
            if self.scope.sequential_safe:
                for uid, (i_path, o_path) in paths.items():
                    readers[uid] = (ReuseFileReader(i_path),
                                    ReuseFileReader(o_path))
            elif self.fastpath.want("reader_index"):
                # Cross-URL pairing breaks the sequential access
                # pattern; an offset index over each reuse file gives
                # O(1) out-of-order group seeks without materializing
                # whole files in memory.
                with timer.measure(IO):
                    for uid, (i_path, o_path) in paths.items():
                        readers[uid] = (IndexedReuseFileReader(i_path),
                                        IndexedReuseFileReader(o_path))
            else:
                # Cross-URL pairing breaks the sequential access
                # pattern; trade memory for random access.
                with timer.measure(IO):
                    memory = {uid: (load_reuse_file(i_path, "I"),
                                    load_reuse_file(o_path, "O"))
                              for uid, (i_path, o_path) in paths.items()}
        sink = DirectCaptureSink(writers)
        pages_with_prev = 0
        try:
            for page in pages:
                q_page = self.scope.pair_for(page)
                if q_page is not None:
                    pages_with_prev += 1
                sink.begin_page(page.did)
                if _oprof.ENABLED:
                    _p0 = time.perf_counter()
                with (_otrace.span("page", cat="page", did=page.did,
                                   paired=q_page is not None)
                      if _otrace.ENABLED else _otrace.NULL):
                    prev_capture = self._read_prev_capture(
                        q_page, readers, memory, timer)
                    page_rows = self.evaluator.run_page(
                        page, q_page, prev_capture, sink, stats, timer,
                        cache=MatchCache(), fp_stats=fp_stats)
                if _oprof.ENABLED:
                    _oprof.record_page(page.did,
                                       time.perf_counter() - _p0)
                materialized = {rel: materialize_rows(rows, page.text)
                                for rel, rows in page_rows.items()}
                if page_rows_out is not None:
                    page_rows_out[page.did] = materialized
                for rel, rows in materialized.items():
                    results[rel].extend(rows)
        finally:
            for ri, ro in readers.values():
                if isinstance(ri, IndexedReuseFileReader):
                    fp_stats.reader_index_seeks += ri.seeks + ro.seeks
                ri.close()
                ro.close()
        return pages_with_prev

    def _read_prev_capture(
            self, q_page: Optional[Page],
            readers: Dict[str, Tuple[ReuseFileReader, ReuseFileReader]],
            memory: Optional[Dict[str, Tuple[Dict[str, List[InputTuple]],
                                             Dict[str, List[OutputTuple]]]]],
            timer: Timer) -> PrevCapture:
        """Previous capture for one page, per unit.

        Sequential mode streams the unit's reuse files forward (every
        unit's files advance on every paired page, which is what keeps
        the one-pass scan aligned); memory mode indexes the preloaded
        capture. A truncated or corrupt reuse file (e.g. the previous
        run died mid-write) must never break the current run: drop
        reuse for that unit and extract from scratch for the rest of
        the snapshot.
        """
        capture: PrevCapture = {}
        if q_page is None:
            return capture
        if memory is not None:
            for uid, (mem_i, mem_o) in memory.items():
                capture[uid] = (
                    mem_i.get(q_page.did, []),
                    group_outputs_by_input(mem_o.get(q_page.did, [])))
            return capture
        for uid in list(readers):
            reader_pair = readers[uid]
            try:
                with timer.measure(IO):
                    prev_inputs = reader_pair[0].read_page_inputs(
                        q_page.did)
                    prev_outputs = group_outputs_by_input(
                        reader_pair[1].read_page_outputs(q_page.did))
                capture[uid] = (prev_inputs, prev_outputs)
            except (ValueError, KeyError):
                dropped = readers.pop(uid, None)
                if dropped is not None:
                    dropped[0].close()
                    dropped[1].close()
        return capture

    # -- parallel driver --------------------------------------------------

    def _run_parallel(self, pages: Sequence[Page], have_prev: bool,
                      prev_dir: Optional[str],
                      writers: Dict[str, Tuple[ReuseFileWriter,
                                               ReuseFileWriter]],
                      stats: Dict[str, UnitRunStats],
                      results: Dict[str, List[Tuple]],
                      timer: Timer, fp_stats: FastPathStats,
                      page_rows_out: Optional[
                          Dict[str, Dict[str, List[Tuple]]]] = None
                      ) -> int:
        assert self.executor is not None
        jobs = self.executor.jobs
        # Pair pages in canonical order in the parent so stateful
        # scopes (fingerprint claims) behave exactly as in a serial run.
        pairs = [(page, self.scope.pair_for(page)) for page in pages]
        pages_with_prev = sum(1 for _, q in pairs if q is not None)
        memory: Dict[str, Tuple[Dict[str, List[InputTuple]],
                                Dict[str, List[OutputTuple]]]] = {}
        if have_prev:
            assert prev_dir is not None
            with timer.measure(IO):
                memory = {uid: (load_reuse_file(i_path, "I"),
                                load_reuse_file(o_path, "O"))
                          for uid, (i_path, o_path)
                          in self._capture_paths(prev_dir).items()}

        # -- split planning: which pages become sub-page parts --------
        split_parts = self._plan_splits(pairs, memory, jobs)
        frontier_uids = tuple(u.uid for u in self.evaluator
                              .frontier_units())

        # -- arena: page text travels once, not per payload -----------
        texts: Dict[str, str] = {}
        for page, q in pairs:
            texts["c:" + page.did] = page.text
            if q is not None:
                texts["q:" + q.did] = q.text
        arena = build_arena(texts, self.executor.name)

        whole_pages = [p for p in pages if p.did not in split_parts]
        batches = self.scheduler.plan(whole_pages, jobs)
        by_did = {page.did: q for page, q in pairs}
        payloads: List[tuple] = []
        costs: List[float] = []
        for batch in batches:
            metas = tuple(
                (page.did, page.url,
                 by_did[page.did].did
                 if by_did[page.did] is not None else None,
                 by_did[page.did].url
                 if by_did[page.did] is not None else None)
                for page in batch.pages)
            q_dids = {q.did for page in batch.pages
                      for q in (by_did[page.did],) if q is not None}
            slices = {
                uid: {did: (mem_i.get(did, []), mem_o.get(did, []))
                      for did in q_dids
                      if did in mem_i or did in mem_o}
                for uid, (mem_i, mem_o) in memory.items()}
            payloads.append(("pages", metas, slices))
            costs.append(1 + batch.chars)
        max_alpha = max((u.alpha for u in self.evaluator
                         .frontier_units()), default=0)
        max_beta = max((u.beta for u in self.evaluator
                        .frontier_units()), default=0)
        for did in sorted(split_parts):
            for part in split_parts[did]:
                payloads.append(("part", part, frontier_uids))
                costs.append((part.hi - part.lo)
                             + max_alpha + 2 * max_beta)

        wall_start = time.perf_counter()
        try:
            work = self.executor.run_work(_engine_work_worker,
                                          (self.evaluator, arena.handle),
                                          payloads, costs)
            wall_seconds = time.perf_counter() - wall_start

            # -- merge: key everything by page id (LPT batches are not
            # contiguous, so batch-order concatenation is not canonical)
            rel_rows_by_did: Dict[str, Dict[str, List[Tuple]]] = {}
            capture_by_did: Dict[str, PageCapture] = {}
            part_exts: Dict[str, Dict[int, Dict[str, list]]] = {}
            part_poison: Dict[str, set] = {}
            batch_seconds: List[float] = []
            extra_batches: List[BatchMetric] = []
            for (seconds, value), cost in zip(work.timed, costs):
                if value[0] == "pages":
                    (_, page_rel_rows, page_caps, worker_stats, parts,
                     worker_fp) = value
                    batch_seconds.append(seconds)
                    for did, rel_rows in page_rel_rows:
                        rel_rows_by_did[did] = rel_rows
                    for cap in page_caps:
                        capture_by_did[cap.did] = cap
                    for uid, ws in worker_stats.items():
                        stats[uid].merge(ws)
                    for category, secs in parts.items():
                        timer.timings.add(category, secs)
                    fp_stats.merge(worker_fp)
                else:
                    _, did, index, exts, poisoned, parts = value
                    part_exts.setdefault(did, {})[index] = exts
                    part_poison.setdefault(did, set()).update(poisoned)
                    for category, secs in parts.items():
                        timer.timings.add(category, secs)
                    extra_batches.append(BatchMetric(
                        index=index, pages=0, chars=int(cost),
                        seconds=seconds, kind="part"))

            # -- assembly: re-run split pages in the parent with the
            # frontier extractions precomputed; chained units and
            # captures run here, in canonical order.
            pair_by_did = {page.did: (page, q) for page, q in pairs}
            self._assemble_split_pages(
                split_parts, part_exts, part_poison, frontier_uids,
                pair_by_did, memory, rel_rows_by_did, capture_by_did,
                stats, timer, fp_stats)

            for page in pages:
                rel_rows = rel_rows_by_did[page.did]
                if page_rows_out is not None:
                    page_rows_out[page.did] = rel_rows
                for rel, rows in rel_rows.items():
                    results[rel].extend(rows)
            with timer.measure(IO):
                replay_captures(
                    [capture_by_did[p.did] for p in pages], writers)
        finally:
            arena.close()
        timer.timings.runtime = build_metrics(
            self.executor.name, jobs,
            wall_seconds=wall_seconds, batches=batches,
            batch_seconds=batch_seconds,
            merge_with=timer.timings.runtime,
            extra_batches=extra_batches, steals=work.steals,
            split_pages=len(split_parts),
            split_parts=sum(len(v) for v in split_parts.values()),
            shared_text=arena.shared, slot_busy=work.slot_busy)
        return pages_with_prev

    def _plan_splits(self, pairs, memory, jobs
                     ) -> Dict[str, List[PagePart]]:
        """Pages large enough to split, with their owned parts.

        A page is eligible only when every frontier unit runs from
        scratch on it — the same condition :meth:`PageEvaluator
        ._run_unit` uses to skip the reuse machinery — because part
        workers extract blindly; a unit that would recycle must see
        the whole page.
        """
        frontier = self.evaluator.frontier_units()
        if not self.split.enabled or not frontier or jobs <= 1:
            return {}
        total_chars = sum(len(p.text) for p, _ in pairs)
        max_alpha = max(u.alpha for u in frontier)
        max_beta = max(u.beta for u in frontier)
        out: Dict[str, List[PagePart]] = {}
        for page, q in pairs:
            if not self.split.should_split(len(page.text), total_chars,
                                           jobs):
                continue
            if not self._frontier_from_scratch(q, memory, frontier):
                continue
            parts = plan_parts(page.did, len(page.text), jobs,
                               self.split, max_alpha, max_beta)
            if len(parts) > 1:
                out[page.did] = parts
        return out

    def _frontier_from_scratch(self, q_page: Optional[Page], memory,
                               frontier: List[IEUnit]) -> bool:
        if q_page is None:
            return True
        for unit in frontier:
            if self.assignment.of(unit) == DN_NAME:
                continue
            mem = memory.get(unit.uid)
            if mem is not None and mem[0].get(q_page.did):
                return False
        return True

    def _assemble_split_pages(self, split_parts, part_exts,
                              part_poison, frontier_uids, pair_by_did,
                              memory, rel_rows_by_did, capture_by_did,
                              stats, timer, fp_stats) -> None:
        """Finish split pages in the parent, canonical order.

        Concatenating each unit's part extensions in part order equals
        the serial whole-page extraction sequence (ownership is a
        stable partition of it); the page then re-runs through
        :meth:`PageEvaluator.run_page` with those units precomputed,
        which replays the capture calls and evaluates chained units
        and relational operators exactly as a serial run would. A
        poisoned or incomplete unit is simply left out of
        ``precomputed`` and extracts whole-page here — always correct,
        just not parallel.
        """
        uids = self.evaluator.uids()
        for did in sorted(split_parts):
            parts = split_parts[did]
            by_index = part_exts.get(did, {})
            poisoned = part_poison.get(did, set())
            merged: Dict[str, List[Dict[str, object]]] = {}
            for uid in frontier_uids:
                if uid in poisoned:
                    continue
                if any(p.index not in by_index
                       or uid not in by_index[p.index]
                       for p in parts):
                    continue
                merged[uid] = [ext for p in parts
                               for ext in by_index[p.index][uid]]
            page, q_page = pair_by_did[did]
            prev_capture: PrevCapture = {}
            if q_page is not None:
                for uid, (mem_i, mem_o) in memory.items():
                    prev_capture[uid] = (
                        mem_i.get(q_page.did, []),
                        group_outputs_by_input(
                            mem_o.get(q_page.did, [])))
            sink = BufferedCaptureSink(uids)
            sink.begin_page(page.did)
            with (_otrace.span("page", cat="page", did=page.did,
                               paired=q_page is not None, split=True)
                  if _otrace.ENABLED else _otrace.NULL):
                page_rows = self.evaluator.run_page(
                    page, q_page, prev_capture, sink, stats, timer,
                    cache=MatchCache(), fp_stats=fp_stats,
                    precomputed=merged)
            rel_rows_by_did[did] = {
                rel: materialize_rows(rows, page.text)
                for rel, rows in page_rows.items()}
            capture_by_did[did] = sink.pages[0]
