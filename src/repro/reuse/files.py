"""Sequential, block-buffered reuse files (Section 4).

While a tree executes on snapshot ``n``, every IE unit U appends its
input tuples to ``I_U^n`` and its output tuples to ``O_U^n``. Appends
go through a one-block memory buffer per file; a block is flushed when
full, so the I/O overhead is exactly the file size in blocks. Files
are later read strictly sequentially, one page group at a time, in the
same page order they were written — that is what lets the reuse engine
scan every file exactly once per snapshot (Section 5.2).

Record format: each page group starts with a page-header record,
followed by that page's tuple records, all JSON lines. JSON keeps the
files debuggable; the block-buffer layer is where the I/O behavior the
paper models lives.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

from ..text.span import Interval

BLOCK_SIZE = 4096


@dataclass(frozen=True)
class InputTuple:
    """A recorded IE-unit input: region [s, e) of page ``did`` plus the
    serialized extra parameter values ``c``."""

    tid: int
    did: str
    s: int
    e: int
    c: str = ""

    @property
    def interval(self) -> Interval:
        return Interval(self.s, self.e)


@dataclass(frozen=True)
class OutputTuple:
    """A recorded IE-unit output: extension fields (absolute offsets in
    the page the unit ran on), joined to its input tuple by ``itid``."""

    tid: int
    itid: int
    fields: Tuple[Tuple[str, str, Any, Any], ...]
    # Each field is (name, kind, a, b): kind "s" -> span [a, b),
    # kind "v" -> scalar a (b unused).

    def extent(self) -> Optional[Tuple[int, int]]:
        spans = [(a, b) for _, kind, a, b in self.fields if kind == "s"]
        if not spans:
            return None
        return (min(a for a, _ in spans), max(b for _, b in spans))


def encode_fields(fields: Dict[str, Any]) -> Tuple[Tuple[str, str, Any, Any], ...]:
    """Encode extension fields; spans become ("s", start, end)."""
    from ..text.span import Span

    out: List[Tuple[str, str, Any, Any]] = []
    for name in sorted(fields):
        value = fields[name]
        if isinstance(value, Span):
            out.append((name, "s", value.start, value.end))
        else:
            out.append((name, "v", value, None))
    return tuple(out)


def decode_fields(fields: Tuple[Tuple[str, str, Any, Any], ...],
                  did: str) -> Dict[str, Any]:
    """Decode extension fields back into tuple values for page ``did``."""
    from ..text.span import Span

    out: Dict[str, Any] = {}
    for name, kind, a, b in fields:
        out[name] = Span(did, a, b) if kind == "s" else a
    return out


class BlockWriter:
    """Append-only writer with one block of write buffering."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._file: Optional[IO[bytes]] = open(path, "wb")
        self._buffer = bytearray()
        self.bytes_written = 0
        self.flushes = 0

    def append(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            raise ValueError(f"writer for {self.path} is closed")
        self.append_line(json.dumps(record, separators=(",", ":")))

    def append_line(self, line: str) -> None:
        """Append one pre-serialized JSON line (hot path)."""
        if self._file is None:
            raise ValueError(f"writer for {self.path} is closed")
        data = line.encode("utf-8")
        self._buffer += data
        self._buffer += b"\n"
        self.bytes_written += len(data) + 1
        if len(self._buffer) >= BLOCK_SIZE:
            self._flush()

    def _flush(self) -> None:
        if self._buffer and self._file is not None:
            self._file.write(self._buffer)
            self._buffer.clear()
            self.flushes += 1

    @property
    def blocks(self) -> int:
        """File size in blocks (the cost-model unit)."""
        return (self.bytes_written + BLOCK_SIZE - 1) // BLOCK_SIZE

    def close(self) -> None:
        if self._file is not None:
            self._flush()
            self._file.close()
            self._file = None

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ReuseFileWriter:
    """Writes one unit's I or O reuse file, grouped by page."""

    PAGE_MARKER = "@page"

    def __init__(self, path: str) -> None:
        self._writer = BlockWriter(path)
        self._next_tid = 0
        self._current_page: Optional[str] = None

    @property
    def path(self) -> str:
        return self._writer.path

    @property
    def blocks(self) -> int:
        return self._writer.blocks

    def begin_page(self, did: str) -> None:
        self._writer.append_line(
            f'{{"{self.PAGE_MARKER}":{json.dumps(did)}}}')
        self._current_page = did

    def append_input(self, did: str, s: int, e: int, c: str = "") -> int:
        self._require_page(did)
        tid = self._next_tid
        self._next_tid += 1
        self._writer.append_line(
            f'{{"t":{tid},"s":{s},"e":{e},"c":{json.dumps(c)}}}')
        return tid

    def append_output(self, did: str, itid: int,
                      fields: Tuple[Tuple[str, str, Any, Any], ...]) -> int:
        self._require_page(did)
        tid = self._next_tid
        self._next_tid += 1
        self._writer.append_line(
            f'{{"t":{tid},"i":{itid},"f":{json.dumps(list(fields))}}}')
        return tid

    def _require_page(self, did: str) -> None:
        if self._current_page != did:
            raise ValueError(
                f"page group {did!r} not started (current: "
                f"{self._current_page!r})")

    def close(self) -> None:
        self._writer.close()


class ReuseFileReader:
    """Strictly sequential page-group reader of a reuse file.

    Reads in binary mode: ``bytes_read`` counts actual UTF-8 bytes
    (a text-mode ``len(line)`` counts *characters*, which undercounts
    multi-byte pages and skews the block-based I/O cost model), and
    byte offsets stay meaningful for the fast path's offset-indexed
    subclass (:class:`repro.fastpath.reader_index.IndexedReuseFileReader`).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[IO[bytes]] = open(path, "rb")
        self._pushback: Optional[Dict[str, Any]] = None
        self.bytes_read = 0
        self._exhausted = False

    def _next_record(self) -> Optional[Dict[str, Any]]:
        if self._pushback is not None:
            record = self._pushback
            self._pushback = None
            return record
        if self._file is None:
            return None
        line = self._file.readline()
        if not line:
            self._exhausted = True
            return None
        self.bytes_read += len(line)
        return json.loads(line)

    def seek_page(self, did: str) -> bool:
        """Advance to the page group for ``did``; False if absent.

        Only forward seeks work (groups are read in written order);
        intervening groups — pages that left the corpus — are skipped.
        """
        while True:
            record = self._next_record()
            if record is None:
                return False
            marker = record.get(ReuseFileWriter.PAGE_MARKER)
            if marker == did:
                return True
            # Skip a foreign page group's tuples (or marker).

    def read_group(self, did: str) -> List[Dict[str, Any]]:
        """Read all tuple records of the current page group."""
        records: List[Dict[str, Any]] = []
        while True:
            record = self._next_record()
            if record is None:
                return records
            if ReuseFileWriter.PAGE_MARKER in record:
                self._pushback = record
                return records
            records.append(record)

    def read_page_inputs(self, did: str) -> List[InputTuple]:
        if not self.seek_page(did):
            return []
        return [InputTuple(tid=r["t"], did=did, s=r["s"], e=r["e"],
                           c=r.get("c", ""))
                for r in self.read_group(did)]

    def read_page_outputs(self, did: str) -> List[OutputTuple]:
        if not self.seek_page(did):
            return []
        return [OutputTuple(tid=r["t"], itid=r["i"],
                            fields=tuple(tuple(f) for f in r["f"]))
                for r in self.read_group(did)]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def blocks_read(self) -> int:
        return (self.bytes_read + BLOCK_SIZE - 1) // BLOCK_SIZE


def group_outputs_by_input(outputs: List[OutputTuple]
                           ) -> Dict[int, List[OutputTuple]]:
    grouped: Dict[int, List[OutputTuple]] = {}
    for out in outputs:
        grouped.setdefault(out.itid, []).append(out)
    return grouped


def load_reuse_file(path: str, kind: str
                    ) -> Dict[str, List[Any]]:
    """Load a whole reuse file into memory, grouped by page.

    ``kind`` is "I" or "O". Used when the page-matching scope pairs
    pages across URLs, which breaks the sequential-scan access pattern
    (see :mod:`repro.reuse.scope`).
    """
    out: Dict[str, List[Any]] = {}
    for did, records in iter_all_pages(path):
        if kind == "I":
            out[did] = [InputTuple(tid=r["t"], did=did, s=r["s"],
                                   e=r["e"], c=r.get("c", ""))
                        for r in records]
        else:
            out[did] = [OutputTuple(tid=r["t"], itid=r["i"],
                                    fields=tuple(tuple(f) for f in r["f"]))
                        for r in records]
    return out


def iter_all_pages(path: str) -> Iterator[Tuple[str, List[Dict[str, Any]]]]:
    """Debug/analysis helper: stream (did, records) for a whole file."""
    with open(path, "r", encoding="utf-8") as f:
        did: Optional[str] = None
        records: List[Dict[str, Any]] = []
        for line in f:
            record = json.loads(line)
            marker = record.get(ReuseFileWriter.PAGE_MARKER)
            if marker is not None:
                if did is not None:
                    yield did, records
                did = marker
                records = []
            else:
                records.append(record)
        if did is not None:
            yield did, records
