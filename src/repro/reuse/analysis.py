"""Capture-file analysis: inspect what a run recorded.

The paper's storage/I-O accounting (end of Section 4) bounds the total
reuse-file footprint by O(|T| · B(P_n)). These helpers measure the
actual footprint of a capture directory so deployments can check that
bound, find units with runaway output, and debug reuse behavior.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..plan.units import IEUnit
from .files import BLOCK_SIZE, iter_all_pages


@dataclass
class UnitCaptureStats:
    """Footprint of one unit's I/O reuse files."""

    uid: str
    input_tuples: int = 0
    output_tuples: int = 0
    i_bytes: int = 0
    o_bytes: int = 0
    pages: int = 0

    @property
    def i_blocks(self) -> int:
        return (self.i_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE

    @property
    def o_blocks(self) -> int:
        return (self.o_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE

    @property
    def outputs_per_input(self) -> float:
        if self.input_tuples == 0:
            return 0.0
        return self.output_tuples / self.input_tuples


@dataclass
class CaptureReport:
    """Footprint of a whole capture directory."""

    directory: str
    units: Dict[str, UnitCaptureStats] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(u.i_bytes + u.o_bytes for u in self.units.values())

    @property
    def total_blocks(self) -> int:
        return sum(u.i_blocks + u.o_blocks for u in self.units.values())

    def within_paper_bound(self, corpus_bytes: int,
                           slack: float = 4.0) -> bool:
        """Check the O(|T| · B(P_n)) storage bound of Section 4.

        ``slack`` absorbs record framing overhead (tids, JSON syntax);
        the bound is about asymptotics, not constants.
        """
        bound = slack * len(self.units) * max(1, corpus_bytes)
        return self.total_bytes <= bound

    def render(self) -> str:
        lines = [f"capture {self.directory}",
                 f"{'unit':<24}{'pages':>7}{'inputs':>8}{'outputs':>9}"
                 f"{'I blk':>7}{'O blk':>7}{'out/in':>8}"]
        for uid in sorted(self.units):
            u = self.units[uid]
            lines.append(f"{uid:<24}{u.pages:>7}{u.input_tuples:>8}"
                         f"{u.output_tuples:>9}{u.i_blocks:>7}"
                         f"{u.o_blocks:>7}{u.outputs_per_input:>8.2f}")
        lines.append(f"total: {self.total_bytes} bytes "
                     f"({self.total_blocks} blocks)")
        return "\n".join(lines)


def _unit_files(directory: str) -> Dict[str, Dict[str, str]]:
    """Map uid -> {"I": path, "O": path} for a capture directory."""
    out: Dict[str, Dict[str, str]] = {}
    for name in os.listdir(directory):
        if not name.endswith(".reuse"):
            continue
        stem = name[:-len(".reuse")]
        uid, _, kind = stem.rpartition(".")
        if kind in ("I", "O") and uid:
            out.setdefault(uid, {})[kind] = os.path.join(directory, name)
    return out


def analyze_capture(directory: str,
                    units: Optional[Sequence[IEUnit]] = None
                    ) -> CaptureReport:
    """Scan a capture directory and report per-unit footprints.

    ``units`` restricts (and labels) the report; by default every
    ``*.I.reuse``/``*.O.reuse`` pair found is analyzed.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(directory)
    files = _unit_files(directory)
    if units is not None:
        from .engine import _safe_filename
        wanted = {_safe_filename(u.uid) for u in units}
        files = {uid: paths for uid, paths in files.items()
                 if uid in wanted}
    report = CaptureReport(directory=directory)
    for uid, paths in sorted(files.items()):
        stats = UnitCaptureStats(uid=uid)
        if "I" in paths:
            stats.i_bytes = os.path.getsize(paths["I"])
            for _, records in iter_all_pages(paths["I"]):
                stats.pages += 1
                stats.input_tuples += len(records)
        if "O" in paths:
            stats.o_bytes = os.path.getsize(paths["O"])
            for _, records in iter_all_pages(paths["O"]):
                stats.output_tuples += len(records)
        report.units[uid] = stats
    return report


def mentions_per_page(o_path: str) -> List[int]:
    """Output-tuple counts per page of one O reuse file (in page
    order) — handy for spotting pathological pages."""
    return [len(records) for _, records in iter_all_pages(o_path)]
