"""The safe/unsafe update classifier.

Kassaie & Tompa's question, asked per arriving page: is in-place
differential maintenance *provably sufficient* for this update, or
must the page fall back to re-extraction? Two inputs decide it here:

* **The plan's selection properties** — static, computed once. Delta
  propagation keeps every row the edit's retract/add cancellation did
  not touch, *including its recorded σ verdicts*. That is sound only
  if every selection in the plan is row-determined
  (:class:`~repro.xlog.registry.PFunctionEntry.row_determined`): its
  verdict reads nothing but the argument values. ``immBefore`` reads
  the page text *between* its spans — a gap an edit can rewrite
  without touching either span — so any plan using it makes every
  changed page unsafe for delta propagation.
* **The edit geometry** — dynamic, per page. The common prefix/suffix
  window between the old and new text bounds where extractor regions
  can differ (the (α, β) locality the paper's extractors declare: an
  extraction depends only on its region's content). The IE-node
  region memo already makes delta propagation *correct* regardless of
  where the edit falls, so geometry decides *economy*: when the edit
  window covers most of the page nearly every region re-extracts
  anyway, and the fallback — one clean re-extraction, state rebuilt —
  is cheaper than threading thousands of retract/add pairs through
  the operator states.

Deleted and new (including resurrected) pages are always safe: a pure
retraction is served entirely from recorded state (no extractor, no σ
re-evaluation — even ``immBefore`` verdicts are only *replayed*, never
recomputed), and a pure addition evaluates everything fresh against
the new page.

The classifier only decides; :mod:`repro.delta.maintain` executes the
decisions and :mod:`repro.obs` gets the per-decision counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..plan.compile import CompiledPlan
from ..plan.operators import SelectNode

#: Every decision the classifier can make about one page of one
#: arriving snapshot. ``delta`` and ``fallback`` apply to changed
#: pages only; the rest restate the diff category (recorded uniformly
#: so the obs counters cover the whole snapshot).
DECISIONS = ("unchanged", "new", "resurrected", "deleted", "delta",
             "fallback")

#: Changed pages whose edit window covers more than this fraction of
#: the new text fall back to re-extraction: beyond it, most extractor
#: regions intersect the edit and delta propagation degenerates into
#: re-extraction with bookkeeping on top.
DEFAULT_MAX_EDIT_FRACTION = 0.6


@dataclass(frozen=True)
class PageDecision:
    """One page's classification for one snapshot apply."""

    did: str
    decision: str
    reason: str
    #: Edit-window share of the new text (changed pages only).
    edit_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.decision not in DECISIONS:
            raise ValueError(f"unknown decision {self.decision!r}")


def plan_delta_blockers(plan: CompiledPlan) -> Tuple[str, ...]:
    """Names of the plan's non-row-determined selections.

    A non-empty result means *every* changed page of this plan is
    unsafe for in-place delta propagation (retained rows could carry
    stale verdicts); new and deleted pages stay safe regardless.
    """
    blockers = {node.entry.name for node in plan.all_nodes()
                if isinstance(node, SelectNode)
                and not node.entry.row_determined}
    return tuple(sorted(blockers))


def edit_window(old_text: str, new_text: str) -> Tuple[int, int]:
    """The (prefix, suffix) lengths shared by the two versions.

    The window between them is the only place extractor regions can
    differ. Prefix is matched first and the suffix never overlaps it,
    so ``prefix + suffix <= min(len(old), len(new))``.
    """
    limit = min(len(old_text), len(new_text))
    prefix = 0
    while prefix < limit and old_text[prefix] == new_text[prefix]:
        prefix += 1
    suffix = 0
    while (suffix < limit - prefix
           and old_text[len(old_text) - 1 - suffix]
           == new_text[len(new_text) - 1 - suffix]):
        suffix += 1
    return prefix, suffix


class UpdateClassifier:
    """Per-page delta-vs-fallback decisions for one compiled plan."""

    def __init__(self, plan: CompiledPlan,
                 max_edit_fraction: float = DEFAULT_MAX_EDIT_FRACTION
                 ) -> None:
        self.blockers = plan_delta_blockers(plan)
        self.max_edit_fraction = max_edit_fraction

    def classify_changed(self, did: str, old_text: str,
                         new_text: str) -> PageDecision:
        """Decide one changed page: propagate the delta, or fall back."""
        prefix, suffix = edit_window(old_text, new_text)
        window = max(len(new_text) - prefix - suffix, 0)
        fraction = window / max(len(new_text), 1)
        if self.blockers:
            return PageDecision(
                did=did, decision="fallback",
                reason=("non-row-determined selection(s): "
                        + ", ".join(self.blockers)),
                edit_fraction=fraction)
        if fraction > self.max_edit_fraction:
            return PageDecision(
                did=did, decision="fallback",
                reason=(f"edit window covers {fraction:.0%} of the page "
                        f"(> {self.max_edit_fraction:.0%})"),
                edit_fraction=fraction)
        return PageDecision(
            did=did, decision="delta",
            reason=f"edit window {fraction:.0%}, all selections "
                   "row-determined",
            edit_fraction=fraction)
