"""DeltaMaintainer: one snapshot diff in, one store delta out.

Owns everything the delta rules accumulate across generations — one
:class:`~repro.delta.rules.PageState` per live page plus, per head
relation, the *cross-page* layer the per-page rules cannot see:

* a :class:`~repro.delta.deltaset.Multiset` counting, per canonical
  tuple, how many pages currently produce it. Pages contribute their
  root supports (deduplicated per page), so the count is a page count
  and a tuple survives one producer's retraction while another page
  still yields it — the relation-level face of multiplicity-zero
  cancellation;
* the published sorted index, maintained by merging each apply's
  appeared/vanished support transitions into the previous sorted
  tuple — O(index + delta) per apply instead of the store's
  O(corpus-wide dedupe + sort) rebuild. Ordering matches
  :func:`repro.serve.store._sort_key` exactly, so a delta-maintained
  generation is byte-identical to a batch-built one.

``apply`` executes the :class:`~repro.delta.classify.UpdateClassifier`
decisions: deletions drain through the rules (pure retractions, zero
extractor calls), new/resurrected pages flow as pure additions,
changed-safe pages propagate their edit in place, and changed-unsafe
pages take the fallback — old state discarded, page re-derived fresh
through the same rules, the two root supports differenced. The
fallback is page-*granular* but still tuple-*granular* at the store:
only the rows that actually changed reach the relation index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..plan.compile import CompiledPlan
from .classify import PageDecision, UpdateClassifier
from .deltaset import DeltaSet, Multiset
from .rows import FrozenRow
from .rules import DeltaCounters, PagePlanDelta, PageState


def _sort_key(tup: tuple) -> str:
    """Must order exactly like :func:`repro.serve.store._sort_key`
    (kept local — serve imports delta, not the other way around)."""
    return repr(tup)


class DeltaStateError(RuntimeError):
    """Maintained delta state violated an invariant (e.g. a deleted
    page's state did not drain to empty)."""


@dataclass
class DeltaApplyResult:
    """Everything one differential apply produced.

    ``upserts``/``deletes`` feed :meth:`TupleStore.apply_delta`
    unchanged; ``relations`` is the pre-sorted index the store can
    adopt verbatim instead of rebuilding.
    """

    upserts: Dict[str, Dict[str, List[FrozenRow]]]
    deletes: Tuple[str, ...]
    relations: Dict[str, Tuple[FrozenRow, ...]]
    decisions: Dict[str, PageDecision]
    counters: DeltaCounters
    #: Total absolute tuple multiplicity that crossed the relation
    #: layer — the true "size" of this generation's change.
    delta_weight: int = 0

    def decision_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for decision in self.decisions.values():
            out[decision.decision] = out.get(decision.decision, 0) + 1
        return out

    @property
    def fallback_ratio(self) -> float:
        """Share of *changed* pages that fell back to re-extraction."""
        counts = self.decision_counts()
        changed = counts.get("delta", 0) + counts.get("fallback", 0)
        if changed == 0:
            return 0.0
        return counts.get("fallback", 0) / changed

    def to_dict(self) -> Dict[str, object]:
        return {
            "decisions": self.decision_counts(),
            "fallback_ratio": self.fallback_ratio,
            "delta_weight": self.delta_weight,
            **self.counters.to_dict(),
        }


def merge_sorted_index(old: Tuple[tuple, ...], appeared: Sequence[tuple],
                       vanished: Sequence[tuple]) -> Tuple[tuple, ...]:
    """Fold support transitions into a sorted index in one pass."""
    if not appeared and not vanished:
        return old
    adds = sorted(appeared, key=_sort_key)
    gone = set(vanished)
    out: List[tuple] = []
    i = 0
    for tup in old:
        if tup in gone:
            continue
        key = _sort_key(tup)
        while i < len(adds) and _sort_key(adds[i]) < key:
            out.append(adds[i])
            i += 1
        out.append(tup)
    out.extend(adds[i:])
    return tuple(out)


class DeltaMaintainer:
    """Differential maintenance of one compiled plan over a corpus."""

    def __init__(self, plan: CompiledPlan,
                 classifier: Optional[UpdateClassifier] = None) -> None:
        self.plan_delta = PagePlanDelta(plan)
        self.classifier = classifier or UpdateClassifier(plan)
        self.states: Dict[str, PageState] = {}
        self.relations: Dict[str, Multiset] = {
            rel: Multiset() for rel in self.plan_delta.root_index}
        self.index: Dict[str, Tuple[tuple, ...]] = {
            rel: () for rel in self.plan_delta.root_index}

    def apply(self, snapshot, diff, check: bool = False
              ) -> DeltaApplyResult:
        """Run one snapshot diff through the delta rules.

        ``snapshot`` is a :class:`~repro.corpus.snapshot.Snapshot`,
        ``diff`` a :class:`~repro.serve.views.SnapshotDiff` (duck-typed
        to avoid importing the serving layer). With ``check`` on,
        deleted pages' states are verified to drain to empty — the
        cheap structural half of the ``--check on`` guard; the
        expensive half (the batch oracle) lives in the view.
        """
        counters = DeltaCounters()
        decisions: Dict[str, PageDecision] = {}
        rel_delta: Dict[str, DeltaSet] = {
            rel: DeltaSet() for rel in self.relations}
        upserts: Dict[str, Dict[str, List[FrozenRow]]] = {}
        new_texts = {p.did: p.text for p in snapshot.canonical_pages()}
        resurrected = set(getattr(diff, "resurrected", ()))

        def collect(page_delta: Dict[str, DeltaSet]) -> None:
            for rel, delta in page_delta.items():
                rel_delta[rel].update(delta)

        for did in diff.deleted:
            state = self.states.pop(did)
            collect(self.plan_delta.apply_page_text(state, None, counters))
            if check and not state.is_drained():
                raise DeltaStateError(
                    f"deleted page {did!r}: delta state did not drain "
                    "to empty")
            decisions[did] = PageDecision(
                did=did, decision="deleted",
                reason="pure retraction from recorded state")
        for did in diff.new:
            state = self.plan_delta.new_page_state(did)
            collect(self.plan_delta.apply_page_text(
                state, new_texts[did], counters))
            self.states[did] = state
            upserts[did] = self.plan_delta.page_rows(state)
            kind = "resurrected" if did in resurrected else "new"
            decisions[did] = PageDecision(
                did=did, decision=kind,
                reason=("returned after deletion; prior state was "
                        "retracted, re-adding fresh" if kind ==
                        "resurrected" else "pure addition"))
        for did in diff.changed:
            state = self.states[did]
            old_text = state.current_text() or ""
            decision = self.classifier.classify_changed(
                did, old_text, new_texts[did])
            decisions[did] = decision
            if decision.decision == "delta":
                collect(self.plan_delta.apply_page_text(
                    state, new_texts[did], counters))
            else:
                old_rows = self.plan_delta.page_rows(state)
                fresh = self.plan_delta.new_page_state(did)
                page_delta = self.plan_delta.apply_page_text(
                    fresh, new_texts[did], counters)
                for rel, rows in old_rows.items():
                    page_delta[rel].update(DeltaSet.from_rows(rows, -1))
                collect(page_delta)
                self.states[did] = fresh
            upserts[did] = self.plan_delta.page_rows(self.states[did])
        for did in diff.unchanged:
            decisions[did] = PageDecision(
                did=did, decision="unchanged", reason="fingerprint match")

        delta_weight = 0
        relations: Dict[str, Tuple[tuple, ...]] = {}
        for rel, delta in rel_delta.items():
            delta_weight += delta.weight()
            appeared, vanished = self.relations[rel].apply(
                delta, where=f"relation:{rel}")
            self.index[rel] = merge_sorted_index(
                self.index[rel], appeared, vanished)
            relations[rel] = self.index[rel]
        return DeltaApplyResult(
            upserts=upserts, deletes=tuple(diff.deleted),
            relations=relations, decisions=decisions,
            counters=counters, delta_weight=delta_weight)
