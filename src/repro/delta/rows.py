"""Canonical frozen rows: the currency of the delta rules.

Plan evaluation passes around dicts of ``var -> Span | scalar``; spans
are page-absolute offsets whose *content* lives in the page text. Such
rows cannot key delta state across page versions: two spans with equal
offsets may cover different text after an edit. The delta layer
therefore freezes rows into exactly the store's canonical tuple shape
(:func:`repro.reuse.engine.materialize_rows` output)::

    ((var, (start, end, text)), ...)   # span fields
    ((var, scalar), ...)               # scalar fields

sorted by variable name. Freezing embeds each span's text, so

* frozen equality means *semantic* equality across page versions —
  same offsets **and** same content — which is what makes IE-output
  memoization and σ-outcome retention sound;
* the root node's frozen support is literally the page's stored rows:
  no second materialization pass between plan and store.

``thaw_row`` reverses the embedding (dropping the text — spans again
reference the page) for operators that must re-evaluate: σ p-functions
on added rows, IE extraction over added regions.

The ``(int, int, str)`` 3-tuple heuristic for "is a span" matches
:func:`repro.serve.store.tuple_to_json`; scalars in this system are
``str | int | float | bool | None`` (see ``extractors.base.Scalar``),
so a scalar can never be mistaken for a span triple.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..text.span import Span

#: One frozen row: sorted ``(var, value)`` pairs, hashable.
FrozenRow = Tuple[Tuple[str, object], ...]

#: Cache of text slices keyed by (start, end) — freezing one page's
#: rows repeatedly slices the same regions (every IE output row of a
#: segmenter region shares the region span, every pre-projection row
#: carries the whole-page scan span).
SliceCache = Dict[Tuple[int, int], str]


def is_span_value(value: object) -> bool:
    """True iff a frozen value is a span triple ``(start, end, text)``."""
    return (isinstance(value, tuple) and len(value) == 3
            and isinstance(value[0], int) and isinstance(value[1], int)
            and isinstance(value[2], str))


def freeze_row(row: Dict[str, object], page_text: str,
               cache: Optional[SliceCache] = None) -> FrozenRow:
    """Freeze one row dict against its page's text."""
    items: List[Tuple[str, object]] = []
    for var in sorted(row):
        value = row[var]
        if isinstance(value, Span):
            key = (value.start, value.end)
            text = cache.get(key) if cache is not None else None
            if text is None:
                text = page_text[value.start:value.end]
                if cache is not None:
                    cache[key] = text
            items.append((var, (value.start, value.end, text)))
        else:
            items.append((var, value))
    return tuple(items)


def freeze_rows(rows, page_text: str,
                cache: Optional[SliceCache] = None) -> List[FrozenRow]:
    """Freeze a list of row dicts (multiplicities preserved)."""
    if cache is None:
        cache = {}
    return [freeze_row(row, page_text, cache) for row in rows]


def thaw_row(frozen: FrozenRow, did: str) -> Dict[str, object]:
    """Reconstruct the evaluation-shape row dict (spans lose text)."""
    out: Dict[str, object] = {}
    for var, value in frozen:
        if is_span_value(value):
            out[var] = Span(did, value[0], value[1])
        else:
            out[var] = value
    return out


def frozen_join_key(frozen: FrozenRow, on: Tuple[str, ...]) -> tuple:
    """The natural-join key of a frozen row.

    Join equality on frozen span triples coincides with plain
    evaluation's ``Span`` equality within one page: equal offsets in
    one page version imply equal text, and frozen rows only ever meet
    rows of the same page.
    """
    values = dict(frozen)
    return tuple(values[v] for v in on)


def merge_frozen(left: FrozenRow, right: FrozenRow) -> FrozenRow:
    """``{**left, **right}`` in frozen form (right wins shared vars,
    which for a natural join are equal anyway)."""
    merged = dict(left)
    merged.update(right)
    return tuple(sorted(merged.items()))
