"""repro.delta — true differential view maintenance.

The serving tier (PR 4) maintains materialized views *page*-granularly:
a changed page is re-extracted wholesale and every relational operator
downstream of the IE units — plus the store's deduplicated, sorted
relation index — is recomputed each generation. This package replaces
that with *tuple*-granular maintenance: a generation applies as an
``(adds, dels)`` delta flowing through the compiled
:mod:`repro.plan` operator tree, in the spirit of "Detecting
Opportunities for Differential Maintenance of Extracted Views"
(Kassaie & Tompa; see PAPERS.md).

Four layers, composed bottom-up:

* :mod:`.deltaset` — :class:`DeltaSet` (row -> signed multiplicity)
  and :class:`Multiset` (maintained nonnegative counts with support-
  transition tracking). Counted multiplicities are what make
  retractions from page churn, deletion, and resurrection compose
  correctly through duplicate-producing operators: a tuple two pages
  both produce survives one page's retraction at count 1.
* :mod:`.rules` — per-operator delta rules over the plan DAG.
  Scan/σ/π/∪ are linear; IE nodes memoize outputs per input region so
  unchanged sub-page regions never re-extract; ⋈ maintains per-side
  hash-indexed state and emits ``ΔL⋈R + L⋈ΔR + ΔL⋈ΔR``.
* :mod:`.classify` — the safe/unsafe update classifier: per arriving
  page, decide from the :class:`~repro.serve.views.SnapshotDiff`
  category, the edit geometry (common prefix/suffix window, offset
  shift), and the plan's selection properties whether in-place delta
  propagation is provably sufficient or the page must fall back to
  re-extraction (still applied tuple-granularly).
* :mod:`.maintain` — :class:`DeltaMaintainer`: owns all per-page
  operator state plus the incrementally maintained relation index,
  and turns one snapshot diff into the store delta + new sorted index
  in one pass.

Wired into :class:`repro.serve.views.MaterializedView` as the third
maintenance mode (``system="delta"``), swept by the ``repro check``
oracle via the view-maintenance axis of the check grid, and guarded —
under ``--check on`` — by a pre-swap cross-check of every delta-applied
generation against the from-scratch batch oracle.
"""

from .classify import (
    DECISIONS,
    PageDecision,
    UpdateClassifier,
    plan_delta_blockers,
)
from .deltaset import DeltaSet, Multiset, NegativeMultiplicityError
from .maintain import DeltaApplyResult, DeltaMaintainer
from .rows import freeze_rows, thaw_row

__all__ = [
    "DeltaSet",
    "Multiset",
    "NegativeMultiplicityError",
    "DeltaMaintainer",
    "DeltaApplyResult",
    "UpdateClassifier",
    "PageDecision",
    "DECISIONS",
    "plan_delta_blockers",
    "freeze_rows",
    "thaw_row",
]
