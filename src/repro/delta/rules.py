"""Per-operator delta rules over the compiled plan DAG.

One :class:`PagePlanDelta` drives a page-scoped delta through the plan
in topological order (children before parents, shared CSE nodes
processed exactly once). Each node kind has a rule mapping its
children's emitted deltas to its own, against per-node maintained
state held in a :class:`PageState`:

* **Scan** — the page event itself: retract the old whole-page row,
  add the new one. For an unedited page the two cancel and nothing
  flows at all.
* **IE** — memoized on the input *region content* ``(start, end,
  text)``: added rows whose region the extractor has already seen
  reuse the memoized extractions (zero extractor calls — this is what
  makes a small edit's delta small even though the page-level scan row
  changed); retractions replay the memo with negative multiplicity and
  never touch the extractor. Region reference counts evict memo
  entries when their last derivation retracts.
* **σ (Select)** — linear. Added rows are evaluated against the *new*
  page context; retracted rows consult the node's output state — the
  recorded old verdict — so retraction never needs the old page text.
* **π (Project) / ∪ (Union)** — plain evaluation dedupes these, so
  their state counts *derivations* and they emit only support
  transitions: a row loses its tuple only when the last derivation
  retracts (multiplicity-zero cancellation).
* **⋈ (Join)** — maintains per-side hash indexes keyed by the join
  variables and emits ``ΔL ⋈ R_new + L_old ⋈ ΔR`` (algebraically
  ``ΔL⋈R + L⋈ΔR + ΔL⋈ΔR``), multiplicities multiplying.

Soundness of retained (non-delta) rows on an edited page rests on two
facts the classifier (:mod:`repro.delta.classify`) enforces: frozen
equality embeds span *content*, so a cancelled IE output is truly the
same extraction; and retained σ verdicts are only kept when every
selection in the plan is row-determined (see
:class:`repro.xlog.registry.PFunctionEntry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    UnionNode,
)
from ..text.span import Span
from ..xlog.registry import EvalContext
from .deltaset import DeltaSet, Multiset
from .rows import FrozenRow, is_span_value, merge_frozen, thaw_row

#: Region-content memo entry: the extractor's output for one region,
#: as extension-field maps (var -> frozen value) to merge onto any
#: input row carrying that region.
MemoFields = Tuple[Tuple[Tuple[str, object], ...], ...]


@dataclass
class DeltaCounters:
    """Work accounting of one page event (telemetry + benchmarks)."""

    extractor_calls: int = 0
    memo_hits: int = 0
    rows_added: int = 0
    rows_retracted: int = 0

    def merge(self, other: "DeltaCounters") -> None:
        self.extractor_calls += other.extractor_calls
        self.memo_hits += other.memo_hits
        self.rows_added += other.rows_added
        self.rows_retracted += other.rows_retracted

    def to_dict(self) -> Dict[str, int]:
        return {
            "extractor_calls": self.extractor_calls,
            "memo_hits": self.memo_hits,
            "rows_added": self.rows_added,
            "rows_retracted": self.rows_retracted,
        }


@dataclass
class _IEState:
    """Memo + region reference counts of one IE node on one page."""

    memo: Dict[Tuple[int, int, str], MemoFields] = field(
        default_factory=dict)
    region_refs: Multiset = field(default_factory=Multiset)


@dataclass
class _JoinState:
    """Per-side hash-indexed input states of one join on one page."""

    left: Dict[tuple, Dict[FrozenRow, int]] = field(default_factory=dict)
    right: Dict[tuple, Dict[FrozenRow, int]] = field(default_factory=dict)


class PageState:
    """All delta state one page accumulates across generations.

    Indexed positionally by the plan's topological node order; an
    empty ``PageState`` is a page the view has never seen (or has
    fully retracted), which is what makes new pages, deletions, and
    resurrections all run through the same rules.
    """

    def __init__(self, did: str, n_nodes: int) -> None:
        self.did = did
        self.scan_rows: Dict[int, FrozenRow] = {}
        self.out: List[Optional[Multiset]] = [None] * n_nodes
        self.ie: Dict[int, _IEState] = {}
        self.joins: Dict[int, _JoinState] = {}

    def out_state(self, index: int) -> Multiset:
        state = self.out[index]
        if state is None:
            state = self.out[index] = Multiset()
        return state

    def ie_state(self, index: int) -> _IEState:
        state = self.ie.get(index)
        if state is None:
            state = self.ie[index] = _IEState()
        return state

    def join_state(self, index: int) -> _JoinState:
        state = self.joins.get(index)
        if state is None:
            state = self.joins[index] = _JoinState()
        return state

    def current_text(self) -> Optional[str]:
        """The page text this state was last moved to (from the scan
        row — the delta layer needs no separate snapshot retention)."""
        for row in self.scan_rows.values():
            value = row[0][1]
            return value[2]  # (start, end, text)
        return None

    def is_drained(self) -> bool:
        """True iff every maintained multiset is empty (a fully
        retracted page — checked after deletions under ``check``)."""
        if self.scan_rows:
            return False
        for state in self.out:
            if state is not None and not state.is_empty():
                return False
        for ie_state in self.ie.values():
            if not ie_state.region_refs.is_empty():
                return False
        for join_state in self.joins.values():
            for side in (join_state.left, join_state.right):
                if any(side.values()):
                    return False
        return True


def _index_update(index: Dict[tuple, Dict[FrozenRow, int]],
                  key: tuple, row: FrozenRow, count: int) -> None:
    bucket = index.setdefault(key, {})
    new = bucket.get(row, 0) + count
    if new == 0:
        del bucket[row]
        if not bucket:
            del index[key]
    else:
        bucket[row] = new


class PagePlanDelta:
    """Delta evaluation of one compiled plan, one page at a time."""

    def __init__(self, plan: CompiledPlan) -> None:
        self.plan = plan
        self.nodes: List[Node] = plan.all_nodes()
        self._index_of: Dict[int, int] = {
            id(node): i for i, node in enumerate(self.nodes)}
        self.root_index: Dict[str, int] = {
            rel: self._index_of[id(plan.roots[rel])]
            for rel in plan.program.head_relations()}

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def new_page_state(self, did: str) -> PageState:
        return PageState(did, len(self.nodes))

    # -- page events ------------------------------------------------------

    def apply_page_text(self, state: PageState, new_text: Optional[str],
                        counters: Optional[DeltaCounters] = None
                        ) -> Dict[str, DeltaSet]:
        """Move one page to ``new_text`` (None = page deleted).

        Emits the per-relation delta of the page's contribution. The
        scan delta is retract-old + add-new; everything else follows
        from the operator rules. Covers all four page events:

        * new page / resurrection — no old scan row, pure adds;
        * deletion — no new row, pure retractions, zero extractor
          calls (memo + recorded verdicts supply every retraction);
        * edit — old and new flow together, identical extractions
          cancel before they ever reach the relational operators.
        """
        counters = counters if counters is not None else DeltaCounters()
        ctx = (EvalContext(new_text, state.did)
               if new_text is not None else None)
        deltas: List[Optional[DeltaSet]] = [None] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if isinstance(node, ScanNode):
                deltas[i] = self._scan_delta(state, i, node, new_text)
            elif isinstance(node, IENode):
                child = deltas[self._index_of[id(node.child)]]
                deltas[i] = self._ie_delta(state, i, node, child, counters)
            elif isinstance(node, SelectNode):
                child = deltas[self._index_of[id(node.child)]]
                deltas[i] = self._select_delta(state, i, node, child, ctx)
            elif isinstance(node, ProjectNode):
                child = deltas[self._index_of[id(node.child)]]
                deltas[i] = self._project_delta(state, i, node, child)
            elif isinstance(node, UnionNode):
                children = [deltas[self._index_of[id(c)]]
                            for c in node.children]
                deltas[i] = self._union_delta(state, i, children)
            elif isinstance(node, JoinNode):
                left = deltas[self._index_of[id(node.left)]]
                right = deltas[self._index_of[id(node.right)]]
                deltas[i] = self._join_delta(state, i, node, left, right)
            else:
                raise TypeError(
                    f"delta rules do not cover {type(node).__name__}")
        out: Dict[str, DeltaSet] = {}
        for rel, root_idx in self.root_index.items():
            delta = deltas[root_idx]
            out[rel] = delta if delta is not None else DeltaSet()
            counters.rows_added += sum(1 for _, c in out[rel].items()
                                       if c > 0)
            counters.rows_retracted += sum(1 for _, c in out[rel].items()
                                           if c < 0)
        return out

    def page_rows(self, state: PageState) -> Dict[str, List[FrozenRow]]:
        """The page's current per-relation rows (root supports)."""
        out: Dict[str, List[FrozenRow]] = {}
        for rel, root_idx in self.root_index.items():
            root_state = state.out[root_idx]
            rows = root_state.support() if root_state is not None else []
            rows.sort(key=repr)
            out[rel] = rows
        return out

    # -- operator rules ---------------------------------------------------

    def _scan_delta(self, state: PageState, index: int, node: ScanNode,
                    new_text: Optional[str]) -> DeltaSet:
        delta = DeltaSet()
        old_row = state.scan_rows.pop(index, None)
        if old_row is not None:
            delta.add(old_row, -1)
        if new_text is not None:
            new_row: FrozenRow = ((node.var, (0, len(new_text), new_text)),)
            state.scan_rows[index] = new_row
            delta.add(new_row, +1)
        return delta

    def _ie_delta(self, state: PageState, index: int, node: IENode,
                  child: Optional[DeltaSet],
                  counters: DeltaCounters) -> DeltaSet:
        delta = DeltaSet()
        if child is None or child.is_empty():
            return delta
        ie_state = state.ie_state(index)
        region_delta = DeltaSet()
        for in_row, count in child.items():
            values = dict(in_row)
            region = values.get(node.in_var)
            if not is_span_value(region):
                raise TypeError(
                    f"{node.extractor.name}: input {node.in_var!r} is "
                    "not a span")
            key = region  # (start, end, text) — content-identifying
            fields = ie_state.memo.get(key)
            if fields is None:
                if count < 0:
                    raise RuntimeError(
                        f"{node.extractor.name}: retraction of a region "
                        "never extracted (delta state out of sync)")
                fields = self._run_extractor(node, state.did, key)
                ie_state.memo[key] = fields
                counters.extractor_calls += 1
            else:
                counters.memo_hits += 1
            region_delta.add(key, count)
            for field_map in fields:
                out_row = merge_frozen(in_row, field_map)
                delta.add(out_row, count)
        _appeared, vanished = ie_state.region_refs.apply(
            region_delta, where=f"ie:{node.extractor.name}")
        for key in vanished:
            ie_state.memo.pop(key, None)
        return delta

    @staticmethod
    def _run_extractor(node: IENode, did: str,
                       region: Tuple[int, int, str]) -> MemoFields:
        start, _end, text = region
        region_span = Span(did, start, start + len(text))
        out: List[Tuple[Tuple[str, object], ...]] = []
        for extraction in node.extractor.extract(text):
            frozen_fields: List[Tuple[str, object]] = []
            for var, value in node.extension_fields(
                    extraction, region_span).items():
                if isinstance(value, Span):
                    rel_start = value.start - start
                    rel_end = value.end - start
                    frozen_fields.append(
                        (var, (value.start, value.end,
                               text[rel_start:rel_end])))
                else:
                    frozen_fields.append((var, value))
            out.append(tuple(sorted(frozen_fields)))
        return tuple(out)

    def _select_delta(self, state: PageState, index: int,
                      node: SelectNode, child: Optional[DeltaSet],
                      ctx: Optional[EvalContext]) -> DeltaSet:
        delta = DeltaSet()
        if child is None or child.is_empty():
            return delta
        out_state = state.out_state(index)
        for row, count in child.items():
            if count > 0:
                if ctx is None:
                    raise RuntimeError(
                        f"select {node.entry.name}: row added without "
                        "page context (deletion emitted an add?)")
                if node.passes(thaw_row(row, state.did), ctx):
                    delta.add(row, count)
            else:
                # The recorded old verdict: the row passed iff it is
                # in the output state.
                if row in out_state:
                    delta.add(row, count)
        out_state.apply(delta, where=f"select:{node.entry.name}")
        return delta

    def _project_delta(self, state: PageState, index: int,
                       node: ProjectNode,
                       child: Optional[DeltaSet]) -> DeltaSet:
        if child is None or child.is_empty():
            return DeltaSet()
        derivations = DeltaSet()
        for row, count in child.items():
            values = dict(row)
            projected = tuple(sorted(
                (out, values[src]) for out, src in node.mappings))
            derivations.add(projected, count)
        appeared, vanished = state.out_state(index).apply(
            derivations, where="project")
        delta = DeltaSet()
        for row in appeared:
            delta.add(row, +1)
        for row in vanished:
            delta.add(row, -1)
        return delta

    def _union_delta(self, state: PageState, index: int,
                     children: List[Optional[DeltaSet]]) -> DeltaSet:
        combined = DeltaSet()
        for child in children:
            if child is not None:
                combined.update(child)
        if combined.is_empty():
            return DeltaSet()
        appeared, vanished = state.out_state(index).apply(
            combined, where="union")
        delta = DeltaSet()
        for row in appeared:
            delta.add(row, +1)
        for row in vanished:
            delta.add(row, -1)
        return delta

    def _join_delta(self, state: PageState, index: int, node: JoinNode,
                    left: Optional[DeltaSet],
                    right: Optional[DeltaSet]) -> DeltaSet:
        left = left if left is not None else DeltaSet()
        right = right if right is not None else DeltaSet()
        delta = DeltaSet()
        if left.is_empty() and right.is_empty():
            return delta
        join_state = state.join_state(index)
        on = node.on

        def key_of(row: FrozenRow) -> tuple:
            values = dict(row)
            return tuple(values[v] for v in on)

        # ΔR folds into the right index first, so ΔL joins R_new and
        # ΔR joins L_old: ΔL⋈R_new + L_old⋈ΔR == ΔL⋈R + L⋈ΔR + ΔL⋈ΔR.
        for r_row, r_count in right.items():
            _index_update(join_state.right, key_of(r_row), r_row, r_count)
        for l_row, l_count in left.items():
            for r_row, r_count in join_state.right.get(
                    key_of(l_row), {}).items():
                delta.add(merge_frozen(l_row, r_row), l_count * r_count)
        for r_row, r_count in right.items():
            for l_row, l_count in join_state.left.get(
                    key_of(r_row), {}).items():
                delta.add(merge_frozen(l_row, r_row), l_count * r_count)
        for l_row, l_count in left.items():
            _index_update(join_state.left, key_of(l_row), l_row, l_count)
        return delta
