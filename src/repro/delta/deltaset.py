"""Counted multisets: the algebra differential maintenance runs on.

Every value flowing through the delta rules is a *canonical frozen
row* (:mod:`repro.delta.rows`) with a signed integer multiplicity.
Two structures share that key space:

* :class:`DeltaSet` — a *change*: row -> signed count. Negative counts
  are retractions. Deltas form a group under addition, which is what
  lets retract-then-add cycles (page churn, deletion, resurrection)
  cancel exactly instead of approximately.
* :class:`Multiset` — a *state*: row -> positive count, mutated by
  applying deltas. Applying reports the **support transitions** — rows
  whose count crossed zero in either direction — because that is the
  delta the set-semantics operators (π-dedupe, ∪-dedupe, the published
  relation index) must emit: a tuple derived two ways that loses one
  derivation changes count 2 -> 1 and must emit *nothing*.

A delta driving any count negative is a bug in the rules (a retraction
of something never added); :class:`NegativeMultiplicityError` makes
that loud instead of silently corrupting downstream state — the
``repro check`` sweep and the property tests lean on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple


class NegativeMultiplicityError(RuntimeError):
    """A delta retracted more copies of a row than the state holds."""


class DeltaSet:
    """A signed counted multiset of frozen rows (the ``(adds, dels)``)."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[tuple, int] = None) -> None:
        self._counts: Dict[tuple, int] = {}
        if counts:
            for row, count in counts.items():
                self.add(row, count)

    @classmethod
    def from_rows(cls, rows: Iterable[tuple], count: int = 1) -> "DeltaSet":
        """A delta adding (or, with ``count=-1``, retracting) rows.

        Duplicate rows accumulate multiplicity — ``from_rows`` of a
        list with a row twice yields that row at count ``2 * count``.
        """
        delta = cls()
        for row in rows:
            delta.add(row, count)
        return delta

    def add(self, row: tuple, count: int = 1) -> None:
        """Accumulate ``count`` onto ``row``; zero entries vanish."""
        if count == 0:
            return
        new = self._counts.get(row, 0) + count
        if new == 0:
            del self._counts[row]
        else:
            self._counts[row] = new

    def update(self, other: "DeltaSet") -> None:
        """Pointwise sum with another delta (group addition)."""
        for row, count in other._counts.items():
            self.add(row, count)

    def negated(self) -> "DeltaSet":
        """The inverse delta (every count sign-flipped)."""
        out = DeltaSet()
        out._counts = {row: -count for row, count in self._counts.items()}
        return out

    def items(self) -> Iterator[Tuple[tuple, int]]:
        return iter(self._counts.items())

    def adds(self) -> List[Tuple[tuple, int]]:
        """The positive entries, ``(row, count)`` with count > 0."""
        return [(r, c) for r, c in self._counts.items() if c > 0]

    def dels(self) -> List[Tuple[tuple, int]]:
        """The negative entries, ``(row, count)`` with count < 0."""
        return [(r, c) for r, c in self._counts.items() if c < 0]

    def is_empty(self) -> bool:
        return not self._counts

    def __len__(self) -> int:
        """Distinct rows touched (not total multiplicity)."""
        return len(self._counts)

    def __contains__(self, row: tuple) -> bool:
        return row in self._counts

    def count(self, row: tuple) -> int:
        return self._counts.get(row, 0)

    def weight(self) -> int:
        """Total absolute multiplicity — the delta's "size" for
        telemetry and benchmark accounting."""
        return sum(abs(c) for c in self._counts.values())

    def __repr__(self) -> str:
        return f"DeltaSet({len(self._counts)} rows, weight {self.weight()})"


class Multiset:
    """Maintained nonnegative counts with support-transition reporting."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[tuple, int] = {}

    def apply(self, delta: DeltaSet, where: str = "multiset"
              ) -> Tuple[List[tuple], List[tuple]]:
        """Fold a delta in; return ``(appeared, vanished)`` support.

        ``appeared`` lists rows whose count went 0 -> positive,
        ``vanished`` rows whose count went positive -> 0 — exactly the
        *set-semantics* delta of this state. ``where`` names the
        operator for the error message when a retraction underflows.
        """
        appeared: List[tuple] = []
        vanished: List[tuple] = []
        for row, count in delta.items():
            old = self._counts.get(row, 0)
            new = old + count
            if new < 0:
                raise NegativeMultiplicityError(
                    f"{where}: count of {row!r} would become {new} "
                    f"(was {old}, delta {count})")
            if new == 0:
                if old:
                    del self._counts[row]
                    vanished.append(row)
            else:
                self._counts[row] = new
                if old == 0:
                    appeared.append(row)
        return appeared, vanished

    def count(self, row: tuple) -> int:
        return self._counts.get(row, 0)

    def __contains__(self, row: tuple) -> bool:
        return row in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def support(self) -> List[tuple]:
        """The distinct rows present (count > 0), unordered."""
        return list(self._counts)

    def items(self) -> Iterator[Tuple[tuple, int]]:
        return iter(self._counts.items())

    def is_empty(self) -> bool:
        return not self._counts

    def as_delta(self, sign: int = 1) -> DeltaSet:
        """The state as a delta (``sign=-1``: retract everything)."""
        out = DeltaSet()
        out._counts = {row: sign * count
                       for row, count in self._counts.items()}
        return out

    def __repr__(self) -> str:
        return f"Multiset({len(self._counts)} rows)"
