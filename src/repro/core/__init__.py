"""Systems: Delex plus the No-reuse / Shortcut / Cyclex baselines."""

from .cyclex import CyclexSystem
from .delex import DelexSystem
from .noreuse import NoReuseSystem, evaluate_timed, run_page_plain
from .pipeline import DelexPipeline
from .runner import (
    SYSTEM_NAMES,
    SeriesReport,
    SnapshotReport,
    canonical_results,
    make_system,
    run_series,
    run_task_series,
    verify_agreement,
)
from .shortcut import ShortcutSystem

__all__ = [
    "DelexSystem",
    "DelexPipeline",
    "CyclexSystem",
    "NoReuseSystem",
    "ShortcutSystem",
    "run_page_plain",
    "evaluate_timed",
    "run_series",
    "run_task_series",
    "verify_agreement",
    "make_system",
    "canonical_results",
    "SeriesReport",
    "SnapshotReport",
    "SYSTEM_NAMES",
]
