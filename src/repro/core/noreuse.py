"""The No-reuse baseline: re-run the IE program from scratch.

This is what the paper calls the common solution today — apply IE to
every snapshot in isolation. It pays full extraction cost every time
and writes no capture files.

Pages are processed in canonical order (sorted by page id) and the
page loop is routed through :mod:`repro.runtime`: from-scratch
extraction is embarrassingly parallel, so an executor with ``jobs>1``
fans page batches out to workers and merges their results back in
canonical order.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    dedupe_rows,
    hash_join,
)
from ..reuse.engine import SnapshotRunResult, materialize_rows
from ..runtime.executor import Executor, SerialExecutor
from ..runtime.metrics import build_metrics
from ..runtime.scheduler import PageBatch, PageScheduler
from ..text.document import Page
from ..text.span import Span
from ..timing import EXTRACT, Timer, Timings
from ..xlog.registry import EvalContext


def evaluate_timed(node: Node, page: Page, timer: Timer,
                   memo: Dict[int, List[TupleRow]]) -> List[TupleRow]:
    """Plain evaluation attributing blackbox time to EXTRACT."""
    key = id(node)
    if key in memo:
        return memo[key]
    if isinstance(node, ScanNode):
        rows: List[TupleRow] = [{node.var: Span(page.did, 0,
                                                len(page.text))}]
    elif isinstance(node, IENode):
        rows = []
        for row in evaluate_timed(node.child, page, timer, memo):
            region = row[node.in_var]
            text = page.text[region.start:region.end]
            with timer.measure(EXTRACT):
                extractions = node.extractor.extract(text)
            for extraction in extractions:
                rows.append({**row,
                             **node.extension_fields(extraction, region)})
    elif isinstance(node, SelectNode):
        ctx = EvalContext(page.text, page.did)
        rows = [r for r in evaluate_timed(node.child, page, timer, memo)
                if node.passes(r, ctx)]
    elif isinstance(node, ProjectNode):
        rows = dedupe_rows([node.apply(r) for r in
                            evaluate_timed(node.child, page, timer,
                                           memo)])
    elif isinstance(node, JoinNode):
        rows = hash_join(evaluate_timed(node.left, page, timer, memo),
                         evaluate_timed(node.right, page, timer, memo),
                         node.on)
    elif isinstance(node, UnionNode):
        rows = dedupe_rows([row for child in node.children
                            for row in evaluate_timed(child, page, timer,
                                                      memo)])
    else:
        raise TypeError(f"unknown node type {type(node).__name__}")
    memo[key] = rows
    return rows


def run_page_plain(plan: CompiledPlan, page: Page,
                   timer: Timer) -> Dict[str, List[TupleRow]]:
    memo: Dict[int, List[TupleRow]] = {}
    return {rel: evaluate_timed(plan.roots[rel], page, timer, memo)
            for rel in plan.program.head_relations()}


def _noreuse_batch_worker(plan: CompiledPlan, batch: PageBatch
                          ) -> Tuple[Dict[str, List[Tuple]],
                                     Dict[str, float]]:
    """Extract one page batch from scratch (runs in any executor)."""
    timings = Timings()
    timer = Timer(timings)
    rel_rows: Dict[str, List[Tuple]] = {
        rel: [] for rel in plan.program.head_relations()}
    for page in batch:
        page_rows = run_page_plain(plan, page, timer)
        for rel, rows in page_rows.items():
            rel_rows[rel].extend(materialize_rows(rows, page.text))
    return rel_rows, timings.parts


class NoReuseSystem:
    """Applies the program from scratch to each snapshot."""

    name = "noreuse"

    def __init__(self, plan: CompiledPlan,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None) -> None:
        self.plan = plan
        self.executor = executor if executor is not None else SerialExecutor()
        self.scheduler = scheduler if scheduler is not None else PageScheduler()

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        del prev_snapshot  # from-scratch by definition
        timings = Timings()
        timer = Timer(timings)
        results: Dict[str, list] = {
            rel: [] for rel in self.plan.program.head_relations()}
        pages = snapshot.canonical_pages()
        with timer.measure_total():
            batches = self.scheduler.plan(pages, self.executor.jobs)
            wall_start = time.perf_counter()
            timed = self.executor.map_batches(_noreuse_batch_worker,
                                              self.plan, batches)
            wall_seconds = time.perf_counter() - wall_start
            for _, (rel_rows, parts) in timed:
                for rel, rows in rel_rows.items():
                    results[rel].extend(rows)
                for category, seconds in parts.items():
                    timings.add(category, seconds)
        timings.runtime = build_metrics(
            self.executor.name, self.executor.jobs, wall_seconds,
            batches, [s for s, _ in timed])
        return SnapshotRunResult(results=results, timings=timings,
                                 pages=len(pages))
