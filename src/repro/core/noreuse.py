"""The No-reuse baseline: re-run the IE program from scratch.

This is what the paper calls the common solution today — apply IE to
every snapshot in isolation. It pays full extraction cost every time
and writes no capture files.

Pages are processed in canonical order (sorted by page id) and the
page loop is routed through :mod:`repro.runtime`: from-scratch
extraction is embarrassingly parallel, so an executor with ``jobs>1``
fans work items out to workers and merges their results back by page
id. Work items are either whole-page batches or — for pages large
enough to dominate the run — split-correct sub-page parts (see
:mod:`repro.runtime.split`); page text travels to process workers
through a shared-memory arena instead of pickled payloads.

The scratch-work machinery here (:func:`run_scratch`) is shared with
the Shortcut and Cyclex baselines, whose changed/fresh pages are
exactly this from-scratch workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corpus.snapshot import Snapshot
from ..plan.compile import CompiledPlan
from ..plan.operators import (
    IENode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SelectNode,
    TupleRow,
    UnionNode,
    dedupe_rows,
    hash_join,
)
from ..reuse.engine import SnapshotRunResult, materialize_rows
from ..runtime.executor import Executor, SerialExecutor
from ..runtime.metrics import BatchMetric, RuntimeMetrics, build_metrics
from ..runtime.scheduler import PageBatch, PageScheduler
from ..runtime.shm import build_arena
from ..runtime.split import (
    PagePart,
    PartPoisoned,
    SplitConfig,
    part_extensions,
    plan_parts,
)
from ..text.document import Page
from ..text.span import Span
from ..timing import EXTRACT, Timer, Timings
from ..xlog.registry import EvalContext


def evaluate_timed(node: Node, page: Page, timer: Timer,
                   memo: Dict[int, List[TupleRow]]) -> List[TupleRow]:
    """Plain evaluation attributing blackbox time to EXTRACT."""
    key = id(node)
    if key in memo:
        return memo[key]
    if isinstance(node, ScanNode):
        rows: List[TupleRow] = [{node.var: Span(page.did, 0,
                                                len(page.text))}]
    elif isinstance(node, IENode):
        rows = []
        for row in evaluate_timed(node.child, page, timer, memo):
            region = row[node.in_var]
            text = page.text[region.start:region.end]
            with timer.measure(EXTRACT):
                extractions = node.extractor.extract(text)
            for extraction in extractions:
                rows.append({**row,
                             **node.extension_fields(extraction, region)})
    elif isinstance(node, SelectNode):
        ctx = EvalContext(page.text, page.did)
        rows = [r for r in evaluate_timed(node.child, page, timer, memo)
                if node.passes(r, ctx)]
    elif isinstance(node, ProjectNode):
        rows = dedupe_rows([node.apply(r) for r in
                            evaluate_timed(node.child, page, timer,
                                           memo)])
    elif isinstance(node, JoinNode):
        rows = hash_join(evaluate_timed(node.left, page, timer, memo),
                         evaluate_timed(node.right, page, timer, memo),
                         node.on)
    elif isinstance(node, UnionNode):
        rows = dedupe_rows([row for child in node.children
                            for row in evaluate_timed(child, page, timer,
                                                      memo)])
    else:
        raise TypeError(f"unknown node type {type(node).__name__}")
    memo[key] = rows
    return rows


def run_page_plain(plan: CompiledPlan, page: Page, timer: Timer,
                   memo: Optional[Dict[int, List[TupleRow]]] = None
                   ) -> Dict[str, List[TupleRow]]:
    """Evaluate the whole plan over one page from scratch.

    ``memo``, when given, seeds node results — the split assembly uses
    it to inject precomputed frontier extractions.
    """
    memo = {} if memo is None else memo
    return {rel: evaluate_timed(plan.roots[rel], page, timer, memo)
            for rel in plan.program.head_relations()}


# -- shared scratch-work runtime ----------------------------------------


def scan_frontier(plan: CompiledPlan) -> List[IENode]:
    """IE nodes extracting directly from the page scan, in plan order.

    Only these are split-safe: any operator between scan and IE could
    change the input region, and a producing IE below would make the
    chunk geometry depend on upstream output. Ordinals into this list
    identify nodes across the pickle boundary (object ids do not
    survive it, structural order does).
    """
    return [n for n in plan.all_nodes()
            if isinstance(n, IENode) and isinstance(n.child, ScanNode)]


def _scratch_work_worker(state, item):
    """Process one scratch work item (runs in any executor).

    ``state`` is ``(plan, arena_handle, materialize)``. Items:

    * ``("pages", ((did, url), ...))`` — whole pages, from scratch.
      Returns per-page relation rows (materialized when asked, so the
      parent does no per-row work for unsplit pages).
    * ``("part", part, ordinals)`` — one sub-page part; runs each
      frontier IE node (by :func:`scan_frontier` ordinal) over the
      part's widened chunk and returns the owned extension dicts.
    """
    plan, arena, materialize = state
    timings = Timings()
    timer = Timer(timings)
    if item[0] == "part":
        _, part, ordinals = item
        frontier = scan_frontier(plan)
        text = arena.text(part.did)
        exts: Dict[int, List[Dict[str, object]]] = {}
        poisoned: List[int] = []
        for ordinal in ordinals:
            node = frontier[ordinal]
            try:
                with timer.measure(EXTRACT):
                    exts[ordinal] = part_extensions(node, text, part)
            except PartPoisoned:
                poisoned.append(ordinal)
        return ("part", part.did, part.index, exts, poisoned,
                timings.parts)
    _, metas = item
    out: List[Tuple[str, Dict[str, list]]] = []
    for did, url in metas:
        page = Page(did, url, arena.text(did))
        page_rows = run_page_plain(plan, page, timer)
        if materialize:
            page_rows = {rel: materialize_rows(rows, page.text)
                         for rel, rows in page_rows.items()}
        out.append((did, page_rows))
    return ("pages", out, timings.parts)


@dataclass
class ScratchOutcome:
    """Result of one :func:`run_scratch` call.

    ``rows_by_did`` maps page id to per-relation rows — materialized
    tuples when ``materialize`` was set, raw :class:`TupleRow` dicts
    otherwise (split-assembled pages follow the same convention).
    ``metrics`` is ready to attach as ``timings.runtime`` (or merge
    into an existing one via :func:`build_metrics`'s ``merge_with``).
    """

    rows_by_did: Dict[str, Dict[str, list]] = field(default_factory=dict)
    metrics: Optional[RuntimeMetrics] = None


def run_scratch(plan: CompiledPlan, pages: Sequence[Page],
                executor: Executor, scheduler: PageScheduler,
                split: SplitConfig, timer: Timer,
                materialize: bool) -> ScratchOutcome:
    """Run from-scratch extraction over ``pages`` on the runtime.

    Whole pages are LPT-batched; pages large enough to dominate the
    run are cut into split-correct parts whose frontier extractions
    run in parallel and are re-assembled here (chained/relational
    work for split pages runs in the parent, seeded through the plan
    memo). Worker timing parts are merged into ``timer``.
    """
    jobs = executor.jobs
    frontier = scan_frontier(plan)
    total_chars = sum(len(p.text) for p in pages)
    split_pages: Dict[str, List[PagePart]] = {}
    if frontier and jobs > 1 and split.enabled:
        max_alpha = max(n.extractor.scope for n in frontier)
        max_beta = max(n.extractor.context for n in frontier)
        for page in pages:
            if not split.should_split(len(page.text), total_chars, jobs):
                continue
            parts = plan_parts(page.did, len(page.text), jobs, split,
                               max_alpha, max_beta)
            if len(parts) > 1:
                split_pages[page.did] = parts
    ordinals = tuple(range(len(frontier)))
    arena = build_arena({p.did: p.text for p in pages}, executor.name)
    whole = [p for p in pages if p.did not in split_pages]
    batches = scheduler.plan(whole, jobs)
    payloads: List[tuple] = []
    costs: List[float] = []
    for batch in batches:
        payloads.append(("pages",
                         tuple((p.did, p.url) for p in batch.pages)))
        costs.append(1 + batch.chars)
    if split_pages:
        max_alpha = max(n.extractor.scope for n in frontier)
        max_beta = max(n.extractor.context for n in frontier)
        for did in sorted(split_pages):
            for part in split_pages[did]:
                payloads.append(("part", part, ordinals))
                costs.append((part.hi - part.lo)
                             + max_alpha + 2 * max_beta)
    outcome = ScratchOutcome()
    wall_start = time.perf_counter()
    try:
        work = executor.run_work(_scratch_work_worker,
                                 (plan, arena.handle, materialize),
                                 payloads, costs)
        wall_seconds = time.perf_counter() - wall_start
        part_exts: Dict[str, Dict[int, Dict[int, list]]] = {}
        part_poison: Dict[str, set] = {}
        batch_seconds: List[float] = []
        extra: List[BatchMetric] = []
        for (seconds, value), cost in zip(work.timed, costs):
            if value[0] == "pages":
                batch_seconds.append(seconds)
                for did, rel_rows in value[1]:
                    outcome.rows_by_did[did] = rel_rows
                for category, secs in value[2].items():
                    timer.timings.add(category, secs)
            else:
                _, did, index, exts, poisoned, parts = value
                part_exts.setdefault(did, {})[index] = exts
                part_poison.setdefault(did, set()).update(poisoned)
                for category, secs in parts.items():
                    timer.timings.add(category, secs)
                extra.append(BatchMetric(index=index, pages=0,
                                         chars=int(cost),
                                         seconds=seconds, kind="part"))
        # Assemble split pages: seed each fully-covered frontier node's
        # memo entry with the concatenated part extensions (part order
        # = serial extraction order), then evaluate the plan — chained
        # IE nodes and relational operators run here, and a poisoned
        # node simply extracts whole-page.
        page_by_did = {p.did: p for p in pages}
        for did in sorted(split_pages):
            page = page_by_did[did]
            parts = split_pages[did]
            by_index = part_exts.get(did, {})
            poisoned = part_poison.get(did, set())
            memo: Dict[int, List[TupleRow]] = {}
            scan_row_cache: Dict[int, TupleRow] = {}
            for ordinal, node in enumerate(frontier):
                if ordinal in poisoned:
                    continue
                if any(p.index not in by_index
                       or ordinal not in by_index[p.index]
                       for p in parts):
                    continue
                scan_row = {node.child.var: Span(did, 0,
                                                 len(page.text))}
                memo[id(node)] = [
                    {**scan_row, **ext} for p in parts
                    for ext in by_index[p.index][ordinal]]
            page_rows = run_page_plain(plan, page, timer, memo=memo)
            if materialize:
                page_rows = {rel: materialize_rows(rows, page.text)
                             for rel, rows in page_rows.items()}
            outcome.rows_by_did[did] = page_rows
    finally:
        arena.close()
    outcome.metrics = build_metrics(
        executor.name, jobs, wall_seconds, batches, batch_seconds,
        extra_batches=extra, steals=work.steals,
        split_pages=len(split_pages),
        split_parts=sum(len(v) for v in split_pages.values()),
        shared_text=arena.shared, slot_busy=work.slot_busy)
    return outcome


class NoReuseSystem:
    """Applies the program from scratch to each snapshot."""

    name = "noreuse"

    def __init__(self, plan: CompiledPlan,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None,
                 split: Optional[SplitConfig] = None) -> None:
        self.plan = plan
        self.executor = executor if executor is not None else SerialExecutor()
        self.scheduler = scheduler if scheduler is not None else PageScheduler()
        self.split = split if split is not None else SplitConfig()

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        del prev_snapshot  # from-scratch by definition
        timings = Timings()
        timer = Timer(timings)
        results: Dict[str, list] = {
            rel: [] for rel in self.plan.program.head_relations()}
        pages = snapshot.canonical_pages()
        with timer.measure_total():
            outcome = run_scratch(self.plan, pages, self.executor,
                                  self.scheduler, self.split, timer,
                                  materialize=True)
            for page in pages:
                for rel, rows in outcome.rows_by_did[page.did].items():
                    results[rel].extend(rows)
        timings.runtime = outcome.metrics
        return SnapshotRunResult(results=results, timings=timings,
                                 pages=len(pages))
