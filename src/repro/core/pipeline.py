"""A durable Delex deployment bound to a corpus store.

:class:`DelexPipeline` is what a production user of the library runs:
snapshots live in a :class:`~repro.corpus.store.CorpusStore`, the
Delex capture files and a small manifest live next to them, and the
extracted relations of every processed snapshot are persisted as JSON.
A pipeline object can be dropped and reconstructed at any time — it
resumes from the manifest, recycling the last processed snapshot's
capture files exactly as if the process had never stopped.

Typical use::

    store = CorpusStore("/data/crawl")
    pipeline = DelexPipeline(store, make_task("play"))
    pipeline.catch_up()              # process any unprocessed snapshots
    ...
    pipeline.ingest(new_snapshot)    # crawl arrives: store + extract
    mentions = pipeline.load_results(store.latest_index)
"""

from __future__ import annotations

import json
import os
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..corpus.store import CorpusStore
from ..extractors.library import IETask
from ..reuse.engine import SnapshotRunResult
from .delex import DelexSystem

_MANIFEST = "pipeline.json"


class DelexPipeline:
    """Store-backed, restart-safe Delex processing."""

    def __init__(self, store: CorpusStore, task: IETask,
                 **system_kwargs) -> None:
        self.store = store
        self.task = task
        self.workdir = os.path.join(store.root, "reuse",
                                    f"delex_{task.name}")
        os.makedirs(self.workdir, exist_ok=True)
        self.system = DelexSystem(task, self.workdir, **system_kwargs)
        self.processed_index: Optional[int] = None
        self._load_manifest()

    # -- persistence -------------------------------------------------------

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.workdir, _MANIFEST)

    def _load_manifest(self) -> None:
        if not os.path.exists(self._manifest_path):
            return
        with open(self._manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("task") != self.task.name:
            raise ValueError(
                f"workdir {self.workdir} belongs to task "
                f"{manifest.get('task')!r}, not {self.task.name!r}")
        self.processed_index = manifest["processed_index"]
        history_indexes = manifest["history"]
        history = [self.store.load(i) for i in history_indexes]
        prev_dir = manifest["prev_dir"]
        self.system.resume(history, prev_dir, manifest["serial"])

    def _save_manifest(self) -> None:
        history = [s.index for s in self.system._history]
        manifest = {
            "task": self.task.name,
            "processed_index": self.processed_index,
            "history": history,
            "prev_dir": self.system._prev_dir,
            "serial": self.system._snapshot_serial,
        }
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(manifest, f)
        os.replace(tmp, self._manifest_path)

    def _results_path(self, index: int) -> str:
        return os.path.join(self.workdir, f"results_{index:04d}.json")

    def _save_results(self, index: int, result: SnapshotRunResult) -> None:
        payload = {rel: [list(map(list, row)) for row in rows]
                   for rel, rows in result.results.items()}
        tmp = self._results_path(index) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp, self._results_path(index))

    def load_results(self, index: int) -> Dict[str, FrozenSet[Tuple]]:
        """Extracted relations of a processed snapshot (canonical form,
        comparable with :func:`repro.core.runner.canonical_results`)."""
        path = self._results_path(index)
        if not os.path.exists(path):
            raise KeyError(f"snapshot {index} has no stored results")
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        out: Dict[str, FrozenSet[Tuple]] = {}
        for rel, rows in payload.items():
            out[rel] = frozenset(
                tuple((var, tuple(value) if isinstance(value, list)
                       else value) for var, value in row)
                for row in rows)
        return out

    # -- processing ---------------------------------------------------------

    def pending_indexes(self) -> List[int]:
        """Stored snapshots not yet processed, in order."""
        start = -1 if self.processed_index is None else self.processed_index
        return [i for i in self.store.indexes() if i > start]

    def catch_up(self) -> List[Tuple[int, SnapshotRunResult]]:
        """Process every stored-but-unprocessed snapshot."""
        out: List[Tuple[int, SnapshotRunResult]] = []
        for index in self.pending_indexes():
            snapshot = self.store.load(index)
            result = self.system.process(snapshot)
            self.processed_index = index
            self._save_results(index, result)
            self._save_manifest()
            out.append((index, result))
        return out

    def ingest(self, snapshot: Snapshot) -> SnapshotRunResult:
        """Append a freshly crawled snapshot and extract from it."""
        self.store.append(snapshot)
        (pair,) = self.catch_up()[-1:]
        return pair[1]
