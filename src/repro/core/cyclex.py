"""The Cyclex baseline: whole-program, single-blackbox reuse.

Cyclex [Chen et al., ICDE-08] treats the entire IE program as one IE
blackbox with program-level scope/context (α_prog, β_prog). Per page
it matches the new version against the old one with a single matcher
(chosen per snapshot by a small cost probe, mirroring the Cyclex
optimizer), copies final mentions from guaranteed-safe zones, and
re-runs the whole program over the derived extraction regions.

Because tight program-level α/β are hard to obtain for multi-blackbox
programs (Section 3), the α_prog of the section-based tasks is page
scale — extraction regions blow up to nearly the whole page whenever
anything changed, which is precisely why Delex wins on those tasks.

Like the other systems, the page loop is routed through
:mod:`repro.runtime`: the parent reads the previous result files
sequentially in canonical page order, per-page match/copy/extract work
fans out across the executor's workers, and the parent records the new
result files in canonical order so they stay byte-identical to a
serial run.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..fastpath.config import FastPathConfig
from ..fastpath.fingerprint import pages_identical
from ..fastpath.stats import FastPathStats
from ..matchers.base import DN_NAME, ST_NAME, UD_NAME, MatchCache
from ..matchers.registry import make_matcher
from ..plan.compile import CompiledPlan
from ..reuse.engine import SnapshotRunResult, materialize_rows
from ..reuse.files import (
    InputTuple,
    OutputTuple,
    ReuseFileReader,
    ReuseFileWriter,
    decode_fields,
    encode_fields,
)
from ..reuse.regions import dedupe_extensions, derive_reuse, extraction_keep
from ..runtime.executor import Executor, SerialExecutor
from ..runtime.metrics import BatchMetric, build_metrics
from ..runtime.scheduler import PageScheduler
from ..runtime.shm import build_arena
from ..runtime.split import (
    PagePart,
    PartPoisoned,
    SplitConfig,
    part_extensions,
    plan_parts,
)
from ..text.document import Page
from ..text.regions import MatchSegment
from ..text.span import Interval, Span
from ..timing import COPY, EXTRACT, IO, MATCH, OPT, Timer, Timings
from .noreuse import run_page_plain, scan_frontier

_PROGRAM_ITID = 0

#: Worker state: everything an item needs besides its page text —
#: ``(plan, alpha, beta, matcher_name, kernel, arena_handle)``; the
#: arena carries page text by reference/shared memory.
_CyclexState = Tuple

#: One page's work item (text comes from the arena):
#: ``("fresh", did, url)`` re-extracts from scratch;
#: ``("pair", did, url, q_did, q_url, prev_rows)`` recycles from the
#: old version; ``("copy", did, url, prev_rows)`` wholesale-recycles a
#: byte-identical page (the fingerprint fast path — no matching, no
#: extraction).
_WorkItem = Tuple


def _run_region(plan: CompiledPlan, page: Page, er: Interval,
                timer: Timer) -> Dict[str, list]:
    """Run the whole program over one extraction region."""
    sub_page = Page(did=page.did, url=page.url,
                    text=page.text[er.start:er.end])
    sub_rows = run_page_plain(plan, sub_page, timer)
    shifted: Dict[str, list] = {}
    for rel, rows in sub_rows.items():
        shifted[rel] = [_shift_row(row, er.start) for row in rows]
    return shifted


def _process_pair(plan: CompiledPlan, alpha: int, beta: int, matcher,
                  page: Page, q_page: Page,
                  prev_rows: Dict[str, List[OutputTuple]],
                  timer: Timer) -> Dict[str, list]:
    """Match/copy/extract one changed page against its old version."""
    with timer.measure(MATCH):
        segments = [
            MatchSegment(s.p_start, s.q_start, s.length, _PROGRAM_ITID)
            for s in matcher.match(page.text, page.whole,
                                   q_page.text, q_page.whole)
        ]
    q_input = {_PROGRAM_ITID: InputTuple(_PROGRAM_ITID, q_page.did, 0,
                                         len(q_page.text))}
    # Shared extraction regions (program-level α/β).
    with timer.measure(COPY):
        derivation = derive_reuse(
            page.whole, page.did, segments, q_input,
            {}, alpha, beta)
    extraction_rows: Dict[str, list] = {rel: [] for rel in prev_rows}
    for er in derivation.extraction_regions:
        sub_rows = _run_region(plan, page, er, timer)
        for rel, rows in sub_rows.items():
            for row in rows:
                extent = _row_extent(row)
                if extraction_keep(extent, er, page.whole, beta):
                    extraction_rows.setdefault(rel, []).append(row)
    page_rows: Dict[str, list] = {}
    for rel in plan.program.head_relations():
        with timer.measure(COPY):
            copy_derivation = derive_reuse(
                page.whole, page.did, segments, q_input,
                {_PROGRAM_ITID: prev_rows.get(rel, [])},
                alpha, beta)
            page_rows[rel] = dedupe_extensions(
                copy_derivation.copied + extraction_rows.get(rel, []))
    return page_rows


def _cyclex_work_worker(state: _CyclexState, item):
    """Process one work item (runs in any executor).

    ``item`` is either ``("batch", (work items...))`` — whole pages,
    reconstructed from the arena — or ``("part", part, ordinals)``, a
    split-correct sub-page slice of a large fresh page whose frontier
    IE nodes extract here and are re-assembled by the parent.

    A fresh matcher and match cache per batch is results-identical to
    the serial single-matcher run: Cyclex never assigns RU, so the
    cache is write-only.
    """
    plan, alpha, beta, matcher_name, kernel, arena = state
    timings = Timings()
    timer = Timer(timings)
    if item[0] == "part":
        _, part, ordinals = item
        frontier = scan_frontier(plan)
        text = arena.text("c:" + part.did)
        exts: Dict[int, list] = {}
        poisoned: List[int] = []
        for ordinal in ordinals:
            try:
                with timer.measure(EXTRACT):
                    exts[ordinal] = part_extensions(frontier[ordinal],
                                                    text, part)
            except PartPoisoned:
                poisoned.append(ordinal)
        return ("part", part.did, part.index, exts, poisoned,
                timings.parts)
    matcher = make_matcher(
        matcher_name, MatchCache(),
        min_length=max(8, min(2 * beta + 2, 32)), kernel=kernel)
    out: List[Tuple[str, Dict[str, list]]] = []
    for work_item in item[1]:
        if work_item[0] == "fresh":
            _, did, url = work_item
            page = Page(did, url, arena.text("c:" + did))
            out.append((did, run_page_plain(plan, page, timer)))
        elif work_item[0] == "copy":
            # Byte-identical page: the slow path's full-page match
            # yields one full-page copy zone and no extraction
            # regions, so its output per relation is exactly
            # ``dedupe_extensions(decoded previous rows)``. Reproduce
            # that directly without running the matcher.
            _, did, url, prev_rows = work_item
            with timer.measure(COPY):
                page_rows = {
                    rel: dedupe_extensions(
                        [decode_fields(o.fields, did)
                         for o in prev_rows.get(rel, [])])
                    for rel in plan.program.head_relations()}
            out.append((did, page_rows))
        else:
            _, did, url, q_did, q_url, prev_rows = work_item
            page = Page(did, url, arena.text("c:" + did))
            q_page = Page(q_did, q_url, arena.text("q:" + q_did))
            out.append((did, _process_pair(plan, alpha, beta, matcher,
                                           page, q_page, prev_rows,
                                           timer)))
    return ("batch", out, timings.parts)


class CyclexSystem:
    """Single-blackbox recycling over the whole IE program."""

    name = "cyclex"

    def __init__(self, plan: CompiledPlan, workdir: str,
                 program_alpha: int, program_beta: int,
                 probe_pages: int = 6,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None,
                 fastpath: Optional[FastPathConfig] = None,
                 fixed_matcher: Optional[str] = None,
                 split: Optional[SplitConfig] = None) -> None:
        self.plan = plan
        self.workdir = workdir
        self.alpha = program_alpha
        self.beta = program_beta
        self.probe_pages = probe_pages
        self.executor = executor if executor is not None else SerialExecutor()
        self.scheduler = scheduler if scheduler is not None else PageScheduler()
        self.split = split if split is not None else SplitConfig()
        self.fastpath = FastPathConfig.from_flag(fastpath)
        # Pin the per-snapshot matcher choice (skips the timing-based
        # probe, whose winner is machine-dependent) — lets parity tests
        # compare two runs byte-for-byte.
        self.fixed_matcher = fixed_matcher
        os.makedirs(workdir, exist_ok=True)
        self._prev_dir: Optional[str] = None
        self._snapshot_serial = 0
        self.last_matcher: Optional[str] = None

    def _result_file(self, directory: str, rel: str) -> str:
        return os.path.join(directory, f"cyclex_{rel}.O.reuse")

    def _kernel(self) -> str:
        """Matcher kernel mode for this run's fastpath setting."""
        return "auto" if self.fastpath.want("kernels") else "off"

    # -- matcher selection (the Cyclex optimizer, probe-based) ------------

    def _choose_matcher(self, snapshot: Snapshot,
                        prev_snapshot: Snapshot, timer: Timer) -> str:
        """Pick DN/UD/ST by probing a few changed page pairs.

        Estimated per-page cost = match time + extraction time scaled
        by the fraction of the page left uncovered by copy zones.
        Extraction rate is estimated from one from-scratch page run.
        """
        with timer.measure(OPT):
            # Sample shared pages in canonical page order so the probe
            # sees the corpus's real identical/changed mix (a
            # changed-only sample would never credit a matcher for
            # cheap full-page copies on identical pages).
            pairs: List[Tuple[Page, Page]] = []
            for page in snapshot.canonical_pages():
                old = prev_snapshot.get(page.url)
                if old is not None:
                    pairs.append((page, old))
                if len(pairs) >= self.probe_pages:
                    break
            if not pairs:
                return UD_NAME  # nothing shared: matcher never runs
            # Extraction seconds per character, probed on one page.
            sample_page = pairs[0][0]
            start = time.perf_counter()
            probe_timer = Timer(Timings())
            run_page_plain(self.plan, sample_page, probe_timer)
            extract_rate = ((time.perf_counter() - start)
                            / max(1, len(sample_page.text)))
            best_name, best_cost = DN_NAME, extract_rate * sum(
                len(p.text) for p, _ in pairs)
            for name in (UD_NAME, ST_NAME):
                matcher = make_matcher(
                    name, MatchCache(),
                    min_length=max(8, min(2 * self.beta + 2, 32)),
                    kernel=self._kernel())
                cost = 0.0
                for page, old in pairs:
                    t0 = time.perf_counter()
                    segments = matcher.match(page.text, page.whole,
                                             old.text, old.whole)
                    cost += time.perf_counter() - t0
                    derivation = derive_reuse(
                        page.whole, page.did,
                        [MatchSegment(s.p_start, s.q_start, s.length,
                                      _PROGRAM_ITID) for s in segments],
                        {_PROGRAM_ITID: InputTuple(_PROGRAM_ITID, old.did,
                                                   0, len(old.text))},
                        {}, self.alpha, self.beta)
                    uncovered = sum(
                        len(er) for er in derivation.extraction_regions)
                    cost += extract_rate * uncovered
                if cost < best_cost:
                    best_name, best_cost = name, cost
            return best_name

    # -- snapshot processing ----------------------------------------------

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        timings = Timings()
        timer = Timer(timings)
        relations = self.plan.program.head_relations()
        out_dir = os.path.join(self.workdir,
                               f"snap_{self._snapshot_serial:04d}")
        os.makedirs(out_dir, exist_ok=True)
        writers = {rel: ReuseFileWriter(self._result_file(out_dir, rel))
                   for rel in relations}
        readers: Dict[str, ReuseFileReader] = {}
        if self._prev_dir is not None and prev_snapshot is not None:
            for rel in relations:
                path = self._result_file(self._prev_dir, rel)
                if os.path.exists(path):
                    readers[rel] = ReuseFileReader(path)
        results: Dict[str, list] = {rel: [] for rel in relations}
        pages = snapshot.canonical_pages()
        pages_with_prev = 0
        fp_stats = FastPathStats()
        wall_seconds = 0.0
        batches: list = []
        timed: List[Tuple[float, object]] = []
        try:
            with timer.measure_total():
                matcher_name = DN_NAME
                if prev_snapshot is not None and readers:
                    if self.fixed_matcher is not None:
                        matcher_name = self.fixed_matcher
                    else:
                        matcher_name = self._choose_matcher(
                            snapshot, prev_snapshot, timer)
                self.last_matcher = matcher_name
                # The unchanged-page short circuit is only safe when
                # the slow path is guaranteed a full-page self-match:
                # UD always produces one, ST only on pages at least
                # ``min_length`` long (shorter ones fall through).
                min_length = max(8, min(2 * self.beta + 2, 32))
                identity_ok = (self.fastpath.want("unchanged_page")
                               and matcher_name in (UD_NAME, ST_NAME))
                # Phase 1 (parent, canonical order): pair pages with
                # their previous versions and stream the previous
                # result files sequentially.
                work: Dict[str, _WorkItem] = {}
                q_texts: Dict[str, str] = {}
                fresh_dids: set = set()
                for page in pages:
                    q_page = (prev_snapshot.get(page.url)
                              if prev_snapshot is not None else None)
                    if q_page is not None:
                        pages_with_prev += 1
                    if q_page is None or not readers \
                            or matcher_name == DN_NAME:
                        if q_page is not None:
                            self._skip_groups(readers, page.did, timer)
                        work[page.did] = ("fresh", page.did, page.url)
                        fresh_dids.add(page.did)
                        continue
                    fp_stats.pages_paired += 1
                    prev_rows: Dict[str, List[OutputTuple]] = {}
                    for rel, reader in readers.items():
                        with timer.measure(IO):
                            prev_rows[rel] = reader.read_page_outputs(
                                page.did)
                    threshold = (min_length if matcher_name == ST_NAME
                                 else 1)
                    if (identity_ok and len(page.text) >= threshold
                            and pages_identical(page, q_page)):
                        fp_stats.pages_short_circuited += 1
                        fp_stats.matcher_calls_avoided += 1
                        fp_stats.tuples_recycled += sum(
                            len(rows) for rows in prev_rows.values())
                        work[page.did] = ("copy", page.did, page.url,
                                          prev_rows)
                        continue
                    q_texts["q:" + q_page.did] = q_page.text
                    work[page.did] = ("pair", page.did, page.url,
                                      q_page.did, q_page.url, prev_rows)
                # Phase 2: per-page match/copy/extract on the runtime;
                # large fresh pages split into sub-page parts.
                jobs = self.executor.jobs
                frontier = scan_frontier(self.plan)
                split_pages: Dict[str, List[PagePart]] = {}
                if frontier and jobs > 1 and self.split.enabled:
                    total_chars = sum(len(p.text) for p in pages)
                    f_alpha = max(n.extractor.scope for n in frontier)
                    f_beta = max(n.extractor.context for n in frontier)
                    for page in pages:
                        if page.did not in fresh_dids:
                            continue
                        if not self.split.should_split(
                                len(page.text), total_chars, jobs):
                            continue
                        parts = plan_parts(page.did, len(page.text),
                                           jobs, self.split, f_alpha,
                                           f_beta)
                        if len(parts) > 1:
                            split_pages[page.did] = parts
                texts = {"c:" + p.did: p.text for p in pages}
                texts.update(q_texts)
                arena = build_arena(texts, self.executor.name)
                whole = [p for p in pages if p.did not in split_pages]
                batches = self.scheduler.plan(whole, jobs)
                payloads: List[tuple] = []
                costs: List[float] = []
                for batch in batches:
                    payloads.append(("batch",
                                     tuple(work[p.did]
                                           for p in batch.pages)))
                    costs.append(1 + batch.chars)
                ordinals = tuple(range(len(frontier)))
                for did in sorted(split_pages):
                    for part in split_pages[did]:
                        payloads.append(("part", part, ordinals))
                        costs.append(float(part.hi - part.lo))
                state: _CyclexState = (self.plan, self.alpha, self.beta,
                                       matcher_name, self._kernel(),
                                       arena.handle)
                wall_start = time.perf_counter()
                try:
                    work_res = self.executor.run_work(
                        _cyclex_work_worker, state, payloads, costs)
                    wall_seconds = time.perf_counter() - wall_start
                    rows_by_did: Dict[str, Dict[str, list]] = {}
                    part_exts: Dict[str, Dict[int, Dict[int, list]]] = {}
                    part_poison: Dict[str, set] = {}
                    batch_seconds: List[float] = []
                    extra_batches: List[BatchMetric] = []
                    for (seconds, value), cost in zip(work_res.timed,
                                                      costs):
                        if value[0] == "batch":
                            batch_seconds.append(seconds)
                            for did, page_rows in value[1]:
                                rows_by_did[did] = page_rows
                            for category, secs in value[2].items():
                                timings.add(category, secs)
                        else:
                            _, did, index, exts, poisoned, parts = value
                            part_exts.setdefault(did, {})[index] = exts
                            part_poison.setdefault(did,
                                                   set()).update(poisoned)
                            for category, secs in parts.items():
                                timings.add(category, secs)
                            extra_batches.append(BatchMetric(
                                index=index, pages=0, chars=int(cost),
                                seconds=seconds, kind="part"))
                    # Assemble split fresh pages in the parent: seed
                    # each fully-covered frontier node with its merged
                    # part extensions, evaluate the rest of the plan.
                    page_by_did = {p.did: p for p in pages}
                    for did in sorted(split_pages):
                        page = page_by_did[did]
                        parts = split_pages[did]
                        by_index = part_exts.get(did, {})
                        poisoned = part_poison.get(did, set())
                        memo: Dict[int, list] = {}
                        for ordinal, node in enumerate(frontier):
                            if ordinal in poisoned:
                                continue
                            if any(p.index not in by_index
                                   or ordinal not in by_index[p.index]
                                   for p in parts):
                                continue
                            scan_row = {node.child.var:
                                        Span(did, 0, len(page.text))}
                            memo[id(node)] = [
                                {**scan_row, **ext} for p in parts
                                for ext in by_index[p.index][ordinal]]
                        rows_by_did[did] = run_page_plain(
                            self.plan, page, timer, memo=memo)
                finally:
                    arena.close()
                # Phase 3 (parent, canonical order): record the new
                # result files byte-identically to a serial run.
                for page in pages:
                    self._emit(page, rows_by_did[page.did], writers,
                               results, timer)
        finally:
            for writer in writers.values():
                writer.close()
            for reader in readers.values():
                reader.close()
        timings.runtime = build_metrics(
            self.executor.name, self.executor.jobs, wall_seconds,
            batches, batch_seconds,
            extra_batches=extra_batches, steals=work_res.steals,
            split_pages=len(split_pages),
            split_parts=sum(len(v) for v in split_pages.values()),
            shared_text=arena.shared, slot_busy=work_res.slot_busy)
        timings.fastpath = fp_stats
        self._prev_dir = out_dir
        self._snapshot_serial += 1
        return SnapshotRunResult(results=results, timings=timings,
                                 pages=len(pages),
                                 pages_with_previous=pages_with_prev)

    def _skip_groups(self, readers: Dict[str, ReuseFileReader],
                     did: str, timer: Timer) -> None:
        for reader in readers.values():
            with timer.measure(IO):
                reader.read_page_outputs(did)

    def _emit(self, page: Page, page_rows: Dict[str, list],
              writers: Dict[str, ReuseFileWriter],
              results: Dict[str, list], timer: Timer) -> None:
        for rel, rows in page_rows.items():
            writers[rel].begin_page(page.did)
            with timer.measure(IO):
                for row in rows:
                    writers[rel].append_output(page.did, _PROGRAM_ITID,
                                               encode_fields(row))
            results[rel].extend(materialize_rows(rows, page.text))


def _shift_row(row: dict, delta: int) -> dict:
    out = {}
    for var, value in row.items():
        if isinstance(value, Span):
            out[var] = Span(value.did, value.start + delta,
                            value.end + delta)
        else:
            out[var] = value
    return out


def _row_extent(row: dict) -> Optional[Tuple[int, int]]:
    spans = [v for v in row.values() if isinstance(v, Span)]
    if not spans:
        return None
    return (min(s.start for s in spans), max(s.end for s in spans))
