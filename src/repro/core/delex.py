"""The end-to-end Delex system (Section 7).

Given an IE task (xlog program + registry + declarations), Delex:

1. compiles the program into an execution tree and identifies its IE
   units and chains;
2. per snapshot, estimates cost-model statistics from a small page
   sample and the last ``k`` snapshots, then runs Algorithm 1 to assign
   a matcher to every IE unit;
3. executes the so-augmented tree with the reuse engine, recycling the
   previous snapshot's capture files and writing capture for the next.

The first snapshot is a bootstrap: plain execution plus capture.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..extractors.library import IETask
from ..fastpath.config import FastPathConfig
from ..fastpath.matchcache import CrossSnapshotMatchCache
from ..obs import registry as _oreg
from ..optimizer.params import Statistics
from ..optimizer.search import SearchResult, search_plan
from ..optimizer.stats import collect_statistics
from ..plan.compile import CompiledPlan, compile_program
from ..plan.units import IEChain, IEUnit, find_units, partition_chains
from ..reuse.engine import PlanAssignment, ReuseEngine, SnapshotRunResult
from ..reuse.scope import PageMatchScope
from ..runtime.executor import Executor
from ..runtime.scheduler import PageScheduler
from ..runtime.split import SplitConfig
from ..timing import OPT, Timer, Timings


class DelexSystem:
    """Multi-blackbox IE over evolving text with unit-level recycling."""

    name = "delex"

    def __init__(self, task: IETask, workdir: str,
                 sample_size: int = 8, k_snapshots: int = 3,
                 fixed_assignment: Optional[PlanAssignment] = None,
                 capture_history: int = 2,
                 scope: Optional["PageMatchScope"] = None,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None,
                 fastpath: Optional[FastPathConfig] = None,
                 split: Optional[SplitConfig] = None,
                 collect_page_rows: bool = False) -> None:
        self.task = task
        self.workdir = workdir
        self.executor = executor
        self.scheduler = scheduler
        self.split = split
        self.fastpath = FastPathConfig.from_flag(fastpath)
        os.makedirs(workdir, exist_ok=True)
        self.plan: CompiledPlan = compile_program(task.program,
                                                  task.registry)
        self.units: List[IEUnit] = find_units(self.plan)
        self.chains: List[IEChain] = partition_chains(self.units)
        self.sample_size = sample_size
        self.k_snapshots = k_snapshots
        self.fixed_assignment = fixed_assignment
        self.scope = scope
        self.capture_history = max(1, capture_history)
        self._history: List[Snapshot] = []
        self._prev_dir: Optional[str] = None
        self._snapshot_serial = 0
        self.last_search: Optional[SearchResult] = None
        self.last_assignment: Optional[PlanAssignment] = None
        #: Statistics behind ``last_search`` and the snapshot index they
        #: were sampled on. On snapshots where the plan is kept without
        #: re-sampling (fixed assignment, adaptive keep) these stay at
        #: the values that justified the current plan.
        self.last_stats: Optional[Statistics] = None
        self.last_stats_index: Optional[int] = None
        #: ``f`` estimator passed to the collector: "flat" reproduces
        #: the paper; the adaptive controller samples with "recency".
        self.f_mode = "flat"
        self._last_result: Optional[SnapshotRunResult] = None
        self._extract_rates: Dict[str, float] = {}
        #: When ``collect_page_rows`` is set, every ``process`` call
        #: additionally leaves the run's materialized rows split by
        #: producing page in ``last_page_rows`` (``did -> relation ->
        #: rows``) — the serving layer's delta-apply input, collected
        #: at zero extra extraction cost by the engine.
        self.collect_page_rows = collect_page_rows
        self.last_page_rows: Optional[Dict[str, Dict[str, list]]] = None
        #: Cross-snapshot match cache: owned here (not by the engine,
        #: which is rebuilt per ``process`` call) so content-keyed
        #: match results survive across the whole snapshot series.
        self.match_cache: Optional[CrossSnapshotMatchCache] = None
        if (self.fastpath.want("match_cache")
                and self.fastpath.want("match_memo")):
            self.match_cache = CrossSnapshotMatchCache()

    def _out_dir(self) -> str:
        return os.path.join(self.workdir,
                            f"snap_{self._snapshot_serial:04d}")

    def resume(self, history: List[Snapshot], prev_dir: Optional[str],
               serial: int) -> None:
        """Restore state after a process restart.

        ``history`` lists the most recently processed snapshots, oldest
        first (at least the last one); ``prev_dir`` is the capture
        directory written for the last processed snapshot; ``serial``
        is the next capture serial to use. Used by
        :class:`~repro.core.pipeline.DelexPipeline`.
        """
        if serial < 0:
            raise ValueError("serial must be >= 0")
        if prev_dir is not None and not os.path.isdir(prev_dir):
            raise ValueError(f"capture directory {prev_dir!r} missing")
        self._history = list(history)
        self._prev_dir = prev_dir
        self._snapshot_serial = serial
        self._last_result = None

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        """Process one snapshot; call with consecutive snapshots.

        ``prev_snapshot`` is accepted for interface symmetry with the
        baselines but Delex tracks its own history; when provided it
        must be the snapshot Delex saw last.
        """
        if prev_snapshot is not None and self._history:
            if prev_snapshot.index != self._history[-1].index:
                raise ValueError("prev_snapshot is not the last snapshot "
                                 "processed by this DelexSystem")
        timings = Timings()
        timer = Timer(timings)
        assignment = self._choose_assignment(snapshot, timer)
        self.last_assignment = assignment
        engine = ReuseEngine(self.plan, self.units, assignment,
                             scope=self.scope, executor=self.executor,
                             scheduler=self.scheduler,
                             fastpath=self.fastpath,
                             match_cache=self.match_cache,
                             split=self.split)
        out_dir = self._out_dir()
        page_rows_out: Optional[Dict[str, Dict[str, list]]] = (
            {} if self.collect_page_rows else None)
        result = engine.run_snapshot(
            snapshot,
            self._history[-1] if self._history else None,
            self._prev_dir, out_dir, timings=timings,
            page_rows_out=page_rows_out)
        self.last_page_rows = page_rows_out
        self._last_result = result
        if self.match_cache is not None and _oreg.ENABLED:
            _oreg.publish_matchcache(self.name, self.match_cache)
        self._gc_old_capture()
        self._prev_dir = out_dir
        self._snapshot_serial += 1
        self._history.append(snapshot)
        if len(self._history) > max(self.k_snapshots + 1, 4):
            self._history.pop(0)
        return result

    def _choose_assignment(self, snapshot: Snapshot,
                           timer: Timer) -> PlanAssignment:
        """Pick the matcher assignment for ``snapshot``.

        Base behavior re-optimizes every reuse snapshot: sample, search,
        adopt. :class:`~repro.adapt.replan.AdaptiveDelexSystem`
        overrides this to plan once and re-enter the optimizer only on
        a drift signal.
        """
        if not self._history or self._prev_dir is None:
            return self.fixed_assignment or PlanAssignment.all_dn(self.units)
        if self.fixed_assignment is not None:
            return self.fixed_assignment
        search, _stats, _seconds = self._sample_and_search(snapshot, timer)
        return search.assignment

    def _sample_and_search(self, snapshot: Snapshot, timer: Timer
                           ) -> Tuple[SearchResult, Statistics, float]:
        """Run the §6.3 collector plus Algorithm-1 search; returns the
        search result, the sampled statistics, and the wall seconds
        spent (also attributed to the Opt timing category)."""
        start = time.perf_counter()
        with timer.measure_total():
            with timer.measure(OPT):
                prev_stats = (self._last_result.unit_stats
                              if self._last_result is not None else None)
                stats = collect_statistics(
                    self.plan, self.units, snapshot, self._history,
                    sample_size=self.sample_size,
                    k_snapshots=self.k_snapshots,
                    max_match_pairs=min(self.sample_size, 3),
                    prev_capture_dir=self._prev_dir,
                    prev_unit_stats=prev_stats,
                    known_extract_rates=self._extract_rates,
                    f_mode=self.f_mode)
                search = search_plan(self.units, stats, self.chains)
        self.last_search = search
        self.last_stats = stats
        self.last_stats_index = snapshot.index
        return search, stats, time.perf_counter() - start

    def _gc_old_capture(self) -> None:
        """Drop capture directories older than ``capture_history``."""
        keep_from = self._snapshot_serial - self.capture_history
        for serial in range(max(0, keep_from)):
            directory = os.path.join(self.workdir, f"snap_{serial:04d}")
            if os.path.isdir(directory):
                for name in os.listdir(directory):
                    os.unlink(os.path.join(directory, name))
                os.rmdir(directory)

    def describe_plan(self) -> Dict[str, str]:
        """The matcher assignment used for the last snapshot."""
        if self.last_assignment is None:
            return {}
        return dict(self.last_assignment.matchers)
