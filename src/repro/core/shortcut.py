"""The Shortcut baseline: reuse IE results on byte-identical pages.

Shortcut hashes each page; when the page at a URL is identical to its
previous version, the previous final results are copied over, otherwise
the program runs from scratch on the page. This is the
reuse-at-page-level strawman of Section 3 — great when the corpus
barely changes (DBLife), nearly useless when most pages receive edits
(Wikipedia).

The run is structured in three phases so the changed pages — the only
ones that need extraction — can fan out across the runtime's workers:

1. *Classify & copy* (parent, canonical page order): hash pages, read
   previous results sequentially, decode copies for identical pages.
2. *Extract* (runtime): changed pages are batched by the scheduler and
   evaluated from scratch on the executor's workers.
3. *Merge & record* (parent, canonical page order): results are merged
   back and the per-relation result files are written in the same page
   order regardless of backend, so the files stay byte-identical to a
   serial run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..plan.compile import CompiledPlan
from ..reuse.engine import SnapshotRunResult, materialize_rows
from ..reuse.files import ReuseFileReader, ReuseFileWriter, encode_fields
from ..runtime.executor import Executor, SerialExecutor
from ..runtime.scheduler import PageScheduler
from ..runtime.split import SplitConfig
from ..text.span import Span
from ..timing import COPY, IO, Timer, Timings
from .noreuse import run_scratch


class ShortcutSystem:
    """Copies final results for unchanged pages, re-extracts the rest."""

    name = "shortcut"

    def __init__(self, plan: CompiledPlan, workdir: str,
                 executor: Optional[Executor] = None,
                 scheduler: Optional[PageScheduler] = None,
                 split: Optional[SplitConfig] = None) -> None:
        self.plan = plan
        self.workdir = workdir
        self.executor = executor if executor is not None else SerialExecutor()
        self.scheduler = scheduler if scheduler is not None else PageScheduler()
        self.split = split if split is not None else SplitConfig()
        os.makedirs(workdir, exist_ok=True)
        self._prev_dir: Optional[str] = None
        self._prev_digests: Dict[str, str] = {}
        self._snapshot_serial = 0

    def _result_file(self, directory: str, rel: str) -> str:
        return os.path.join(directory, f"shortcut_{rel}.O.reuse")

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        timings = Timings()
        timer = Timer(timings)
        relations = self.plan.program.head_relations()
        out_dir = os.path.join(self.workdir,
                               f"snap_{self._snapshot_serial:04d}")
        os.makedirs(out_dir, exist_ok=True)
        writers = {rel: ReuseFileWriter(self._result_file(out_dir, rel))
                   for rel in relations}
        readers: Dict[str, ReuseFileReader] = {}
        if self._prev_dir is not None and prev_snapshot is not None:
            for rel in relations:
                path = self._result_file(self._prev_dir, rel)
                if os.path.exists(path):
                    readers[rel] = ReuseFileReader(path)
        results: Dict[str, list] = {rel: [] for rel in relations}
        digests: Dict[str, str] = {}
        pages = snapshot.canonical_pages()
        outcome = None
        try:
            with timer.measure_total():
                # Phase 1: classify pages; copy results for identical
                # ones from the previous result files (sequential scan).
                fresh_pages: List = []
                page_rows_by_did: Dict[str, Dict[str, List[dict]]] = {}
                for page in pages:
                    digests[page.url] = page.digest
                    identical = (
                        prev_snapshot is not None
                        and self._prev_digests.get(page.url) == page.digest
                        and readers)
                    if identical:
                        copied: Dict[str, List[dict]] = {}
                        for rel in relations:
                            with timer.measure(IO):
                                outs = readers[rel].read_page_outputs(
                                    page.did)
                            with timer.measure(COPY):
                                copied[rel] = [
                                    _decode_row(o.fields, page.did)
                                    for o in outs]
                        page_rows_by_did[page.did] = copied
                    else:
                        # Keep readers in sync: skip this page's groups.
                        for rel, reader in readers.items():
                            if prev_snapshot is not None and \
                                    prev_snapshot.get(page.url) is not None:
                                with timer.measure(IO):
                                    reader.read_page_outputs(page.did)
                        fresh_pages.append(page)
                # Phase 2: changed pages fan out across the runtime
                # (LPT batches + sub-page splits + shared-memory text).
                outcome = run_scratch(self.plan, fresh_pages,
                                      self.executor, self.scheduler,
                                      self.split, timer,
                                      materialize=False)
                page_rows_by_did.update(outcome.rows_by_did)
                # Phase 3: record results in canonical page order so the
                # result files are byte-identical to a serial run.
                for page in pages:
                    page_rows = page_rows_by_did[page.did]
                    for rel in relations:
                        writers[rel].begin_page(page.did)
                        rows = page_rows[rel]
                        self._record(writers[rel], page.did, rows, timer)
                        results[rel].extend(
                            materialize_rows(rows, page.text))
        finally:
            for writer in writers.values():
                writer.close()
            for reader in readers.values():
                reader.close()
        timings.runtime = outcome.metrics if outcome is not None else None
        self._prev_digests = digests
        self._prev_dir = out_dir
        self._snapshot_serial += 1
        identical_pages = sum(
            1 for page in snapshot
            if prev_snapshot is not None
            and prev_snapshot.get(page.url) is not None
            and prev_snapshot.get(page.url).digest == page.digest)
        return SnapshotRunResult(results=results, timings=timings,
                                 pages=len(snapshot),
                                 pages_with_previous=identical_pages)

    @staticmethod
    def _record(writer: ReuseFileWriter, did: str, rows: List[dict],
                timer: Timer) -> None:
        with timer.measure(IO):
            for row in rows:
                writer.append_output(did, 0, encode_fields(row))


def _decode_row(fields: Tuple[Tuple[str, str, object, object], ...],
                did: str) -> dict:
    row: dict = {}
    for name, kind, a, b in fields:
        row[name] = Span(did, a, b) if kind == "s" else a
    return row
