"""The Shortcut baseline: reuse IE results on byte-identical pages.

Shortcut hashes each page; when the page at a URL is identical to its
previous version, the previous final results are copied over, otherwise
the program runs from scratch on the page. This is the
reuse-at-page-level strawman of Section 3 — great when the corpus
barely changes (DBLife), nearly useless when most pages receive edits
(Wikipedia).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..corpus.snapshot import Snapshot
from ..plan.compile import CompiledPlan
from ..reuse.engine import SnapshotRunResult, materialize_rows
from ..reuse.files import ReuseFileReader, ReuseFileWriter, encode_fields
from ..text.span import Span
from ..timing import COPY, IO, Timer, Timings
from .noreuse import run_page_plain


class ShortcutSystem:
    """Copies final results for unchanged pages, re-extracts the rest."""

    name = "shortcut"

    def __init__(self, plan: CompiledPlan, workdir: str) -> None:
        self.plan = plan
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self._prev_dir: Optional[str] = None
        self._prev_digests: Dict[str, str] = {}
        self._snapshot_serial = 0

    def _result_file(self, directory: str, rel: str) -> str:
        return os.path.join(directory, f"shortcut_{rel}.O.reuse")

    def process(self, snapshot: Snapshot,
                prev_snapshot: Optional[Snapshot] = None
                ) -> SnapshotRunResult:
        timings = Timings()
        timer = Timer(timings)
        relations = self.plan.program.head_relations()
        out_dir = os.path.join(self.workdir,
                               f"snap_{self._snapshot_serial:04d}")
        os.makedirs(out_dir, exist_ok=True)
        writers = {rel: ReuseFileWriter(self._result_file(out_dir, rel))
                   for rel in relations}
        readers: Dict[str, ReuseFileReader] = {}
        if self._prev_dir is not None and prev_snapshot is not None:
            for rel in relations:
                path = self._result_file(self._prev_dir, rel)
                if os.path.exists(path):
                    readers[rel] = ReuseFileReader(path)
        results: Dict[str, list] = {rel: [] for rel in relations}
        digests: Dict[str, str] = {}
        ordered = (snapshot.ordered_like(prev_snapshot)
                   if prev_snapshot is not None else snapshot)
        try:
            with timer.measure_total():
                for page in ordered:
                    digests[page.url] = page.digest
                    identical = (
                        prev_snapshot is not None
                        and self._prev_digests.get(page.url) == page.digest
                        and readers)
                    for rel in relations:
                        writers[rel].begin_page(page.did)
                    if identical:
                        for rel in relations:
                            with timer.measure(IO):
                                outs = readers[rel].read_page_outputs(
                                    page.did)
                            with timer.measure(COPY):
                                rows = [_decode_row(o.fields, page.did)
                                        for o in outs]
                            self._record(writers[rel], page.did, rows, timer)
                            results[rel].extend(
                                materialize_rows(rows, page.text))
                    else:
                        # Keep readers in sync: skip this page's groups.
                        for rel, reader in readers.items():
                            if prev_snapshot is not None and \
                                    prev_snapshot.get(page.url) is not None:
                                with timer.measure(IO):
                                    reader.read_page_outputs(page.did)
                        page_rows = run_page_plain(self.plan, page, timer)
                        for rel in relations:
                            rows = page_rows[rel]
                            self._record(writers[rel], page.did, rows, timer)
                            results[rel].extend(
                                materialize_rows(rows, page.text))
        finally:
            for writer in writers.values():
                writer.close()
            for reader in readers.values():
                reader.close()
        self._prev_digests = digests
        self._prev_dir = out_dir
        self._snapshot_serial += 1
        identical_pages = sum(
            1 for page in snapshot
            if prev_snapshot is not None
            and prev_snapshot.get(page.url) is not None
            and prev_snapshot.get(page.url).digest == page.digest)
        return SnapshotRunResult(results=results, timings=timings,
                                 pages=len(snapshot),
                                 pages_with_previous=identical_pages)

    @staticmethod
    def _record(writer: ReuseFileWriter, did: str, rows: List[dict],
                timer: Timer) -> None:
        with timer.measure(IO):
            for row in rows:
                writer.append_output(did, 0, encode_fields(row))


def _decode_row(fields: Tuple[Tuple[str, str, object, object], ...],
                did: str) -> dict:
    row: dict = {}
    for name, kind, a, b in fields:
        row[name] = Span(did, a, b) if kind == "s" else a
    return row
