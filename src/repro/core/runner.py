"""Experiment runner: execute systems over snapshot sequences.

Drives No-reuse / Shortcut / Cyclex / Delex over the same evolving
corpus and collects per-snapshot runtimes, decompositions, and result
sets — the raw material for every figure in Section 8.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..corpus.snapshot import Snapshot
from ..extractors.library import IETask, make_task
from ..plan.compile import compile_program
from ..reuse.engine import PlanAssignment, SnapshotRunResult
from ..timing import Timings
from .cyclex import CyclexSystem
from .delex import DelexSystem
from .noreuse import NoReuseSystem
from .shortcut import ShortcutSystem

SYSTEM_NAMES = ("noreuse", "shortcut", "cyclex", "delex")


def make_system(name: str, task: IETask, workdir: str, **kwargs):
    """Instantiate one of the four systems for a task."""
    plan = compile_program(task.program, task.registry)
    if name == "noreuse":
        return NoReuseSystem(plan)
    if name == "shortcut":
        return ShortcutSystem(plan, os.path.join(workdir, "shortcut"))
    if name == "cyclex":
        return CyclexSystem(plan, os.path.join(workdir, "cyclex"),
                            task.program_alpha, task.program_beta,
                            **kwargs)
    if name == "delex":
        return DelexSystem(task, os.path.join(workdir, "delex"), **kwargs)
    raise ValueError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}")


def canonical_results(result: SnapshotRunResult) -> Dict[str, frozenset]:
    """Order-insensitive view of a run's extracted relations."""
    return {rel: frozenset(rows) for rel, rows in result.results.items()}


@dataclass
class SnapshotReport:
    """One system's outcome on one snapshot."""

    snapshot_index: int
    seconds: float
    timings: Timings
    mentions: int
    results: Dict[str, frozenset] = field(repr=False, default_factory=dict)


@dataclass
class SeriesReport:
    """One system's outcomes over a whole snapshot sequence."""

    system: str
    task: str
    snapshots: List[SnapshotReport] = field(default_factory=list)

    def total_seconds(self, skip_bootstrap: bool = True) -> float:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        return sum(r.seconds for r in reports)

    def seconds_series(self, skip_bootstrap: bool = True) -> List[float]:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        return [r.seconds for r in reports]

    def mean_decomposition(self, skip_bootstrap: bool = True
                           ) -> Dict[str, float]:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        if not reports:
            return {}
        keys = ("match", "extraction", "copy", "opt", "io", "others",
                "total")
        acc = {k: 0.0 for k in keys}
        for report in reports:
            row = report.timings.as_row()
            for k in keys:
                acc[k] += row[k]
        return {k: v / len(reports) for k, v in acc.items()}


def run_series(task: IETask, snapshots: Sequence[Snapshot],
               systems: Sequence[str] = SYSTEM_NAMES,
               workdir: Optional[str] = None,
               keep_results: bool = True,
               system_kwargs: Optional[Dict[str, dict]] = None,
               ) -> Dict[str, SeriesReport]:
    """Run the requested systems over consecutive snapshots.

    Every system sees the snapshots in the same order; the first
    snapshot is the bootstrap. Returns one :class:`SeriesReport` per
    system.
    """
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro_run_")
    system_kwargs = system_kwargs or {}
    reports: Dict[str, SeriesReport] = {}
    try:
        for system_name in systems:
            instance = make_system(system_name, task,
                                   os.path.join(workdir, system_name),
                                   **system_kwargs.get(system_name, {}))
            report = SeriesReport(system=system_name, task=task.name)
            prev: Optional[Snapshot] = None
            for snapshot in snapshots:
                result = instance.process(snapshot, prev)
                report.snapshots.append(SnapshotReport(
                    snapshot_index=snapshot.index,
                    seconds=result.timings.total,
                    timings=result.timings,
                    mentions=result.total_mentions(),
                    results=(canonical_results(result)
                             if keep_results else {})))
                prev = snapshot
            reports[system_name] = report
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)
    return reports


def verify_agreement(reports: Dict[str, SeriesReport],
                     reference: str = "noreuse") -> List[str]:
    """Check Theorem 1: every system's results equal the reference's.

    Returns a list of human-readable mismatch descriptions (empty when
    everything agrees).
    """
    problems: List[str] = []
    ref = reports.get(reference)
    if ref is None:
        return [f"reference system {reference!r} missing"]
    for name, report in reports.items():
        if name == reference:
            continue
        for ref_snap, snap in zip(ref.snapshots, report.snapshots):
            if ref_snap.results != snap.results:
                for rel in ref_snap.results:
                    missing = ref_snap.results[rel] - snap.results.get(
                        rel, frozenset())
                    extra = snap.results.get(
                        rel, frozenset()) - ref_snap.results[rel]
                    if missing or extra:
                        problems.append(
                            f"{name} snapshot {snap.snapshot_index} "
                            f"relation {rel}: {len(missing)} missing, "
                            f"{len(extra)} extra")
    return problems


def run_task_series(task_name: str, snapshots: Sequence[Snapshot],
                    systems: Sequence[str] = SYSTEM_NAMES,
                    work_scale: float = 1.0,
                    workdir: Optional[str] = None,
                    **kwargs) -> Dict[str, SeriesReport]:
    """Convenience wrapper: build the task by name and run the series."""
    task = make_task(task_name, work_scale=work_scale)
    return run_series(task, snapshots, systems=systems, workdir=workdir,
                      **kwargs)
