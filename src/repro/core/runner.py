"""Experiment runner: execute systems over snapshot sequences.

Drives No-reuse / Shortcut / Cyclex / Delex over the same evolving
corpus and collects per-snapshot runtimes, decompositions, and result
sets — the raw material for every figure in Section 8.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..corpus.snapshot import Snapshot
from ..extractors.library import IETask, make_task
from ..fastpath.config import FastPathConfig
from ..obs import registry as _oreg
from ..plan.compile import compile_program
from ..reuse.engine import PlanAssignment, SnapshotRunResult
from ..runtime.executor import Executor, make_executor
from ..timing import Timings
from .cyclex import CyclexSystem
from .delex import DelexSystem
from .noreuse import NoReuseSystem
from .shortcut import ShortcutSystem

SYSTEM_NAMES = ("noreuse", "shortcut", "cyclex", "delex")


def task_cost_hint(task: IETask) -> float:
    """The task's heaviest blackbox ``work_factor``.

    Feeds the runtime's auto backend chooser: expensive emulated
    blackboxes amortize process-pool overhead, cheap ones don't.
    """
    return float(max((e.work_factor for e in task.extractors()),
                     default=0))


def resolve_executor(task: IETask, executor: Optional[Executor] = None,
                     jobs: int = 1, backend: str = "auto",
                     cpu_count: Optional[int] = None
                     ) -> Optional[Executor]:
    """Build the executor a run should use (None means serial).

    An explicit ``executor`` wins; otherwise ``jobs``/``backend`` are
    handed to :func:`repro.runtime.make_executor` with the task's
    blackbox cost as the auto-chooser hint. ``cpu_count`` overrides the
    machine's core count for the auto chooser (tests).
    """
    if executor is not None:
        return executor
    if jobs <= 1 and backend in ("auto", "serial"):
        return None
    return make_executor(backend, jobs=jobs,
                         cost_hint=task_cost_hint(task),
                         cpu_count=cpu_count)


def make_system(name: str, task: IETask, workdir: str,
                executor: Optional[Executor] = None, jobs: int = 1,
                backend: str = "auto",
                fastpath: Optional[FastPathConfig] = None,
                adapt: object = None, **kwargs):
    """Instantiate one of the four systems for a task.

    ``executor`` (or ``jobs``/``backend``) selects the execution
    runtime the system's page loop runs on; the default is serial.
    ``fastpath`` configures the snapshot-delta fast paths of the
    reusing systems (cyclex/delex); it accepts a
    :class:`~repro.fastpath.config.FastPathConfig` or the CLI strings
    ``"on"``/``"off"`` and defaults to on. The non-reusing baselines
    ignore it (they never pair pages).

    ``adapt`` enables the drift-aware controller for delex: an
    :class:`~repro.adapt.replan.AdaptConfig` or one of the CLI strings
    ``"on"``/``"shadow"``/``"static"`` (``"off"``/``None`` keep the
    per-snapshot re-optimizer). Only delex understands it; the other
    systems have no plan to adapt.
    """
    plan = compile_program(task.program, task.registry)
    executor = resolve_executor(task, executor, jobs, backend)
    if name == "noreuse":
        return NoReuseSystem(plan, executor=executor, **kwargs)
    if name == "shortcut":
        return ShortcutSystem(plan, os.path.join(workdir, "shortcut"),
                              executor=executor, **kwargs)
    if name == "cyclex":
        return CyclexSystem(plan, os.path.join(workdir, "cyclex"),
                            task.program_alpha, task.program_beta,
                            executor=executor, fastpath=fastpath, **kwargs)
    if name == "delex":
        from ..adapt.replan import AdaptConfig, AdaptiveDelexSystem
        config = AdaptConfig.from_flag(adapt)
        if config is not None:
            return AdaptiveDelexSystem(task, os.path.join(workdir, "delex"),
                                       adapt=config, executor=executor,
                                       fastpath=fastpath, **kwargs)
        return DelexSystem(task, os.path.join(workdir, "delex"),
                           executor=executor, fastpath=fastpath, **kwargs)
    raise ValueError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}")


def canonical_results(result: SnapshotRunResult) -> Dict[str, frozenset]:
    """Order-insensitive view of a run's extracted relations."""
    return {rel: frozenset(rows) for rel, rows in result.results.items()}


@dataclass
class SnapshotReport:
    """One system's outcome on one snapshot."""

    snapshot_index: int
    seconds: float
    timings: Timings
    mentions: int
    results: Dict[str, frozenset] = field(repr=False, default_factory=dict)
    optimizer: Optional[Dict[str, object]] = field(repr=False, default=None)
    """Optimizer audit trail for plan-choosing systems (delex): the
    chosen assignment, the sampled statistics behind it, and — when the
    adaptive controller is active — its decision for this snapshot."""


def optimizer_snapshot_doc(instance, snapshot_index: int
                           ) -> Optional[Dict[str, object]]:
    """Assemble the per-snapshot optimizer audit record, if the system
    exposes one (duck-typed on the delex attributes)."""
    assignment = getattr(instance, "last_assignment", None)
    if assignment is None:
        return None
    doc: Dict[str, object] = {"assignment": dict(assignment.matchers)}
    search = getattr(instance, "last_search", None)
    if search is not None:
        doc["estimated_cost"] = search.estimated_cost
        doc["plans_considered"] = search.considered
    stats = getattr(instance, "last_stats", None)
    if stats is not None:
        doc["statistics"] = stats.to_dict()
        doc["sampled_at_snapshot"] = getattr(instance, "last_stats_index",
                                             None)
    decisions = getattr(instance, "decisions", None)
    if decisions:
        last = decisions[-1]
        if last.snapshot_index == snapshot_index:
            doc["adapt"] = last.to_dict()
    return doc


@dataclass
class SeriesReport:
    """One system's outcomes over a whole snapshot sequence."""

    system: str
    task: str
    snapshots: List[SnapshotReport] = field(default_factory=list)

    def total_seconds(self, skip_bootstrap: bool = True) -> float:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        return sum(r.seconds for r in reports)

    def seconds_series(self, skip_bootstrap: bool = True) -> List[float]:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        return [r.seconds for r in reports]

    def mean_decomposition(self, skip_bootstrap: bool = True
                           ) -> Dict[str, float]:
        reports = self.snapshots[1:] if skip_bootstrap else self.snapshots
        if not reports:
            return {}
        keys = ("match", "extraction", "copy", "opt", "io", "others",
                "total")
        acc = {k: 0.0 for k in keys}
        for report in reports:
            row = report.timings.as_row()
            for k in keys:
                acc[k] += row[k]
        return {k: v / len(reports) for k, v in acc.items()}


def run_series(task: IETask, snapshots: Sequence[Snapshot],
               systems: Sequence[str] = SYSTEM_NAMES,
               workdir: Optional[str] = None,
               keep_results: bool = True,
               system_kwargs: Optional[Dict[str, dict]] = None,
               executor: Optional[Executor] = None,
               jobs: int = 1, backend: str = "auto",
               fastpath: Optional[FastPathConfig] = None,
               adapt: object = None,
               ) -> Dict[str, SeriesReport]:
    """Run the requested systems over consecutive snapshots.

    Every system sees the snapshots in the same order; the first
    snapshot is the bootstrap. ``executor`` (or ``jobs``/``backend``)
    selects the execution runtime shared by all systems in the run;
    results are backend-independent by construction. ``fastpath``
    configures the snapshot-delta fast paths of the reusing systems
    (default on); results are fast-path-independent by construction
    too. ``adapt`` switches delex to the drift-aware controller (see
    :func:`make_system`); by Theorem 1 it cannot change results either.
    Returns one :class:`SeriesReport` per system.
    """
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro_run_")
    system_kwargs = system_kwargs or {}
    executor = resolve_executor(task, executor, jobs, backend)
    reports: Dict[str, SeriesReport] = {}
    try:
        for system_name in systems:
            instance = make_system(system_name, task,
                                   os.path.join(workdir, system_name),
                                   executor=executor, fastpath=fastpath,
                                   adapt=adapt,
                                   **system_kwargs.get(system_name, {}))
            report = SeriesReport(system=system_name, task=task.name)
            prev: Optional[Snapshot] = None
            for snapshot in snapshots:
                result = instance.process(snapshot, prev)
                if _oreg.ENABLED:  # publish point: once per snapshot
                    _oreg.publish_timings(system_name, result.timings)
                report.snapshots.append(SnapshotReport(
                    snapshot_index=snapshot.index,
                    seconds=result.timings.total,
                    timings=result.timings,
                    mentions=result.total_mentions(),
                    results=(canonical_results(result)
                             if keep_results else {}),
                    optimizer=optimizer_snapshot_doc(instance,
                                                     snapshot.index)))
                prev = snapshot
            reports[system_name] = report
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)
    return reports


def verify_agreement(reports: Dict[str, SeriesReport],
                     reference: str = "noreuse") -> List[str]:
    """Check Theorem 1: every system's results equal the reference's.

    Returns a list of human-readable mismatch descriptions (empty when
    everything agrees).
    """
    problems: List[str] = []
    ref = reports.get(reference)
    if ref is None:
        return [f"reference system {reference!r} missing"]
    for name, report in reports.items():
        if name == reference:
            continue
        for ref_snap, snap in zip(ref.snapshots, report.snapshots):
            if ref_snap.results != snap.results:
                for rel in ref_snap.results:
                    missing = ref_snap.results[rel] - snap.results.get(
                        rel, frozenset())
                    extra = snap.results.get(
                        rel, frozenset()) - ref_snap.results[rel]
                    if missing or extra:
                        problems.append(
                            f"{name} snapshot {snap.snapshot_index} "
                            f"relation {rel}: {len(missing)} missing, "
                            f"{len(extra)} extra")
    return problems


def verify_serial_parallel(task: IETask, snapshots: Sequence[Snapshot],
                           systems: Sequence[str] = SYSTEM_NAMES,
                           jobs: int = 2, backend: str = "auto",
                           system_kwargs: Optional[Dict[str, dict]] = None,
                           ) -> List[str]:
    """Theorem 1, runtime edition: serial == parallel, per system.

    Runs every requested system twice over the same snapshots — once
    serially, once on a ``jobs``-worker executor — and reports any
    snapshot whose canonical results differ, plus the usual
    cross-system agreement problems of both runs.
    """
    serial = run_series(task, snapshots, systems=systems, jobs=1,
                        system_kwargs=system_kwargs)
    parallel = run_series(task, snapshots, systems=systems, jobs=jobs,
                          backend=backend, system_kwargs=system_kwargs)
    problems: List[str] = []
    for name in systems:
        for s_snap, p_snap in zip(serial[name].snapshots,
                                  parallel[name].snapshots):
            if s_snap.results != p_snap.results:
                problems.append(
                    f"{name} snapshot {s_snap.snapshot_index}: serial "
                    f"and parallel (jobs={jobs}, {backend}) results "
                    "differ")
    problems.extend(verify_agreement(serial))
    problems.extend(f"parallel: {p}" for p in verify_agreement(parallel))
    return problems


def verify_fastpath(task: IETask, snapshots: Sequence[Snapshot],
                    systems: Sequence[str] = SYSTEM_NAMES,
                    system_kwargs: Optional[Dict[str, dict]] = None,
                    jobs: int = 1, backend: str = "auto") -> List[str]:
    """Theorem 1, fast-path edition: fastpath on == fastpath off.

    Runs every requested system twice over the same snapshots — once
    with the snapshot-delta fast paths enabled, once disabled — and
    reports any snapshot whose canonical results differ, plus the
    usual cross-system agreement problems of both runs. The fast
    paths are behaviour-preserving by design; this harness is the
    executable statement of that claim.
    """
    fast = run_series(task, snapshots, systems=systems, jobs=jobs,
                      backend=backend, system_kwargs=system_kwargs,
                      fastpath=FastPathConfig.on())
    slow = run_series(task, snapshots, systems=systems, jobs=jobs,
                      backend=backend, system_kwargs=system_kwargs,
                      fastpath=FastPathConfig.off())
    problems: List[str] = []
    for name in systems:
        for f_snap, s_snap in zip(fast[name].snapshots,
                                  slow[name].snapshots):
            if f_snap.results != s_snap.results:
                problems.append(
                    f"{name} snapshot {f_snap.snapshot_index}: fastpath "
                    "on and off results differ")
    problems.extend(f"fast: {p}" for p in verify_agreement(fast))
    problems.extend(f"slow: {p}" for p in verify_agreement(slow))
    return problems


def run_task_series(task_name: str, snapshots: Sequence[Snapshot],
                    systems: Sequence[str] = SYSTEM_NAMES,
                    work_scale: float = 1.0,
                    workdir: Optional[str] = None,
                    **kwargs) -> Dict[str, SeriesReport]:
    """Convenience wrapper: build the task by name and run the series."""
    task = make_task(task_name, work_scale=work_scale)
    return run_series(task, snapshots, systems=systems, workdir=workdir,
                      **kwargs)
