"""Figure 8 (tables a and b): data sets and IE programs.

Regenerates both tables of Figure 8 for our synthetic corpora:

* 8a — per-corpus statistics (pages per snapshot, bytes per snapshot,
  and the change profile that drives everything else: the DBLife-like
  corpus stays 96–98 % identical between snapshots, the Wikipedia-like
  corpus 8–20 %);
* 8b — the IE programs with their blackbox counts and the
  whole-program (α, β) the Cyclex baseline uses.
"""

from conftest import corpus_snapshots, save_table

from repro.corpus import profile_corpus
from repro.extractors import RULE_TASKS, make_task


def build_fig8a():
    rows = []
    for kind, pages in (("dblife", 60), ("wikipedia", 40)):
        snaps = corpus_snapshots(kind, kind, n_snapshots=6, pages=pages)
        profile = profile_corpus(snaps)
        rows.append((kind, profile))
    lines = ["Figure 8a — data sets",
             f"{'corpus':<12}{'snapshots':>10}{'avg pages':>11}"
             f"{'avg KB':>9}{'identical':>11}{'shared URL':>11}"]
    for kind, p in rows:
        lines.append(f"{kind:<12}{p.snapshots:>10}{p.avg_pages:>11.0f}"
                     f"{p.avg_bytes / 1024:>9.1f}"
                     f"{p.avg_fraction_identical:>11.2f}"
                     f"{p.avg_fraction_with_previous:>11.2f}")
    return rows, "\n".join(lines) + "\n"


def build_fig8b():
    lines = ["Figure 8b — IE programs",
             f"{'task':<13}{'corpus':<11}{'blackboxes':>11}"
             f"{'prog alpha':>11}{'prog beta':>10}"]
    tasks = []
    for name in RULE_TASKS + ("infobox",):
        task = make_task(name, work_scale=0)
        tasks.append(task)
        lines.append(f"{name:<13}{task.corpus:<11}"
                     f"{len(task.blackboxes):>11}"
                     f"{task.program_alpha:>11}{task.program_beta:>10}")
    return tasks, "\n".join(lines) + "\n"


def test_fig08a_corpus_statistics(benchmark):
    rows, table = benchmark.pedantic(build_fig8a, rounds=1, iterations=1)
    save_table("fig08a_datasets.txt", table)
    stats = dict(rows)
    assert stats["dblife"].avg_fraction_identical > 0.9
    assert stats["wikipedia"].avg_fraction_identical < 0.3
    assert stats["wikipedia"].avg_fraction_with_previous > 0.9


def test_fig08b_program_table(benchmark):
    tasks, table = benchmark.pedantic(build_fig8b, rounds=1, iterations=1)
    save_table("fig08b_programs.txt", table)
    counts = {t.name: len(t.blackboxes) for t in tasks}
    assert counts == {"talk": 1, "chair": 3, "advise": 5,
                      "blockbuster": 2, "play": 4, "award": 6,
                      "infobox": 5}
