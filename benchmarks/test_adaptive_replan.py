"""Static vs adaptive vs oracle re-optimization under corpus drift.

The §6 optimizer picks a plan from statistics sampled on one snapshot
transition. When the corpus's evolution process *shifts regime*
mid-series, that plan can be arbitrarily stale: a plan chosen during a
site-thrash period (every page regenerated per crawl — no line survives,
so from-scratch extraction is the honest optimum) keeps paying full
extraction cost long after the corpus has calmed down and matcher-based
reuse would win by an order of magnitude.

Three controllers over the same drifting series (``chair`` task):

* ``static``   — plan once from the first transition's statistics and
  never revisit (what a one-shot optimizer deployment does);
* ``adaptive`` — ``repro.adapt``: Page–Hinkley drift detection over the
  per-snapshot observation stream, re-sample + re-search on a signal,
  switch behind hysteresis (``--adapt on``);
* ``oracle``   — replan exactly at the regime boundary, no detector:
  the upper bound the detector's lag is measured against.

A stationary control series (same calm process, no boundary) checks the
adaptive controller does not thrash when nothing drifts: detections may
fire on sampling noise, but hysteresis must hold switches to zero and
the total within noise of static.

Every adaptive generation is compared byte-for-byte against a
from-scratch ``noreuse`` reference computed in the same run, with
runtime invariant checks enabled (``--check on``) — by Theorem 1 a plan
switch may change cost only, never output. Emits machine-readable
``BENCH_adapt.json`` at the repo root (the ``adapt-smoke`` CI job
uploads it). Scale knobs:

* ``REPRO_BENCH_ADAPT_PAGES``     (default 16)
* ``REPRO_BENCH_ADAPT_SNAPSHOTS`` (default 12)
* ``REPRO_BENCH_ADAPT_WORK``      (default 2.0)
"""

import json
import os

from conftest import save_table

from repro.adapt import AdaptConfig, DriftingCorpus, Regime, RegimeSchedule
from repro.check.invariants import checking
from repro.core.runner import run_series
from repro.corpus.evolve import ChangeModel
from repro.corpus.generators import DBLifeGenerator
from repro.extractors import make_task

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_adapt.json")

TASK = "chair"           # 3-blackbox chain, DBLife corpus
PAGES = int(os.environ.get("REPRO_BENCH_ADAPT_PAGES", "16"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_ADAPT_SNAPSHOTS", "12"))
WORK_SCALE = float(os.environ.get("REPRO_BENCH_ADAPT_WORK", "2.0"))
SEED = 7
SHIFT_AT = 4             # first snapshot produced under the calm regime

#: The post-boundary evolution process: light in-place edits, no page
#: churn — the regime where matcher plans recycle almost everything.
CALM = ChangeModel(p_unchanged=0.3, p_removed=0.0, p_added=0.0,
                   mean_edits=2.0)

#: Replan actions that correspond to adopting a different assignment.
SWITCH_ACTIONS = ("replan_switch", "forced_replan")


def drifting_series():
    """Site-thrash chaos (every page regenerated under its URL each
    snapshot) for ``SHIFT_AT`` steps, then the calm regime.

    During the thrash phase every page *has* a previous version but no
    line of it survives, so the sampled match rates are ~0 while match
    overhead is real: the honest optimum is from-scratch extraction
    (all-DN). After the boundary the same plan wastes an order of
    magnitude — the scenario adaptivity exists for.
    """
    regimes = [Regime(at=i, redesign_fraction=1.0, note="thrash")
               for i in range(1, SHIFT_AT)]
    regimes.append(Regime(at=SHIFT_AT, change_model=CALM, note="calm"))
    corpus = DriftingCorpus(DBLifeGenerator(), PAGES, CALM,
                            RegimeSchedule.of(*regimes), seed=SEED)
    return list(corpus.snapshots(N_SNAPSHOTS))


def stationary_series():
    corpus = DriftingCorpus(DBLifeGenerator(), PAGES, CALM,
                            RegimeSchedule(), seed=SEED)
    return list(corpus.snapshots(N_SNAPSHOTS))


CONTROLLERS = (
    ("static", AdaptConfig(mode="static")),
    ("adaptive", AdaptConfig(mode="on", warmup=2, cooldown=1)),
    ("oracle", AdaptConfig(mode="on", detect=False,
                           force_replan_at=frozenset({SHIFT_AT}))),
)


def run_controller(task, snapshots, config, reference=False):
    """One controller over the series; optionally with the from-scratch
    reference system alongside for byte-identity checks."""
    systems = ("delex", "noreuse") if reference else ("delex",)
    reports = run_series(task, snapshots, systems=systems, adapt=config)
    delex = reports["delex"]
    if reference:
        for snap, ref in zip(delex.snapshots, reports["noreuse"].snapshots):
            assert snap.results == ref.results, (
                f"snapshot {snap.snapshot_index}: adaptive output "
                "diverged from the from-scratch reference")
    per_snapshot = []
    events = []
    for snap in delex.snapshots:
        doc = snap.optimizer or {}
        decision = doc.get("adapt") or {}
        action = decision.get("action")
        per_snapshot.append({
            "index": snap.snapshot_index,
            "seconds": snap.seconds,
            "assignment": doc.get("assignment"),
            "action": action,
        })
        if action not in (None, "keep"):
            events.append({
                "index": snap.snapshot_index,
                "action": action,
                "detected": decision.get("signal") is not None,
                "sampling_seconds": decision.get("sampling_seconds"),
            })
    return {
        "per_snapshot": per_snapshot,
        "events": events,
        "detections": sum(1 for e in events if e["detected"]),
        "switches": sum(1 for e in events
                        if e["action"] in SWITCH_ACTIONS),
        "sampling_seconds": sum(e["sampling_seconds"] or 0.0
                                for e in events),
        "initial_assignment": per_snapshot[1]["assignment"],
        "final_assignment": per_snapshot[-1]["assignment"],
        "total_seconds": delex.total_seconds(),
        "byte_identical": reference,
    }


def format_table(label, runs):
    width = 10
    lines = [f"--- series={label} ---",
             "snapshot" + "".join(f"{name:>{width}}"
                                  for name, _ in CONTROLLERS)]
    for i in range(N_SNAPSHOTS):
        row = f"{i:>8}"
        for name, _ in CONTROLLERS:
            cell = runs[name]["per_snapshot"][i]
            mark = {"replan_switch": "*", "forced_replan": "*",
                    "replan_keep": "k", "shadow_replan": "s"}.get(
                        cell["action"], " ")
            row += f"{cell['seconds']:>{width - 1}.3f}{mark}"
        lines.append(row)
    row = "   total"
    for name, _ in CONTROLLERS:
        row += f"{runs[name]['total_seconds']:>{width - 1}.3f} "
    lines.append(row)
    lines.append("(* = plan switch, k = replanned but kept, "
                 "s = shadow replan)")
    return "\n".join(lines)


def test_adaptive_beats_static_under_drift():
    task = make_task(TASK, work_scale=WORK_SCALE)
    results = {"task": TASK, "pages": PAGES, "snapshots": N_SNAPSHOTS,
               "work_scale": WORK_SCALE, "seed": SEED,
               "shift_at": SHIFT_AT, "series": {}}
    tables = []

    for label, series in (("drifting", drifting_series()),
                          ("stationary", stationary_series())):
        runs = {}
        for name, config in CONTROLLERS:
            reference = (label == "drifting" and name == "adaptive")
            if reference:
                with checking(True):
                    runs[name] = run_controller(task, series, config,
                                                reference=True)
            else:
                runs[name] = run_controller(task, series, config)
        results["series"][label] = runs
        tables.append(format_table(label, runs))

    drift = results["series"]["drifting"]
    stationary = results["series"]["stationary"]
    results["adaptive_vs_static_speedup_drifting"] = (
        drift["static"]["total_seconds"]
        / drift["adaptive"]["total_seconds"]
        if drift["adaptive"]["total_seconds"] else 0.0)
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)

    save_table("adaptive_replan.txt",
               "Static vs adaptive vs oracle re-optimization under "
               "corpus drift\n"
               f"task={TASK} pages={PAGES} snapshots={N_SNAPSHOTS} "
               f"work_scale={WORK_SCALE} shift_at={SHIFT_AT}\n\n"
               + "\n\n".join(tables) + "\n")

    # The headline claim: on the drifting series the adaptive controller
    # detects the regime change, switches plans, and beats the static
    # initial plan end to end — sampling overhead included.
    assert drift["adaptive"]["detections"] >= 1, drift["adaptive"]
    assert drift["adaptive"]["switches"] >= 1, drift["adaptive"]
    assert (drift["adaptive"]["final_assignment"]
            != drift["adaptive"]["initial_assignment"]), drift["adaptive"]
    assert (drift["adaptive"]["total_seconds"]
            < drift["static"]["total_seconds"]), {
        "adaptive": drift["adaptive"]["total_seconds"],
        "static": drift["static"]["total_seconds"]}
    # The oracle (replan exactly at the boundary) bounds what detection
    # lag costs; it must beat static too.
    assert (drift["oracle"]["total_seconds"]
            < drift["static"]["total_seconds"]), drift["oracle"]

    # On the stationary control, hysteresis must hold switches at zero
    # (detections on sampling noise are fine — switching on them is
    # not), and the adaptive total must stay within noise of static.
    assert stationary["adaptive"]["switches"] == 0, stationary["adaptive"]
    assert (stationary["adaptive"]["total_seconds"]
            < 1.5 * stationary["static"]["total_seconds"]), {
        "adaptive": stationary["adaptive"]["total_seconds"],
        "static": stationary["static"]["total_seconds"]}
