"""Figure 12: effectiveness of the Delex optimizer.

The "play" task has 4 IE units x 4 matchers = 256 plans. We execute
every plan on the same snapshot transition, rank them by measured
runtime, and locate the plan the optimizer selected. Paper-reported
shape: the selected plan ranks in the top handful of 256 and runs
within a whisker of the true best plan, while the worst plan is far
slower — so optimization matters.

Scaled down (few pages, reduced work factors) because it really does
execute 256 full plans.
"""

import os

import pytest

from conftest import corpus_snapshots, save_table

from repro.core.delex import DelexSystem
from repro.extractors import make_task
from repro.optimizer.enumerate import canonical_plans
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment, ReuseEngine


def run_fig12(tmp_root):
    task = make_task("play", work_scale=0.25)
    snaps = corpus_snapshots("play", "wikipedia", n_snapshots=3, pages=14)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    plans = canonical_plans(units)
    assert len(plans) == 256

    # Ask the real optimizer which plan it would pick.
    delex = DelexSystem(task, os.path.join(tmp_root, "delex"),
                        sample_size=6)
    delex.process(snaps[0])
    delex.process(snaps[1], snaps[0])
    delex.process(snaps[2], snaps[1])
    selected = delex.last_assignment

    # Price every plan with the cost model (same statistics the
    # optimizer saw) so model ranks can be correlated with reality.
    from repro.optimizer.cost import plan_cost
    from repro.optimizer.stats import collect_statistics

    bootstrap = ReuseEngine(plan, units, PlanAssignment.all_dn(units))
    cap = os.path.join(tmp_root, "stats_cap")
    bootstrap.run_snapshot(snaps[1], None, None, cap)
    stats = collect_statistics(plan, units, snaps[2], snaps[:2],
                               sample_size=6, prev_capture_dir=cap)
    model_costs = {}

    # Execute every plan on the snapshot 1 -> 2 transition.
    timings = []
    for i, assignment in enumerate(plans):
        engine = ReuseEngine(plan, units, assignment)
        d0 = os.path.join(tmp_root, f"p{i}", "0")
        d1 = os.path.join(tmp_root, f"p{i}", "1")
        engine.run_snapshot(snaps[1], snaps[0], None, d0)
        result = engine.run_snapshot(snaps[2], snaps[1], d0, d1)
        timings.append((result.timings.total, assignment))
        key = tuple(sorted(assignment.matchers.items()))
        model_costs[key] = plan_cost(units, assignment, stats)
    timings.sort(key=lambda pair: pair[0])

    from scipy.stats import spearmanr
    measured = [t for t, _ in timings]
    estimated = [model_costs[tuple(sorted(a.matchers.items()))]
                 for _, a in timings]
    correlation = float(spearmanr(measured, estimated).statistic)
    ranks = {tuple(sorted(a.matchers.items())): rank + 1
             for rank, (_, a) in enumerate(timings)}
    selected_rank = ranks[tuple(sorted(selected.matchers.items()))]
    best_time = timings[0][0]
    worst_time = timings[-1][0]
    selected_time = [t for t, a in timings
                     if a.matchers == selected.matchers][0]
    return {
        "selected_rank": selected_rank,
        "best": best_time,
        "selected": selected_time,
        "worst": worst_time,
        "selected_plan": selected.describe(),
        "best_plan": timings[0][1].describe(),
        "model_rank_correlation": correlation,
    }


def test_fig12_optimizer_effectiveness(benchmark, tmp_path):
    data = benchmark.pedantic(run_fig12, args=(str(tmp_path),),
                              rounds=1, iterations=1)
    table = (
        "Figure 12 — optimizer effectiveness ('play', 256 plans)\n"
        f"selected plan rank: {data['selected_rank']} / 256\n"
        f"best plan    : {data['best']:.3f}s  ({data['best_plan']})\n"
        f"selected plan: {data['selected']:.3f}s  "
        f"({data['selected_plan']})\n"
        f"worst plan   : {data['worst']:.3f}s\n"
        f"cost-model vs measured rank correlation (Spearman): "
        f"{data['model_rank_correlation']:.2f}\n")
    save_table("fig12_optimizer.txt", table)

    # Paper: selected plan consistently ranks around 3rd-5th of 256.
    assert data["selected_rank"] <= 32
    # The cost model orders plans like reality (extension analysis).
    assert data["model_rank_correlation"] > 0.5
    # The selected plan is within 2x of the best measured plan...
    assert data["selected"] <= 2.0 * data["best"]
    # ...and optimization matters: the worst plan is much slower.
    assert data["worst"] > 2.0 * data["best"]
